"""Legacy setup shim.

Exists only so `pip install -e .` works in offline environments lacking
the `wheel` package (pip falls back to `setup.py develop` when no
[build-system] table is declared).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
