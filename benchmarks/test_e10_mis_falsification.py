"""E10 — Property 2.1 made operational: every candidate MIS algorithm
is defeated, and each defeat translates to an SSB failure via the
paper's simulation.

Regenerates the candidate-vs-verdict table for C_3..C_5 and the SSB
reduction demonstration.
"""

import pytest

from benchmarks.conftest import emit
from repro.lowerbounds.mis import candidate_mis_algorithms, falsify_mis
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.shm.simulation import run_mis_as_ssb
from repro.shm.tasks import MISSpec


def falsify_all(n, max_depth):
    rows = []
    for name, algorithm in sorted(candidate_mis_algorithms().items()):
        outcome = falsify_mis(algorithm, n=n, max_depth=max_depth)
        rows.append(
            {
                "candidate": name,
                "n": n,
                "defeated": outcome.found,
                "mode": ("livelock" if "repeats" in outcome.description
                         else "safety"),
                "configs": outcome.configs_seen,
            }
        )
        assert outcome.found, name
    return rows


@pytest.mark.parametrize("n,depth", [(3, 12), (4, 10), (5, 8)])
def test_e10_all_candidates_defeated(benchmark, n, depth):
    rows = benchmark.pedantic(falsify_all, args=(n, depth), rounds=1, iterations=1)
    emit(f"E10: MIS candidates on C_{n}", rows)


def test_e10_ssb_reduction(benchmark):
    """The defeat of the eager candidate, pushed through the Property
    2.1 simulation: the shared-memory execution's outputs violate the
    MIS spec (which a correct algorithm would translate into an SSB
    solution — impossible)."""
    from repro.lowerbounds.mis import EagerLocalMaxMIS

    def workload():
        schedule = FiniteSchedule([[0], [1], [2]])
        result, ssb_violations = run_mis_as_ssb(
            EagerLocalMaxMIS(), [1, 2, 3], schedule,
        )
        return result, ssb_violations

    result, _ = benchmark.pedantic(workload, rounds=3, iterations=1)
    mis_violations = MISSpec(Cycle(3)).check(result.outputs)
    emit(
        "E10: SSB reduction witness",
        [{
            "outputs": str(dict(sorted(result.outputs.items()))),
            "mis_violations": len(mis_violations),
        }],
    )
    assert mis_violations
