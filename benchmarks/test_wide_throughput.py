"""Wide-engine throughput: node-vectorized single-run speedup.

The fast engine retires one process activation per Python bytecode
loop iteration; the wide engine retires one *schedule step* per numpy
dispatch, touching every activated node as a plane operation.  On
dense schedules over large rings that trades O(activated) interpreter
work for O(1) interpreter work plus O(n) vectorized work — the
Issue-9 acceptance bar is at least 3x the fast engine's
activations/sec on the flagship wide workload: Algorithm 3 on C_1e6,
monotone ids, synchronous schedule, while producing an *equal*
``ExecutionResult``.  Both throughputs and the speedup land in
``BENCH_wide.json`` at the repo root so the wide engine's perf
trajectory is visible across PRs.

The suite is numpy-gated: without numpy the wide entry point delegates
to the same scalar kernels as the fast engine, so there is no
vectorized claim to measure (equivalence of that tier is covered by
``tests/model/test_fastpath_equivalence.py``).
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import monotone_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.batch import numpy_accelerated
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
WIDE_ARTIFACT = REPO_ROOT / "BENCH_wide.json"

pytestmark = pytest.mark.skipif(
    not numpy_accelerated(), reason="wide throughput requires numpy"
)


def _measure(engine, topology, ids, repeats=3):
    # The topology (and its cached kernel arrays) is built once outside
    # the timed region: the claim under test is simulation throughput,
    # not one-off adjacency construction shared by every engine.
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_execution(
            FastFiveColoring(), topology, ids, SynchronousScheduler(),
            max_time=100_000, engine=engine,
        )
        best = min(best, time.perf_counter() - started)
    assert result.all_terminated
    return result, sum(result.activations.values()) / best, best


def test_wide_bit_identical_at_scale():
    """Full-result equality (all four planes, reference included) on a
    C_100000 run — the guard that the throughput numbers below compare
    like with like before anything is timed at the flagship size."""
    n = 100_000
    ids = monotone_ids(n)
    results = {
        engine: run_execution(
            FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000, engine=engine,
        )
        for engine in ("fast", "wide")
    }
    assert results["wide"] == results["fast"]
    assert results["wide"].all_terminated


def test_wide_vs_fast_speedup():
    """The acceptance bar: wide >= 3x fast on fast5 cycle(1e6) sync.

    At n=1e6 the full NamedTuple-state comparison would dominate the
    benchmark, so this test checks the integer planes (outputs,
    activation counts, clock) — ``test_wide_bit_identical_at_scale``
    owns the complete-equality claim.
    """
    n = 1_000_000
    ids = monotone_ids(n)
    topology = Cycle(n)

    fast_result, fast_rate, fast_time = _measure("fast", topology, ids)
    wide_result, wide_rate, wide_time = _measure("wide", topology, ids)
    assert wide_result.final_time == fast_result.final_time
    assert wide_result.outputs == fast_result.outputs
    assert wide_result.activations == fast_result.activations

    speedup = wide_rate / fast_rate
    payload = {
        "workload": {
            "algorithm": "fast5", "topology": f"cycle({n})",
            "inputs": "monotone", "schedule": "sync",
            "activations": sum(fast_result.activations.values()),
        },
        "fast": {
            "activations_per_sec": fast_rate, "wall_time": fast_time,
        },
        "wide": {
            "activations_per_sec": wide_rate, "wall_time": wide_time,
        },
        "speedup": speedup,
    }
    WIDE_ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    emit(
        "wide engine throughput (BENCH_wide.json)",
        [
            {"engine": "fast",
             "activations/sec": round(fast_rate),
             "wall [s]": round(fast_time, 3)},
            {"engine": "wide",
             "activations/sec": round(wide_rate),
             "wall [s]": round(wide_time, 3)},
        ],
    )
    assert speedup >= 3.0, (
        f"wide engine speedup {speedup:.2f}x < 3x over the fast engine"
    )
