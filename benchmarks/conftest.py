"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of EXPERIMENTS.md (E1–E14):
it measures the relevant executions with ``pytest-benchmark`` *and*
prints the experiment's result rows (bound vs. measured, scaling
series, who-wins) so that ``pytest benchmarks/ --benchmark-only -s``
reproduces the tables recorded in EXPERIMENTS.md.  Shape assertions are
part of each benchmark, so a regression in any claim fails the suite.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import format_table


def emit(title, rows, columns=None):
    """Print one experiment table (visible with -s / on failures)."""
    print()
    print(f"== {title} ==")
    print(format_table(rows, columns))


@pytest.fixture
def table():
    """Accumulate rows and print them at teardown."""
    collected = {"title": "experiment", "rows": []}

    yield collected

    if collected["rows"]:
        emit(collected["title"], collected["rows"])
