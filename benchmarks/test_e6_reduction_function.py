"""E6 — Lemmas 4.1/4.2/4.3: the reduction function f and bound F.

Regenerates: (i) exhaustive small-range verification of the two
pointwise lemmas (reported as checked-pair counts), (ii) the
iterations-to-plateau vs log* series of Lemma 4.1.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.coin_tossing import (
    REDUCTION_PLATEAU,
    iterations_until_below,
    log_star,
    reduce_identifier,
)

EXPONENTS = [8, 16, 64, 256, 1024, 4096, 2 ** 14]


def verify_lemma_4_2(limit):
    checked = 0
    for y in range(REDUCTION_PLATEAU, limit):
        for x in range(y + 1, limit):
            assert reduce_identifier(x, y) < y
            checked += 1
    return checked


def verify_lemma_4_3(limit):
    checked = 0
    for z in range(limit):
        for y in range(z + 1, limit):
            for x in range(y + 1, limit):
                assert reduce_identifier(x, y) != reduce_identifier(y, z)
                checked += 1
    return checked


def test_e6_lemma_4_2_exhaustive(benchmark):
    checked = benchmark.pedantic(
        verify_lemma_4_2, args=(220,), rounds=1, iterations=1,
    )
    emit("E6: Lemma 4.2 (x>y>=10 => f(x,y)<y)", [{"pairs_checked": checked, "violations": 0}])


def test_e6_lemma_4_3_exhaustive(benchmark):
    checked = benchmark.pedantic(
        verify_lemma_4_3, args=(60,), rounds=1, iterations=1,
    )
    emit("E6: Lemma 4.3 (x>y>z => f(x,y)!=f(y,z))", [{"triples_checked": checked, "violations": 0}])


def test_e6_lemma_4_1_iterations_series(benchmark):
    def workload():
        return [
            (e, log_star(2 ** e), iterations_until_below(2 ** e))
            for e in EXPONENTS
        ]

    series = benchmark.pedantic(workload, rounds=3, iterations=1)
    rows = [
        {"x": f"2^{e}", "log*x": ls, "F_iterations_to_<10": iters,
         "ratio": round(iters / max(ls, 1), 2)}
        for e, ls, iters in series
    ]
    emit("E6: Lemma 4.1 iterations vs log*", rows)
    # O(log*) shape: iterations within a small constant factor of log*.
    for e, ls, iters in series:
        assert iters <= 3 * ls + 3
