"""E11 — synchronous LOCAL baselines vs the asynchronous algorithm.

Regenerates: Cole–Vishkin round counts (½log* + O(1), 3 colors) vs
Algorithm 3 activations (O(log* n), 5 colors) on the same instances —
the measured constant-factor price of asynchrony + crash tolerance —
plus the priority-greedy (Δ+1) baseline.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import coloring_violations
from repro.core.coin_tossing import log_star
from repro.core.fast_coloring5 import FastFiveColoring
from repro.localmodel import ColeVishkinRing, PriorityGreedyColoring, run_local
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler

SIZES = [16, 128, 1024, 8192]


def compare_one(n, seed=0):
    ids = random_distinct_ids(n, seed=seed)
    cv = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
    assert not coloring_violations(Cycle(n), cv.outputs)
    a3 = run_execution(
        FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
        max_time=200_000,
    )
    assert a3.all_terminated
    return cv, a3


def test_e11_cv_vs_algorithm3(benchmark):
    rows = []
    for n in SIZES:
        cv, a3 = compare_one(n)
        rows.append(
            {
                "n": n,
                "log*n": log_star(n),
                "cv_rounds(3col,sync)": cv.rounds,
                "alg3_rounds(5col,async)": a3.round_complexity,
                "overhead": round(a3.round_complexity / cv.rounds, 2),
            }
        )
    emit("E11: Cole-Vishkin vs Algorithm 3", rows)
    # Both flat in n; alg3's constant within a small factor of CV's.
    assert rows[-1]["cv_rounds(3col,sync)"] <= rows[0]["cv_rounds(3col,sync)"] + 2
    assert rows[-1]["alg3_rounds(5col,async)"] <= 6 * rows[-1]["cv_rounds(3col,sync)"]

    benchmark.pedantic(compare_one, args=(SIZES[-1],), rounds=2, iterations=1)


def test_e11_priority_greedy_is_chain_bound(benchmark):
    """The greedy baseline's rounds track the longest decreasing-id
    path — the same quantity driving Algorithms 1-2 — and its palette
    is Δ+1 = 3 on the ring."""
    from repro.analysis.chains import longest_monotone_run

    def workload():
        rows = []
        for n in (64, 256, 1024):
            ids = random_distinct_ids(n, seed=1)
            res = run_local(PriorityGreedyColoring(), Cycle(n), ids)
            assert not coloring_violations(Cycle(n), res.outputs)
            rows.append(
                {
                    "n": n,
                    "rounds": res.rounds,
                    "longest_chain": longest_monotone_run(ids),
                    "colors": max(res.outputs.values()) + 1,
                }
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E11: priority-greedy baseline", rows)
    for row in rows:
        assert row["rounds"] <= row["longest_chain"] + 1
        assert row["colors"] <= 3
