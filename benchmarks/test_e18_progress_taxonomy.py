"""E18 — the §1.3 progress taxonomy, computed exactly.

Regenerates the wait-free / starvation-free / obstruction-free table
for every shipped algorithm on C_3 (exhaustive configuration-graph
analysis).  The headline rows sharpen finding E13: Algorithms 2–3 are
*obstruction-free only* — the livelock is a fair cycle, so even
starvation-freedom fails — while the obstruction-freedom the paper
proves for the b-subcomponent survives intact.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.adaptive_five import AdaptiveFiveColoring
from repro.extensions.fast_six import FastSixColoring
from repro.lowerbounds.mis import CautiousMIS, EagerLocalMaxMIS
from repro.lowerbounds.progress import classify_progress
from repro.lowerbounds.small_palette import PureGreedyColoring
from repro.model.topology import Cycle

ALGORITHMS = [
    ("Algorithm 1 (6 colors)", SixColoring),
    ("Algorithm 2 (5 colors)", FiveColoring),
    ("Algorithm 3 (fast 5)", FastFiveColoring),
    ("FastSix (repair, ours)", FastSixColoring),
    ("AdaptiveFive (failed repair)", AdaptiveFiveColoring),
    ("pure greedy (candidate)", PureGreedyColoring),
    ("cautious MIS (candidate)", CautiousMIS),
    ("eager MIS (candidate)", EagerLocalMaxMIS),
]

EXPECTED = {
    "Algorithm 1 (6 colors)": (True, True, True),
    "Algorithm 2 (5 colors)": (False, False, True),
    "Algorithm 3 (fast 5)": (False, False, True),
    "FastSix (repair, ours)": (True, True, True),
    "AdaptiveFive (failed repair)": (False, False, True),
    "pure greedy (candidate)": (False, False, True),
    "cautious MIS (candidate)": (False, True, False),
    "eager MIS (candidate)": (True, True, True),
}


def test_e18_taxonomy_table(benchmark):
    def workload():
        rows = []
        for label, factory in ALGORITHMS:
            report = classify_progress(factory(), Cycle(3), [1, 2, 3])
            assert report.exhausted, label
            rows.append(
                {
                    "algorithm": label,
                    "wait_free": report.wait_free,
                    "starvation_free": report.starvation_free,
                    "obstruction_free": report.obstruction_free,
                    "configs": report.configs,
                }
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E18: progress taxonomy on C_3 (exhaustive)", rows)
    for row in rows:
        expected = EXPECTED[row["algorithm"]]
        measured = (
            row["wait_free"], row["starvation_free"], row["obstruction_free"],
        )
        assert measured == expected, (row["algorithm"], measured, expected)
