"""E3 — Theorem 3.11: Algorithm 2 is O(n), 5 colors, proper.

Regenerates the linear-scaling series on monotone inputs (measured
rounds vs 3n+8 bound, linear fit slope), the palette check, and the
exact small-n ground truth from the exhaustive explorer — including the
E13 caveat that the exact worst case over *all* schedules is unbounded.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.complexity import fit_linear, theorem_3_11_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.analysis.verify import verify_execution
from repro.core.coloring5 import FiveColoring
from repro.lowerbounds.small_palette import alg2_exact_worst_case
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler

SIZES = [16, 64, 256, 1024]


def run_one(n):
    result = run_execution(
        FiveColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
        max_time=500_000,
    )
    assert result.all_terminated
    assert verify_execution(Cycle(n), result, palette=range(5)).ok
    return result


def test_e3_linear_scaling(benchmark):
    rows, ns, measured = [], [], []
    for n in SIZES:
        result = run_one(n)
        ns.append(n)
        measured.append(result.round_complexity)
        rows.append(
            {
                "n": n,
                "measured_max": result.round_complexity,
                "thm_3_11_bound": theorem_3_11_bound(n),
                "within": result.round_complexity <= theorem_3_11_bound(n),
            }
        )
        assert result.round_complexity <= theorem_3_11_bound(n)
    slope, _ = fit_linear(ns, measured)
    rows.append({"n": "fit", "measured_max": f"slope={slope:.3f}", "thm_3_11_bound": "3.0", "within": ""})
    emit("E3: Algorithm 2 linear scaling (monotone ids, synchronous)", rows)
    # The shape claim: rounds grow linearly (slope near 1 for this
    # schedule) and far from flat.
    assert slope > 0.5

    benchmark.pedantic(run_one, args=(SIZES[-1],), rounds=2, iterations=1)


def test_e3_five_color_palette(benchmark):
    used = set()
    def workload():
        for seed in range(8):
            n = 48
            result = run_execution(
                FiveColoring(), Cycle(n), random_distinct_ids(n, seed=seed),
                BernoulliScheduler(p=0.5, seed=seed), max_time=200_000,
            )
            assert result.all_terminated
            used.update(result.outputs.values())
        return used

    benchmark.pedantic(workload, rounds=1, iterations=1)
    assert used <= set(range(5))
    emit("E3: palette usage", [{"colors_used": sorted(used)}])


def test_e3_exact_small_n_ground_truth(benchmark):
    """Exhaustive worst case on C_3: unbounded (the E13 finding), while
    every *fair-tailed finite* execution in the ensembles terminates."""
    worst = benchmark.pedantic(
        alg2_exact_worst_case, args=(3,), rounds=1, iterations=1,
    )
    emit(
        "E3: exact worst-case activations on C_3 over ALL schedules",
        [{"process": p, "worst_case": v} for p, v in worst.items()],
    )
    assert any(v == math.inf for v in worst.values())
