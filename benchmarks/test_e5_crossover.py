"""E5 — head-to-head: Algorithm 2 (Θ(n)) vs Algorithm 3 (O(log* n)).

Regenerates the who-wins series on worst-case (monotone) inputs: the
activation counts cross almost immediately (Algorithm 3 wins for every
n above a small constant) and the gap grows linearly — the paper's
motivation for Section 4.  Ablation A3 rides along: Algorithm 1's pair
palette vs Algorithm 2's scalar palette on identical executions.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import monotone_ids
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler

SIZES = [4, 8, 16, 64, 256, 1024, 4096]


def rounds_of(algorithm, n):
    result = run_execution(
        algorithm, Cycle(n), monotone_ids(n), SynchronousScheduler(),
        max_time=500_000,
    )
    assert result.all_terminated
    return result.round_complexity


def test_e5_crossover_table(benchmark):
    rows = []
    crossover = None
    for n in SIZES:
        slow = rounds_of(FiveColoring(), n)
        fast = rounds_of(FastFiveColoring(), n)
        winner = "alg3" if fast < slow else ("tie" if fast == slow else "alg2")
        if crossover is None and fast < slow:
            crossover = n
        rows.append(
            {"n": n, "alg2_rounds": slow, "alg3_rounds": fast,
             "speedup": round(slow / max(fast, 1), 1), "winner": winner}
        )
    emit("E5: Algorithm 2 vs Algorithm 3 (monotone ids, synchronous)", rows)

    # Shape claims: alg3 wins from small n on; the gap grows with n.
    assert crossover is not None and crossover <= 64
    assert rows[-1]["speedup"] >= 20

    benchmark.pedantic(
        rounds_of, args=(FastFiveColoring(), SIZES[-1]), rounds=2, iterations=1,
    )


def test_e5_ablation_a3_pair_vs_scalar(benchmark):
    """A3: Algorithm 1's pair palette (6 colors) vs Algorithm 2's scalar
    palette (5 colors) — same inputs, same schedule; Algorithm 1 pays
    one extra color but the same O(chain) activations."""
    rows = []
    for n in (16, 64, 256):
        a1 = rounds_of(SixColoring(), n)
        a2 = rounds_of(FiveColoring(), n)
        rows.append({"n": n, "alg1_rounds(6col)": a1, "alg2_rounds(5col)": a2})
    emit("E5/A3: pair palette vs scalar palette", rows)

    benchmark.pedantic(rounds_of, args=(SixColoring(), 256), rounds=2, iterations=1)
