"""E15 — the DECOUPLED separation (§1.4): 3 colors wait-free there,
≥5 in the paper's model.

Regenerates: (i) the palette separation table across the three models;
(ii) the O(log* n) DECOUPLED round complexity of the full-information
CV simulation (exactly matching the LOCAL engine's outputs); (iii) the
wait-free announcement protocol's crash tolerance.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import coloring_violations, verify_execution
from repro.core.coin_tossing import log_star
from repro.core.fast_coloring5 import FastFiveColoring
from repro.decoupled import (
    AnnouncementColoring,
    CVFullInfoRing,
    CVInput,
    cv_window_radius,
    run_decoupled,
)
from repro.localmodel import ColeVishkinRing, run_local
from repro.model.execution import run_execution
from repro.model.faults import crash_after_time
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


def ring_inputs(ids):
    n = len(ids)
    return [
        CVInput(x=ids[i], pred=ids[(i - 1) % n], succ=ids[(i + 1) % n])
        for i in range(n)
    ]


def test_e15_palette_separation(benchmark):
    """One instance, three models: colors actually needed."""
    n = 60
    ids = random_distinct_ids(n, seed=5)

    def workload():
        local = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
        decoupled = run_decoupled(
            AnnouncementColoring(), Cycle(n), ids,
            BernoulliScheduler(p=0.5, seed=5),
        )
        asynchronous = run_execution(
            FastFiveColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=5),
        )
        return local, decoupled, asynchronous

    local, decoupled, asynchronous = benchmark.pedantic(
        workload, rounds=2, iterations=1,
    )
    assert not coloring_violations(Cycle(n), local.outputs)
    assert not coloring_violations(Cycle(n), decoupled.outputs)
    assert verify_execution(Cycle(n), asynchronous, palette=range(5)).ok

    rows = [
        {"model": "LOCAL (sync, failure-free)",
         "colors": len(set(local.outputs.values())), "lower_bound": 3},
        {"model": "DECOUPLED (async procs, sync net)",
         "colors": len(set(decoupled.outputs.values())), "lower_bound": 3},
        {"model": "paper (fully async, crash-prone)",
         "colors": len(set(asynchronous.outputs.values())), "lower_bound": 5},
    ]
    emit("E15: palette separation across models", rows)
    assert len(set(decoupled.outputs.values())) <= 3
    assert len(set(local.outputs.values())) <= 3


@pytest.mark.parametrize("n", [64, 512, 4096])
def test_e15_cv_simulation_logstar_rounds(benchmark, n):
    ids = random_distinct_ids(n, seed=n)
    inputs = ring_inputs(ids)

    def workload():
        result = run_decoupled(
            CVFullInfoRing(id_bits=64), Cycle(n), inputs, SynchronousScheduler(),
        )
        assert result.all_decided
        return result

    result = benchmark.pedantic(workload, rounds=1, iterations=1)
    local = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
    emit(
        f"E15: full-information CV on C_{n}",
        [{
            "n": n,
            "log*n": log_star(n),
            "decoupled_rounds": result.final_round,
            "window_radius": cv_window_radius(64),
            "matches_LOCAL": result.outputs == local.outputs,
            "colors": len(set(result.outputs.values())),
        }],
    )
    assert result.outputs == local.outputs
    assert result.final_round <= cv_window_radius(64) + 3


def test_e15_announcement_crash_tolerance(benchmark):
    n = 60

    def workload():
        plan = crash_after_time(
            SynchronousScheduler(), {p: 2 for p in range(0, n, 3)},
        )
        result = run_decoupled(
            AnnouncementColoring(), Cycle(n), list(range(n)), plan,
        )
        return result

    result = benchmark.pedantic(workload, rounds=2, iterations=1)
    survivors = set(range(n)) - set(range(0, n, 3))
    emit(
        "E15: announcement protocol under the E13b crash pattern",
        [{
            "survivors_decided": survivors <= set(result.outputs),
            "colors": sorted(set(result.outputs.values())),
            "max_activations": result.activation_complexity,
        }],
    )
    # The very pattern that starves Algorithm 3 (E13b) is harmless in
    # DECOUPLED: the network keeps relaying for the survivors.
    assert survivors <= set(result.outputs)
    assert not coloring_violations(Cycle(n), result.outputs)
