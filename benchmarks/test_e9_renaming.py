"""E9 — the shared-memory baseline: (2n−1)-renaming and the C_3
coincidence (Property 2.3 context).

Regenerates: names-used vs the 2n−1 namespace across n; the exhaustive
C_3 check that renaming and cycle coloring live in the same model; and
measured renaming step counts.
"""

import pytest

from benchmarks.conftest import emit
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.topology import CompleteGraph
from repro.schedulers import BernoulliScheduler, SynchronousScheduler, UniformSubsetScheduler
from repro.shm import RankRenaming, RenamingSpec, run_shared_memory

SIZES = [2, 3, 4, 6, 8, 12, 16]


def rename_ensemble(n, seeds=range(6)):
    """Max name used and max steps across schedules."""
    max_name = 0
    max_steps = 0
    for seed in seeds:
        for schedule in (
            SynchronousScheduler(),
            BernoulliScheduler(p=0.6, seed=seed),
            UniformSubsetScheduler(seed=seed),
        ):
            ids = [31 * i + 7 for i in range(n)]
            result = run_shared_memory(RankRenaming(), ids, schedule)
            assert result.all_terminated
            assert not RenamingSpec(n, 2 * n - 1).check(result.outputs)
            max_name = max(max_name, max(result.outputs.values()))
            max_steps = max(max_steps, result.round_complexity)
    return max_name, max_steps


def test_e9_namespace_table(benchmark):
    rows = []
    for n in SIZES:
        max_name, max_steps = rename_ensemble(n)
        rows.append(
            {
                "n": n,
                "namespace": 2 * n - 1,
                "max_name_used": max_name,
                "within": max_name <= 2 * n - 2,
                "max_steps": max_steps,
            }
        )
        assert max_name <= 2 * n - 2
    emit("E9: rank-based (2n-1)-renaming", rows)

    benchmark.pedantic(rename_ensemble, args=(SIZES[-1],), rounds=1, iterations=1)


def test_e9_c3_needs_five_names(benchmark):
    """For n = 3 contention drives names up to 4 — i.e. 5 names are
    used, matching the 2n−1 = 5 lower bound that Property 2.3
    transfers to cycle coloring."""

    def workload():
        seen = set()
        for seed in range(40):
            result = run_shared_memory(
                RankRenaming(), [3, 1, 2], UniformSubsetScheduler(seed=seed),
            )
            seen.update(result.outputs.values())
        return seen

    seen = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E9: names observed for n=3", [{"names_used": sorted(seen)}])
    assert max(seen) == 4  # the 5th name is really exercised
    assert seen <= set(range(5))


def test_e9_renaming_exhaustively_wait_free_n3(benchmark):
    def workload():
        explorer = BoundedExplorer(RankRenaming(), CompleteGraph(3), [3, 1, 2])
        livelock = explorer.find_livelock(max_depth=60, max_configs=300_000)
        worst = {p: explorer.max_activations(p) for p in range(3)}
        return livelock, worst

    livelock, worst = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit(
        "E9: exhaustive wait-freedom of renaming on n=3",
        [{"livelock": livelock.found, "exact_worst_case": max(worst.values())}],
    )
    assert not livelock.found and livelock.exhausted
    assert max(worst.values()) < float("inf")
