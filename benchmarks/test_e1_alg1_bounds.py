"""E1 — Theorem 3.1: Algorithm 1 bounds (⌊3n/2⌋ + 4, 6 colors, proper).

Regenerates the bound-vs-measured rows: for each cycle size and
scheduler, the measured maximum activations must sit below the theorem
bound, outputs must lie in the 6-pair palette and properly color the
cycle.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    RoundRobinScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
)

SCHEDULES = {
    "synchronous": SynchronousScheduler,
    "round-robin": RoundRobinScheduler,
    "alternating": AlternatingScheduler,
    "staggered": lambda: StaggeredScheduler(stagger=2),
    "bernoulli": lambda: BernoulliScheduler(p=0.4, seed=1),
}

SIZES = [8, 32, 128, 512]


def run_one(n, schedule_factory, inputs):
    result = run_execution(
        SixColoring(), Cycle(n), inputs, schedule_factory(), max_time=200_000,
    )
    assert result.all_terminated
    assert verify_execution(Cycle(n), result, palette=SIX_PALETTE).ok
    return result


@pytest.mark.parametrize("n", SIZES)
def test_e1_bound_vs_measured(benchmark, n):
    """Rows: per scheduler, measured max activations vs ⌊3n/2⌋+4."""
    inputs = monotone_ids(n)  # worst-case chain
    rows = []
    for name, factory in SCHEDULES.items():
        result = run_one(n, factory, inputs)
        rows.append(
            {
                "n": n,
                "scheduler": name,
                "measured_max": result.round_complexity,
                "thm_3_1_bound": theorem_3_1_bound(n),
                "within": result.round_complexity <= theorem_3_1_bound(n),
            }
        )
        assert result.round_complexity <= theorem_3_1_bound(n)
    emit(f"E1: Algorithm 1 on C_{n} (monotone ids)", rows)

    benchmark.pedantic(
        run_one, args=(n, SynchronousScheduler, inputs), rounds=3, iterations=1,
    )


def test_e1_palette_usage(benchmark):
    """All six pair colors appear across instances; never a seventh."""
    used = set()
    def workload():
        for seed in range(10):
            n = 64
            result = run_one(
                n, lambda: BernoulliScheduler(p=0.5, seed=seed),
                random_distinct_ids(n, seed=seed),
            )
            used.update(result.outputs.values())
        return used

    benchmark.pedantic(workload, rounds=1, iterations=1)
    assert used <= set(SIX_PALETTE)
    emit(
        "E1: palette usage (10 random instances, n=64)",
        [{"colors_used": len(used), "palette_size": SIX_PALETTE.size}],
    )
