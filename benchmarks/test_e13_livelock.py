"""E13 — the reproduction finding: Algorithms 2-3 are not wait-free as
printed (Algorithm 1 is, exhaustively).

Regenerates: (i) the canonical witness replay — activations grow with
the schedule length, no output; (ii) the from-scratch explorer search
per id order; (iii) Algorithm 1's exhaustive cleanliness and exact
worst cases next to the Theorem 3.1 bound; (iv) the crash-triggered
E13b variant under the synchronous schedule.
"""

import itertools
import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.verify import verify_execution
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.livelock import (
    demonstrate_crash_livelock,
    demonstrate_livelock,
    find_livelock,
)
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.topology import Cycle


def test_e13_witness_replay(benchmark):
    rows = []
    for loops in (10, 100, 1000):
        result = demonstrate_livelock(loop_iterations=loops)
        rows.append(
            {
                "loop_iterations": loops,
                "p1_activations": result.activations[1],
                "p2_activations": result.activations[2],
                "returned": sorted(result.outputs),
                "safety_ok": verify_execution(
                    Cycle(3), result, palette=range(5)
                ).ok,
            }
        )
        assert result.outputs.keys() == {0}
    emit("E13: canonical witness replay (Algorithm 2, C_3, ids 1,2,3)", rows)

    benchmark.pedantic(
        demonstrate_livelock, kwargs={"loop_iterations": 500},
        rounds=3, iterations=1,
    )


def test_e13_search_per_id_order(benchmark):
    def workload():
        rows = []
        for algorithm, label in (
            (FiveColoring(), "alg2"), (FastFiveColoring(), "alg3"),
        ):
            for ids in itertools.permutations((1, 2, 3)):
                outcome = find_livelock(algorithm, n=3, identifiers=ids)
                rows.append(
                    {"algorithm": label, "ids": ids, "livelock": outcome.found}
                )
                assert outcome.found, (label, ids)
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E13: livelock found for every id order", rows)


def test_e13_algorithm1_exhaustively_clean(benchmark):
    def workload():
        rows = []
        for n in (3, 4, 5):
            if n <= 4:  # full permutation sweep for the small sizes
                for ids in itertools.permutations(range(1, n + 1)):
                    explorer = BoundedExplorer(SixColoring(), Cycle(n), list(ids))
                    livelock = explorer.find_livelock(max_depth=150, max_configs=400_000)
                    assert not livelock.found and livelock.exhausted, (n, ids)
            explorer = BoundedExplorer(
                SixColoring(), Cycle(n), list(range(1, n + 1)),
            )
            worst = max(
                explorer.max_activations(p, max_configs=3_000_000)
                for p in range(n)
            )
            rows.append(
                {
                    "n": n,
                    "id_orders_checked": math.factorial(n) if n <= 4 else 1,
                    "livelocks": 0,
                    "exact_worst_case": worst,
                    "thm_3_1_bound": theorem_3_1_bound(n),
                }
            )
            assert worst <= theorem_3_1_bound(n)
            # Measured exact pattern: worst case == n on monotone ids.
            assert worst == n
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E13: Algorithm 1 exhaustive wait-freedom", rows)


def test_e13b_crash_triggered(benchmark):
    result = benchmark.pedantic(
        demonstrate_crash_livelock, kwargs={"steps": 1500}, rounds=1, iterations=1,
    )
    stuck = sorted(p for p in result.pending if p in (1, 2))
    emit(
        "E13b: synchronous schedule + crashes starves Algorithm 3",
        [{
            "starved_survivors": stuck,
            "their_activations": [result.activations[p] for p in stuck],
            "safety_ok": verify_execution(Cycle(20), result, palette=range(5)).ok,
        }],
    )
    assert stuck == [1, 2]
