"""E16 — self-stabilization vs wait-freedom (§1.4 comparison).

Regenerates: stabilization moves from full corruption across daemons
and sizes (shape: O(n) total moves, O(1) amortized per node), and the
model-guarantee comparison table.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import random_distinct_ids
from repro.model.topology import Cycle
from repro.schedulers import (
    RoundRobinScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)
from repro.selfstab import ColoringRule, corrupt_states, run_selfstab

SIZES = [16, 64, 256]
DAEMONS = {
    "central (round-robin)": RoundRobinScheduler,
    "synchronous": SynchronousScheduler,
    "distributed (random)": lambda: UniformSubsetScheduler(seed=3),
}


def stabilize(n, daemon_factory, seed=0):
    ids = random_distinct_ids(n, seed=seed)
    rule = ColoringRule(max_degree=2)
    init = corrupt_states(ids, random.Random(seed), color_space=100)
    result = run_selfstab(rule, Cycle(n), init, daemon_factory(), max_steps=100_000)
    assert result.stabilized
    assert rule.legitimate(result.states, Cycle(n))
    return result


@pytest.mark.parametrize("daemon_name", sorted(DAEMONS))
def test_e16_stabilization_moves(benchmark, daemon_name):
    factory = DAEMONS[daemon_name]
    rows = []
    for n in SIZES:
        result = stabilize(n, factory)
        rows.append(
            {
                "n": n,
                "daemon": daemon_name,
                "total_moves": result.moves,
                "moves_per_node": round(result.moves / n, 2),
                "max_node_moves": result.max_moves,
            }
        )
        # Shape: linear total work, constant-ish per node.
        assert result.moves <= 4 * n
    emit(f"E16: stabilization from full corruption ({daemon_name})", rows)

    benchmark.pedantic(stabilize, args=(SIZES[-1], factory), rounds=2, iterations=1)


def test_e16_model_comparison(benchmark):
    """The qualitative table of §1.4, with measured palette columns."""
    from repro.analysis.verify import verify_execution
    from repro.core.fast_coloring5 import FastFiveColoring
    from repro.model.execution import run_execution
    from repro.schedulers import BernoulliScheduler

    def workload():
        n = 40
        ids = random_distinct_ids(n, seed=2)
        stab = stabilize(n, lambda: UniformSubsetScheduler(seed=1), seed=2)
        wf = run_execution(
            FastFiveColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=2),
        )
        assert verify_execution(Cycle(n), wf, palette=range(5)).ok
        return stab, wf

    stab, wf = benchmark.pedantic(workload, rounds=1, iterations=1)
    rows = [
        {
            "model": "self-stabilizing",
            "tolerates": "arbitrary initial corruption",
            "assumes": "failure-free execution",
            "palette(ring)": 3,
            "guarantee": "eventual legitimacy",
        },
        {
            "model": "paper (wait-free)",
            "tolerates": "crashes at any time",
            "assumes": "clean start",
            "palette(ring)": 5,
            "guarantee": "bounded personal steps",
        },
    ]
    emit("E16: fault-model comparison (§1.4)", rows)
    assert stab.stabilized and wf.all_terminated
