"""E12 — Appendix A: Algorithm 4 wait-free O(Δ²)-colors general graphs.

Regenerates the per-topology table: Δ, palette bound (Δ+1)(Δ+2)/2,
colors actually used, max activations — across tori, stars, complete
graphs, random graphs, and with crashes.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.verify import verify_execution
from repro.core.general import GeneralGraphColoring
from repro.model.execution import run_execution
from repro.model.faults import crash_after_time
from repro.model.topology import CompleteGraph, Cycle, GeneralGraph, Star, Torus
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


def topologies():
    yield Cycle(64)
    yield Torus(6, 8)
    yield Star(12)
    yield CompleteGraph(9)
    nx = pytest.importorskip("networkx")
    for seed, p in ((0, 0.1), (1, 0.25)):
        yield GeneralGraph.from_networkx(
            nx.gnp_random_graph(40, p, seed=seed), name=f"gnp40-{p}",
        )
    yield GeneralGraph.from_networkx(
        nx.random_regular_graph(4, 30, seed=2), name="4-regular-30",
    )


def run_on(topo, schedule):
    inputs = [17 * i + 3 for i in range(topo.n)]
    result = run_execution(
        GeneralGraphColoring(), topo, inputs, schedule, max_time=200_000,
    )
    assert result.all_terminated
    palette = GeneralGraphColoring.palette(max(topo.max_degree(), 1))
    assert verify_execution(topo, result, palette=palette).ok
    return result, palette


def test_e12_topology_table(benchmark):
    rows = []
    for topo in topologies():
        result, palette = run_on(topo, SynchronousScheduler())
        colors_used = len(set(result.outputs.values()))
        rows.append(
            {
                "topology": topo.name,
                "n": topo.n,
                "delta": topo.max_degree(),
                "palette": palette.size,
                "colors_used": colors_used,
                "max_activations": result.round_complexity,
            }
        )
        assert colors_used <= palette.size
    emit("E12: Algorithm 4 on general graphs", rows)

    benchmark.pedantic(
        run_on, args=(Torus(6, 8), SynchronousScheduler()), rounds=2, iterations=1,
    )


def test_e12_random_schedules(benchmark):
    def workload():
        for seed in range(3):
            run_on(Torus(5, 6), BernoulliScheduler(p=0.5, seed=seed))

    benchmark.pedantic(workload, rounds=1, iterations=1)


def test_e12_crash_tolerance(benchmark):
    def workload():
        topo = Torus(5, 5)
        inputs = [7 * i + 1 for i in range(topo.n)]
        plan = crash_after_time(
            SynchronousScheduler(), {p: 2 for p in range(0, topo.n, 5)},
        )
        result = run_execution(
            GeneralGraphColoring(), topo, inputs, plan, max_time=50_000,
        )
        palette = GeneralGraphColoring.palette(4)
        assert verify_execution(topo, result, palette=palette).ok
        survivors = set(range(topo.n)) - set(range(0, topo.n, 5))
        assert survivors <= result.terminated
        return result

    benchmark.pedantic(workload, rounds=2, iterations=1)
    emit("E12: crash tolerance on T_5x5", [{"status": "survivors colored"}])
