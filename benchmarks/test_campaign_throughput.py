"""Campaign backend throughput: pool vs sequential on a fixed grid.

Not a paper experiment — the performance anchor for the
``repro.campaign`` subsystem, tracked from the PR that introduced it.
Runs the same fixed (algorithm × n × schedule × seed) grid through the
sequential in-process backend and the supervised multiprocessing pool,
and emits ``BENCH_campaign.json`` at the repo root with both
throughputs (runs/sec) and the speedup, so the perf trajectory of the
campaign layer is visible across PRs.

The ≥ 2× pool-over-sequential expectation only applies to multi-core
machines (the pool cannot beat physics on one core); the assertion
scales with the visible CPU count, and on a single-CPU runner the
pool leg is not run at all — a 1-CPU "speedup" measures supervisor
overhead, not the pool — so the artifact records ``"pool": null`` and
``"comparable": false`` instead of a number cross-PR comparisons would
have to know to ignore.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.campaign import (
    CampaignSpec,
    PoolBackend,
    SequentialBackend,
    run_campaign,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_campaign.json"

#: Fixed grid: 24 tasks of ~40 ms each (Algorithm 3, C_2048, random
#: activation) — big enough that pool parallelism dominates spawn cost.
GRID = dict(
    algorithms=["fast5"],
    ns=[2048],
    input_families=["random"],
    schedules=["bernoulli"],
    seeds=range(24),
)


def fixed_grid() -> CampaignSpec:
    return CampaignSpec.build(**GRID)


@pytest.mark.slow
def test_campaign_backend_throughput():
    spec = fixed_grid()
    cpus = os.cpu_count() or 1

    seq = run_campaign(spec, backend=SequentialBackend())
    assert seq.all_ok and seq.report.runs == spec.size

    # On a single visible CPU the pool cannot express parallelism: a
    # "speedup" there measures supervisor overhead, nothing the pool
    # controls.  Skip the pool leg entirely and record the gap.
    pool = None
    if cpus >= 2:
        pool = run_campaign(
            spec, backend=PoolBackend(workers=cpus), task_timeout=120.0
        )
        assert pool.all_ok and pool.report.runs == spec.size
        # Identical grids must aggregate identically, whatever the backend.
        assert pool.report == seq.report

    speedup = (
        pool.summary.runs_per_sec / seq.summary.runs_per_sec if pool else None
    )
    payload = {
        "grid": spec.to_dict(),
        "spec_hash": spec.spec_hash,
        "tasks": spec.size,
        "cpus": cpus,
        "workers": pool.summary.workers if pool else None,
        # Cross-PR comparisons skip non-comparable artifacts.
        "comparable": cpus >= 2,
        "sequential": {
            "runs_per_sec": seq.summary.runs_per_sec,
            "wall_time": seq.summary.wall_time,
        },
        "pool": {
            "workers": pool.summary.workers,
            "runs_per_sec": pool.summary.runs_per_sec,
            "wall_time": pool.summary.wall_time,
        } if pool else None,
        "speedup": speedup,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    rows = [
        {"backend": "sequential", "workers": 1,
         "runs/sec": round(seq.summary.runs_per_sec, 1),
         "wall [s]": round(seq.summary.wall_time, 2)},
    ]
    if pool:
        rows.append(
            {"backend": "pool", "workers": pool.summary.workers,
             "runs/sec": round(pool.summary.runs_per_sec, 1),
             "wall [s]": round(pool.summary.wall_time, 2)},
        )
    emit("campaign backend throughput (BENCH_campaign.json)", rows)

    # Acceptance: ≥ 2× on a multi-core machine.  Below 4 visible CPUs
    # the ideal speedup itself approaches the supervisor's overhead, so
    # the bar scales down.
    if cpus >= 4:
        assert speedup >= 2.0, f"pool speedup {speedup:.2f}x < 2x on {cpus} CPUs"
    elif cpus >= 2:
        assert speedup >= 1.2, f"pool speedup {speedup:.2f}x < 1.2x on {cpus} CPUs"


def test_campaign_sequential_overhead(benchmark):
    """Runner overhead per task on a fast grid (spec→expand→run→fold)."""
    spec = CampaignSpec.build(
        algorithms=["fast5"], ns=[64], input_families=["random"],
        schedules=["bernoulli"], seeds=range(10),
    )

    def workload():
        outcome = run_campaign(spec, backend=SequentialBackend())
        assert outcome.all_ok
        return outcome.summary.runs_per_sec

    runs_per_sec = benchmark.pedantic(workload, rounds=3, iterations=1)
    assert runs_per_sec > 50
