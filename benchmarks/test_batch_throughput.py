"""Batch engine throughput: lockstep ensembles vs sequential fast runs.

Not a paper experiment — the performance anchor for the vectorized
batch engine (:mod:`repro.model.batch`).  Runs the standard ensemble
workload (24 seeds of Algorithm 3 on ``C_2048`` under Bernoulli
activation) once as 24 sequential fast-engine runs and once as a
single 24-replica lockstep batch, and emits ``BENCH_batch.json`` at
the repo root with both throughputs (runs/sec) and the speedup, so the
batch engine's perf trajectory is visible across PRs.

The acceptance bar (Issue 4): the batched engine must deliver at least
5× the sequential fast engine's runs/sec on this workload while
producing bit-identical per-replica results — both halves are asserted
here, on the record.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import random_distinct_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.batch import numpy_accelerated, run_batch
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_batch.json"

#: The 24-seed cycle(2048) Bernoulli ensemble of the Issue-4 bar —
#: the same shape the campaign throughput anchor sweeps.
N = 2048
SEEDS = range(24)
MAX_TIME = 100_000


def workload():
    inputs_list = [random_distinct_ids(N, seed=seed) for seed in SEEDS]
    schedules = [BernoulliScheduler(p=0.5, seed=seed) for seed in SEEDS]
    return inputs_list, schedules


@pytest.mark.slow
def test_batch_vs_sequential_throughput():
    runs = len(list(SEEDS))

    def measure_sequential():
        best = float("inf")
        results = None
        for _ in range(3):
            inputs_list, schedules = workload()
            started = time.perf_counter()
            results = [
                run_execution(
                    FastFiveColoring(), Cycle(N), inputs, schedule,
                    max_time=MAX_TIME, engine="fast",
                )
                for inputs, schedule in zip(inputs_list, schedules)
            ]
            best = min(best, time.perf_counter() - started)
        return results, best

    def measure_batch():
        best = float("inf")
        results = None
        for _ in range(3):
            inputs_list, schedules = workload()
            algorithms = [FastFiveColoring() for _ in inputs_list]
            started = time.perf_counter()
            results = run_batch(
                algorithms, Cycle(N), inputs_list, schedules,
                max_time=MAX_TIME,
            )
            best = min(best, time.perf_counter() - started)
        return results, best

    seq_results, seq_time = measure_sequential()
    batch_results, batch_time = measure_batch()

    assert batch_results is not None, "batch engine declined the workload"
    assert all(r.all_terminated for r in seq_results)
    # Bit-identical per replica — the speedup must not buy any drift.
    for i, (got, want) in enumerate(zip(batch_results, seq_results)):
        assert got == want, f"replica {i}: batch result diverged"

    seq_rate = runs / seq_time
    batch_rate = runs / batch_time
    speedup = batch_rate / seq_rate

    payload = {
        "workload": {
            "algorithm": "fast5", "topology": f"cycle({N})",
            "inputs": "random", "schedule": "bernoulli(p=0.5)",
            "replicas": runs, "max_time": MAX_TIME,
        },
        "numpy_accelerated": numpy_accelerated(),
        "sequential_fast": {"runs_per_sec": seq_rate, "wall_time": seq_time},
        "batch": {"runs_per_sec": batch_rate, "wall_time": batch_time},
        "speedup": speedup,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    emit(
        "batch engine throughput (BENCH_batch.json)",
        [
            {"engine": "fast (sequential)",
             "runs/sec": round(seq_rate, 1),
             "wall [s]": round(seq_time, 3)},
            {"engine": "batch (lockstep)",
             "runs/sec": round(batch_rate, 1),
             "wall [s]": round(batch_time, 3)},
        ],
    )

    # The bar only binds where the accelerator is available; the pure
    # tier exists for correctness, not speed.
    if numpy_accelerated():
        assert speedup >= 5.0, (
            f"batch speedup {speedup:.2f}x < 5x over sequential fast runs"
        )
