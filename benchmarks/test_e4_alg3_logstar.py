"""E4 — Theorem 4.4: Algorithm 3 runs in O(log* n) activations.

Regenerates the scaling series: measured max activations vs n over four
orders of magnitude (and vs identifier magnitude up to 512-bit ids),
with the fitted constants of ``rounds ≈ c·log*(n) + d``.  Also records
termination under the slow-chain adversary (the Lemma 4.7–4.10 regime).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.complexity import fit_logstar, logstar_budget
from repro.analysis.inputs import huge_ids, monotone_ids
from repro.analysis.verify import verify_execution
from repro.core.coin_tossing import log_star
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SlowChainScheduler, SynchronousScheduler

SIZES = [16, 128, 1024, 8192, 65536]


def run_one(n, schedule=None):
    result = run_execution(
        FastFiveColoring(), Cycle(n), monotone_ids(n),
        schedule if schedule is not None else SynchronousScheduler(),
        max_time=500_000,
    )
    assert result.all_terminated
    assert verify_execution(Cycle(n), result, palette=range(5)).ok
    return result


def test_e4_logstar_scaling(benchmark):
    rows, ns, measured = [], [], []
    for n in SIZES:
        result = run_one(n)
        ns.append(n)
        measured.append(result.round_complexity)
        rows.append(
            {
                "n": n,
                "log*n": log_star(n),
                "measured_max": result.round_complexity,
                "budget": logstar_budget(n),
            }
        )
        assert result.round_complexity <= logstar_budget(n)
    c, d = fit_logstar(ns, measured)
    rows.append({"n": "fit", "log*n": "", "measured_max": f"c={c:.2f} d={d:.2f}", "budget": ""})
    emit("E4: Algorithm 3 log* scaling (monotone ids, synchronous)", rows)
    # Shape: flat across 4 orders of magnitude.
    assert measured[-1] <= measured[0] + 8

    benchmark.pedantic(run_one, args=(SIZES[-2],), rounds=2, iterations=1)


@pytest.mark.parametrize("bits", [64, 256, 512])
def test_e4_identifier_magnitude(benchmark, bits):
    """Rounds depend on id magnitude only through log*."""
    n = 128

    def workload():
        result = run_execution(
            FastFiveColoring(), Cycle(n), huge_ids(n, bits=bits, seed=1),
            SynchronousScheduler(), max_time=200_000,
        )
        assert result.all_terminated
        return result

    result = benchmark.pedantic(workload, rounds=2, iterations=1)
    emit(
        f"E4: {bits}-bit identifiers on C_{n}",
        [{
            "bits": bits,
            "measured_max": result.round_complexity,
            "budget": logstar_budget(2 ** bits),
        }],
    )
    assert result.round_complexity <= logstar_budget(2 ** bits)


def test_e4_slow_chain_adversary(benchmark):
    """The starved-chain regime of Lemmas 4.7-4.10 still terminates
    within the budget (fast processes are not delayed unboundedly)."""
    n = 512

    def workload():
        return run_one(
            n, SlowChainScheduler(slow=range(n // 2), slowdown=9),
        )

    result = benchmark.pedantic(workload, rounds=2, iterations=1)
    emit(
        "E4: slow-chain adversary (half the ring 9x slower)",
        [{
            "n": n,
            "measured_max": result.round_complexity,
            "budget": logstar_budget(n) * 2,
        }],
    )
    assert result.round_complexity <= 2 * logstar_budget(n)
