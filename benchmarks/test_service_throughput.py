"""Service-layer throughput: cold, cached and coalesced request legs.

Not a paper experiment — the performance anchor for the simulation
service (:mod:`repro.service`).  Starts a real :class:`ColorServer` on
a background event-loop thread and drives it over actual sockets with
the deterministic load generator, measuring three legs against an
in-process uncached sequential baseline (solo fast-engine runs of the
same workload):

* **cold** — every request unique, submitted one at a time: the full
  HTTP + validation + execution path with no cache or batch help.
* **cached** — the identical burst replayed: every response is a
  content-addressed cache hit.
* **coalesced** — a fresh unique burst submitted concurrently inside
  one coalescing window, so requests pack into lockstep batches.

The artifact ``BENCH_service.json`` records all four throughputs plus
the coalesced leg's measured batch occupancy.  The acceptance bars
(Issue 6) — cached ≥ 5× and coalesced ≥ 2× the uncached sequential
baseline — only bind on multi-CPU runners where the serving thread and
the client are not fighting for one core; on a single-CPU box the
artifact records ``"comparable": false`` and the ratio assertions are
skipped (the legs still run, so correctness is exercised either way).
The coalesced bar additionally binds only when at least one
multi-request batch actually formed (``max`` occupancy > 1): a burst
that degraded to single-request batches measured serial dispatch, not
coalescing (see docs/SERVICE.md).
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.campaign.registry import resolve_algorithm, resolve_inputs
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler
from repro.service.loadgen import build_mix, run_loadgen
from repro.service.server import ServerThread

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_service.json"

#: The service anchor workload: 32 unique fast5 ensembles on C_1024
#: under Bernoulli activation — small enough that per-request HTTP
#: overhead is visible, large enough that execution dominates a run.
REQUESTS = 32
N = 1024
MAX_TIME = 100_000

COMPARABLE = (os.cpu_count() or 1) >= 2


def service_mix(seed_base=0):
    return build_mix(
        REQUESTS, duplicates=0.0, algorithm="fast5", n=N,
        schedule="bernoulli", max_time=MAX_TIME, seed_base=seed_base,
    )


def measure_baseline(requests):
    """Uncached sequential solo runs of the exact same workload."""
    started = time.perf_counter()
    for request in requests:
        result = run_execution(
            resolve_algorithm(request.algorithm)(),
            Cycle(request.n),
            resolve_inputs(request.inputs, request.n, request.seed),
            BernoulliScheduler(p=0.4, seed=request.seed),
            max_time=request.max_time,
            engine="fast",
        )
        assert result.all_terminated
    return time.perf_counter() - started


@pytest.mark.slow
def test_service_cold_cached_coalesced_throughput():
    baseline_wall = measure_baseline(service_mix())
    baseline_rate = REQUESTS / baseline_wall

    with ServerThread(coalesce_window=0.05, max_batch=REQUESTS) as server:
        # Leg 1: cold — sequential unique requests, nothing cached.
        cold = run_loadgen(
            port=server.port, requests=REQUESTS, concurrency=1,
            duplicates=0.0, n=N, max_time=MAX_TIME,
        )
        # Leg 2: cached — the identical burst again, all hits.
        cached = run_loadgen(
            port=server.port, requests=REQUESTS, concurrency=4,
            duplicates=0.0, n=N, max_time=MAX_TIME,
        )
        # Leg 3: coalesced — a fresh unique burst posted concurrently
        # inside one window, packing into lockstep batches.
        coalesced = run_loadgen(
            port=server.port, requests=REQUESTS, concurrency=REQUESTS,
            duplicates=0.0, n=N, max_time=MAX_TIME, seed_base=10_000,
        )
        hits = server.registry.value("service_cache_hits_total")
        occupancy = server.registry.value("service_batch_occupancy") or {}

    for leg in (cold, cached, coalesced):
        assert leg["statuses"] == {"200": REQUESTS}
        assert leg["outcomes"]["errors"] == 0
    assert cached["outcomes"]["cached"] == REQUESTS
    assert hits is not None and hits >= REQUESTS
    assert coalesced["outcomes"]["coalesced"] >= 2

    cached_ratio = cached["requests_per_sec"] / baseline_rate
    coalesced_ratio = coalesced["requests_per_sec"] / baseline_rate

    payload = {
        "workload": {
            "algorithm": "fast5", "topology": f"cycle({N})",
            "inputs": "random", "schedule": "bernoulli(p=0.4)",
            "requests": REQUESTS, "max_time": MAX_TIME,
        },
        "comparable": COMPARABLE,
        "cpu_count": os.cpu_count() or 1,
        "baseline_sequential": {
            "requests_per_sec": baseline_rate, "wall_time": baseline_wall,
        },
        "cold": {
            "requests_per_sec": cold["requests_per_sec"],
            "wall_time": cold["wall_seconds"],
        },
        "cached": {
            "requests_per_sec": cached["requests_per_sec"],
            "wall_time": cached["wall_seconds"],
            "speedup_vs_baseline": cached_ratio,
        },
        "coalesced": {
            "requests_per_sec": coalesced["requests_per_sec"],
            "wall_time": coalesced["wall_seconds"],
            "speedup_vs_baseline": coalesced_ratio,
            # What the batcher actually packed: the ≥2x bar is only
            # meaningful when at least one multi-request batch formed
            # (max_occupancy > 1).  Under CPU contention the window can
            # close before followers arrive, degrading the leg to
            # serial execution through no fault of the coalescer.
            "batch_occupancy": {
                "batches": int(occupancy.get("count", 0)),
                "mean": occupancy.get("mean", 0.0),
                "max": occupancy.get("max", 0.0),
            },
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    emit(
        "service throughput (BENCH_service.json)",
        [
            {"leg": "baseline (in-process)",
             "req/sec": round(baseline_rate, 1),
             "speedup": 1.0},
            {"leg": "cold (HTTP, sequential)",
             "req/sec": round(cold["requests_per_sec"], 1),
             "speedup": round(cold["requests_per_sec"] / baseline_rate, 2)},
            {"leg": "cached (HTTP)",
             "req/sec": round(cached["requests_per_sec"], 1),
             "speedup": round(cached_ratio, 2)},
            {"leg": "coalesced (HTTP)",
             "req/sec": round(coalesced["requests_per_sec"], 1),
             "speedup": round(coalesced_ratio, 2)},
        ],
    )

    # The bars only bind where client and server have separate cores;
    # on a 1-CPU runner the artifact records comparable=false instead.
    if COMPARABLE:
        assert cached_ratio >= 5.0, (
            f"cached leg {cached_ratio:.2f}x < 5x over uncached baseline"
        )
        # The coalesced bar additionally requires that batching actually
        # happened: if every batch held one request (the window closed
        # before concurrent followers arrived — scheduling noise, not a
        # coalescer regression), the leg measured serial HTTP dispatch
        # and a 2x speedup claim would be vacuous either way.
        if occupancy.get("max", 0.0) > 1:
            assert coalesced_ratio >= 2.0, (
                f"coalesced leg {coalesced_ratio:.2f}x < 2x over uncached "
                f"baseline (max batch occupancy "
                f"{occupancy.get('max', 0.0):.0f})"
            )
