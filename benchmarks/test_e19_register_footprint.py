"""E19 — §2.1's space claim: constant count of O(log n)-bit variables.

Regenerates the footprint table: max register payload in bits vs
identifier magnitude and n, plus the shrink effect of Algorithm 3's
identifier reduction (late-execution registers are constant-size).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.footprint import measure_footprint
from repro.analysis.inputs import huge_ids, monotone_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler


def traced_run(ids):
    return run_execution(
        FastFiveColoring(), Cycle(len(ids)), ids, SynchronousScheduler(),
        record_registers=True, max_time=100_000,
    )


def test_e19_footprint_vs_id_magnitude(benchmark):
    n = 64

    def workload():
        rows = []
        for bits in (16, 64, 256, 1024):
            result = traced_run(huge_ids(n, bits=bits, seed=2))
            assert result.all_terminated
            report = measure_footprint(result.trace, n)
            rows.append(
                {
                    "id_bits": bits,
                    "max_register_bits": report.max_bits,
                    "median_first": report.median_bits_first_write,
                    "median_last": report.median_bits_last_write,
                    "shrunk_fraction": round(report.shrunk_fraction, 2),
                }
            )
            # O(log max_id): payload ≈ id bits + small constant fields.
            assert report.max_bits <= bits + 20
            assert report.shrank
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E19: register footprint vs identifier magnitude (Alg 3, C_64)", rows)
    # Typical late-execution registers are near-constant regardless of
    # the id magnitude (the reduction's space dividend).
    finals = [r["median_last"] for r in rows]
    assert max(finals) <= min(finals) + 16


def test_e19_footprint_vs_n(benchmark):
    def workload():
        rows = []
        for n in (16, 128, 1024):
            result = traced_run(monotone_ids(n))
            report = measure_footprint(result.trace, n)
            rows.append(
                {
                    "n": n,
                    "id_bits": (n - 1).bit_length(),
                    "max_register_bits": report.max_bits,
                }
            )
            assert report.max_bits <= (n - 1).bit_length() + 20
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E19: register footprint vs n (monotone ids)", rows)
