"""E14 — the repair: FastSixColoring is wait-free (exhaustive small n),
O(log* n) empirically, 6 colors; the 5-color repair attempt fails.

Regenerates: the E4-style scaling series for the repair, its exhaustive
small-n verification, survival of both E13 witnesses, and the
falsification of the AdaptiveFive attempt.
"""

import itertools

import pytest

from benchmarks.conftest import emit
from repro.analysis.complexity import fit_logstar, logstar_budget
from repro.analysis.inputs import monotone_ids
from repro.analysis.verify import verify_execution
from repro.core.coin_tossing import log_star
from repro.extensions.adaptive_five import AdaptiveFiveColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.extensions.livelock import (
    demonstrate_crash_livelock,
    find_livelock,
    livelock_schedule,
)
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler

SIZES = [16, 128, 1024, 8192, 65536]


def run_one(n):
    result = run_execution(
        FastSixColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
        max_time=500_000,
    )
    assert result.all_terminated
    assert verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE).ok
    return result


def test_e14_logstar_scaling(benchmark):
    rows, ns, measured = [], [], []
    for n in SIZES:
        result = run_one(n)
        ns.append(n)
        measured.append(result.round_complexity)
        rows.append(
            {"n": n, "log*n": log_star(n),
             "measured_max": result.round_complexity,
             "budget": logstar_budget(n)}
        )
        assert result.round_complexity <= logstar_budget(n)
    c, d = fit_logstar(ns, measured)
    rows.append({"n": "fit", "log*n": "", "measured_max": f"c={c:.2f} d={d:.2f}", "budget": ""})
    emit("E14: FastSix log* scaling (monotone ids)", rows)
    assert measured[-1] <= measured[0] + 8

    benchmark.pedantic(run_one, args=(SIZES[-2],), rounds=2, iterations=1)


def test_e14_exhaustive_wait_freedom(benchmark):
    def workload():
        checked = 0
        for n in (3, 4):
            for ids in itertools.permutations(range(1, n + 1)):
                explorer = BoundedExplorer(FastSixColoring(), Cycle(n), list(ids))
                outcome = explorer.find_livelock(max_depth=200, max_configs=400_000)
                assert not outcome.found and outcome.exhausted, (n, ids)
                checked += 1
        return checked

    checked = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit(
        "E14: FastSix exhaustive wait-freedom",
        [{"id_orders_checked": checked, "livelocks": 0}],
    )


def test_e14_survives_both_witnesses(benchmark):
    def workload():
        canonical = run_execution(
            FastSixColoring(), Cycle(3), [1, 2, 3], livelock_schedule(500),
        )
        crash = demonstrate_crash_livelock(FastSixColoring(), steps=5_000)
        return canonical, crash

    canonical, crash = benchmark.pedantic(workload, rounds=1, iterations=1)
    crashed = set(range(0, 20, 3))
    emit(
        "E14: FastSix on the E13/E13b witnesses",
        [{
            "canonical_all_terminated": canonical.all_terminated,
            "crash_survivors_terminated": not (crash.pending - crashed),
        }],
    )
    assert canonical.all_terminated
    assert not (crash.pending - crashed)


def test_e14_adaptive_five_attempt_fails(benchmark):
    outcome = benchmark.pedantic(
        find_livelock, args=(AdaptiveFiveColoring(), 3), rounds=1, iterations=1,
    )
    emit(
        "E14: 5-color repair attempt (AdaptiveFive)",
        [{"livelock_found": outcome.found, "configs": outcome.configs_seen}],
    )
    assert outcome.found
