"""Pool-vs-thread serving throughput: the Issue 7 performance anchor.

The point of ``repro.pool`` is that a multi-core box should serve cold
misses faster than a single core — which the GIL-bound thread executor
fundamentally cannot do.  This benchmark pins that claim end to end:
two identically configured :class:`ColorServer` instances, one on the
thread executor and one on a warm worker-process pool, each driven
over real sockets with the same unique cold burst, against the same
in-process sequential baseline.

Both servers run *solo* groups (``max_batch=1``, no coalescing
window), so the legs measure pure execution parallelism, not batching:
the thread leg serializes on the GIL while the pool leg spreads the
same work across worker processes.

The artifact ``BENCH_pool.json`` records all three throughputs.  The
acceptance bar (Issue 7) — pool ≥ 1.8× the thread-executor leg — only
binds on runners with ≥ 2 CPUs; a single-CPU box has no parallelism
to win and records ``"comparable": false`` instead (the legs still
run, so the pool serving path is exercised either way).
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.campaign.registry import resolve_algorithm, resolve_inputs
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler
from repro.service.loadgen import build_mix, run_loadgen
from repro.service.server import ServerThread

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_pool.json"

#: Fewer, heavier requests than the service bench: each run must be
#: long enough that process-pool IPC is noise against execution time.
REQUESTS = 24
N = 2048
MAX_TIME = 100_000

CPU_COUNT = os.cpu_count() or 1
COMPARABLE = CPU_COUNT >= 2
#: Execution slots per leg — identical for threads and processes so
#: the comparison isolates the substrate, not the slot count.
WORKERS = max(2, CPU_COUNT)


def pool_mix(seed_base=0):
    return build_mix(
        REQUESTS, duplicates=0.0, algorithm="fast5", n=N,
        schedule="bernoulli", max_time=MAX_TIME, seed_base=seed_base,
    )


def measure_baseline(requests):
    """Uncached sequential solo runs of the exact same workload."""
    started = time.perf_counter()
    for request in requests:
        result = run_execution(
            resolve_algorithm(request.algorithm)(),
            Cycle(request.n),
            resolve_inputs(request.inputs, request.n, request.seed),
            BernoulliScheduler(p=0.4, seed=request.seed),
            max_time=request.max_time,
            engine="fast",
        )
        assert result.all_terminated
    return time.perf_counter() - started


def run_cold_leg(**server_kwargs):
    """One cold unique burst against a fresh server; returns the
    loadgen summary plus the server's registry for metric asserts."""
    with ServerThread(
        coalesce_window=0.0, max_batch=1, **server_kwargs
    ) as server:
        summary = run_loadgen(
            port=server.port, requests=REQUESTS, concurrency=WORKERS,
            duplicates=0.0, n=N, max_time=MAX_TIME,
        )
        registry = server.registry
    assert summary["statuses"] == {"200": REQUESTS}
    assert summary["outcomes"]["errors"] == 0
    return summary, registry


@pytest.mark.slow
def test_pool_vs_thread_executor_throughput():
    baseline_wall = measure_baseline(pool_mix())
    baseline_rate = REQUESTS / baseline_wall

    thread, _ = run_cold_leg(executor_workers=WORKERS)
    pool, pool_registry = run_cold_leg(pool_workers=WORKERS)

    # Every pool-leg request actually went through worker processes.
    pool_tasks = pool_registry.value(
        "pool_tasks_total", kind="group", status="ok"
    )
    assert pool_tasks is not None and pool_tasks == REQUESTS
    assert pool_registry.value("pool_worker_restarts_total") is None

    thread_ratio = thread["requests_per_sec"] / baseline_rate
    pool_ratio = pool["requests_per_sec"] / baseline_rate
    pool_vs_thread = pool["requests_per_sec"] / thread["requests_per_sec"]

    payload = {
        "workload": {
            "algorithm": "fast5", "topology": f"cycle({N})",
            "inputs": "random", "schedule": "bernoulli(p=0.4)",
            "requests": REQUESTS, "max_time": MAX_TIME,
        },
        "comparable": COMPARABLE,
        "cpu_count": CPU_COUNT,
        "workers": WORKERS,
        "baseline_sequential": {
            "requests_per_sec": baseline_rate, "wall_time": baseline_wall,
        },
        "thread_executor": {
            "requests_per_sec": thread["requests_per_sec"],
            "wall_time": thread["wall_seconds"],
            "speedup_vs_baseline": thread_ratio,
        },
        "pool": {
            "requests_per_sec": pool["requests_per_sec"],
            "wall_time": pool["wall_seconds"],
            "speedup_vs_baseline": pool_ratio,
            "speedup_vs_thread": pool_vs_thread,
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    emit(
        "pool vs thread serving (BENCH_pool.json)",
        [
            {"leg": "baseline (in-process)",
             "req/sec": round(baseline_rate, 1),
             "speedup": 1.0},
            {"leg": f"thread executor x{WORKERS} (HTTP)",
             "req/sec": round(thread["requests_per_sec"], 1),
             "speedup": round(thread_ratio, 2)},
            {"leg": f"process pool x{WORKERS} (HTTP)",
             "req/sec": round(pool["requests_per_sec"], 1),
             "speedup": round(pool_ratio, 2)},
        ],
    )

    # The bar only binds where there are cores to win: the pool must
    # beat the GIL-bound thread executor by 1.8x on >= 2 CPUs.
    if COMPARABLE:
        assert pool_vs_thread >= 1.8, (
            f"pool leg {pool_vs_thread:.2f}x < 1.8x over thread executor"
        )
