"""E17 — Property 2.2's engine: Linial's neighborhood graphs [26].

Regenerates the χ(N_t(m)) table — the finite facts behind the
Ω(log* n) round lower bound the paper inherits:

* χ(N_0(m)) = m: zero rounds force the whole identifier space;
* N_1(m) is non-bipartite for m ≥ 5: one round can never 2-color;
* χ(N_1(m)) grows with m (3 at m=5..6, 4 at m=7): no fixed round
  count suffices for 3 colors as the id space grows — which is why the
  paper's O(log* n) is asymptotically optimal.
"""

import pytest

from benchmarks.conftest import emit
from repro.lowerbounds.neighborhood import (
    exact_chromatic_number,
    is_bipartite,
    neighborhood_graph,
)


def test_e17_zero_round_table(benchmark):
    def workload():
        rows = []
        for m in (3, 4, 5, 6, 8, 10):
            chi, exact = exact_chromatic_number(neighborhood_graph(0, m))
            assert exact and chi == m
            rows.append({"m": m, "chi_N0": chi, "meaning": "0 rounds -> m colors"})
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E17: zero-round neighborhood graphs", rows)


def test_e17_one_round_table(benchmark):
    def workload():
        rows = []
        for m in (4, 5, 6):
            graph = neighborhood_graph(1, m)
            chi, exact = exact_chromatic_number(graph)
            assert exact
            rows.append(
                {
                    "m": m,
                    "views": graph.n,
                    "constraints": graph.m,
                    "bipartite": is_bipartite(graph),
                    "chi_N1": chi,
                }
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit("E17: one-round neighborhood graphs", rows)
    chis = [r["chi_N1"] for r in rows]
    assert chis == sorted(chis) and chis[-1] >= 3
    assert not rows[-1]["bipartite"]  # no 1-round 2-coloring, m >= 5


@pytest.mark.slow
def test_e17_three_colors_fail_at_m7(benchmark):
    """The expensive exact fact: χ(N_1(7)) = 4 — even 3 colors need
    more than one round once the id space reaches 7."""

    def workload():
        graph = neighborhood_graph(1, 7)
        return exact_chromatic_number(graph, node_budget=5_000_000)

    chi, exact = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit(
        "E17: chi(N_1(7))",
        [{"m": 7, "chi_N1": chi, "exact": exact,
          "meaning": "1 round cannot 3-color once m >= 7"}],
    )
    assert exact and chi == 4
