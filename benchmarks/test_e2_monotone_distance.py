"""E2 — Lemma 3.9: per-process Algorithm 1 activations vs monotone
distances (min{3ℓ, 3ℓ', ℓ+ℓ'} + 4).

Controls the chain-length axis with sawtooth inputs and reports, per
tooth size, the largest measured per-process activation count against
the per-process lemma bound.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.chains import chain_profile
from repro.analysis.inputs import sawtooth_ids
from repro.core.coloring6 import SixColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, RoundRobinScheduler

RUNS = [2, 4, 8, 16, 32]
N = 128


def run_one(run_length, seed=0):
    inputs = sawtooth_ids(N, run_length)
    profile = chain_profile(inputs)
    result = run_execution(
        SixColoring(), Cycle(N), inputs,
        BernoulliScheduler(p=0.5, seed=seed), max_time=200_000,
    )
    assert result.all_terminated
    worst_ratio = 0.0
    for p in range(N):
        bound = profile.alg1_bound(p)
        assert result.activations[p] <= bound, (run_length, p)
        worst_ratio = max(worst_ratio, result.activations[p] / bound)
    return profile, result, worst_ratio


@pytest.mark.parametrize("run_length", RUNS)
def test_e2_distance_controls_activations(benchmark, run_length):
    profile, result, worst_ratio = benchmark.pedantic(
        run_one, args=(run_length,), rounds=2, iterations=1,
    )
    emit(
        f"E2: sawtooth run={run_length} on C_{N}",
        [{
            "run": run_length,
            "longest_chain": profile.longest_run,
            "measured_max": result.round_complexity,
            "lemma_3_9_worst_bound": profile.worst_alg1_bound,
            "tightness": round(worst_ratio, 3),
        }],
    )


def test_e2_chain_length_monotonicity(benchmark):
    """Longer monotone chains -> larger worst-case bound; the measured
    sequential (round-robin) rounds grow with the chain too."""
    def workload():
        measured = []
        for run_length in RUNS:
            inputs = sawtooth_ids(N, run_length)
            result = run_execution(
                SixColoring(), Cycle(N), inputs, RoundRobinScheduler(),
                max_time=500_000,
            )
            assert result.all_terminated
            measured.append((run_length, result.round_complexity))
        return measured

    measured = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit(
        "E2: rounds vs chain length (round-robin)",
        [{"run": r, "rounds": c} for r, c in measured],
    )
    bounds = [chain_profile(sawtooth_ids(N, r)).worst_alg1_bound for r in RUNS]
    assert bounds == sorted(bounds)
