"""Instrumentation overhead: disabled-mode hooks must stay free.

The observability layer's contract is *zero overhead when disabled*:
every hook sits behind a single ``active_registry()`` check, and the
compiled kernels are not instrumented at all (run-level metrics are
computed post hoc from the result).  This suite enforces the contract
on the PR-2 flagship workload — Algorithm 3 on ``C_10000`` under the
synchronous schedule — by timing the instrumented entry point against
a direct kernel invocation that predates (and bypasses) every hook.

An in-process differential is used instead of comparing against the
checked-in ``BENCH_engine.json`` wall time: absolute times shift with
the machine, but the instrumented-vs-uninstrumented ratio on the same
interpreter is stable.

The second half is the live-bound smoke check: Algorithm 1 on ``C_64``
with the Theorem 3.1 monitor suite attached must report zero
violations, and a deliberately tightened budget must be detected.
"""

import json
import statistics
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.fastpath import FastExecutor
from repro.model.topology import Cycle
from repro.chaos.injector import active_plan
from repro.obs.metrics import active_registry
from repro.obs.monitors import ActivationBudgetMonitor, default_monitors
from repro.obs.trace import (
    FlightRecorder,
    TraceContext,
    active_recorder,
    start_span,
    tracing,
    use_context,
)
from repro.schedulers import SynchronousScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
ENGINE_ARTIFACT = REPO_ROOT / "BENCH_engine.json"

#: Max tolerated relative overhead of the disabled instrumentation
#: path (plus a small absolute slack for timer noise on fast runs).
MAX_OVERHEAD = 0.05
ABS_SLACK = 0.005  # seconds


def _best_of(fn, repeats=5):
    best = float("inf")
    out = None
    for _ in range(repeats):
        started = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - started)
    return out, best


def _paired_median_overhead(base_fn, over_fn, rounds=9):
    """Robust overhead estimate for a cost near the noise floor.

    Timing each side as its own best-of-N batch lets clock drift and
    CPU-frequency steps land entirely on one batch — enough to report a
    *negative* overhead for whichever side happened to run second.  And
    even interleaved, min-of-N picks each side's single luckiest run,
    so two ~45 ms distributions whose true means differ by microseconds
    still produce a sign determined by noise.

    Instead: run the pair back-to-back each round (alternating which
    goes first), take the *per-round difference* — ambient noise within
    a round is shared, so it largely cancels — and summarize with the
    median, which one descheduling blip cannot move.  The median
    absolute deviation of the differences comes back alongside as the
    noise floor: an estimate smaller than it is statistically
    indistinguishable from zero.  Returns ``(base_out, over_out,
    base_median, diff_median, noise_mad)``.
    """
    base_out = over_out = None
    base_times, diffs = [], []
    for i in range(rounds):
        order = ("base", "over") if i % 2 == 0 else ("over", "base")
        elapsed = {}
        for tag in order:
            fn = base_fn if tag == "base" else over_fn
            started = time.perf_counter()
            out = fn()
            elapsed[tag] = time.perf_counter() - started
            if tag == "base":
                base_out = out
            else:
                over_out = out
        base_times.append(elapsed["base"])
        diffs.append(elapsed["over"] - elapsed["base"])
    diff = statistics.median(diffs)
    noise = statistics.median(abs(d - diff) for d in diffs)
    return base_out, over_out, statistics.median(base_times), diff, noise


def test_disabled_instrumentation_overhead_within_5_percent():
    """``FastExecutor.run`` (hooks present, metrics *and tracing*
    disabled) vs the raw kernel call (no hooks at all) on the n=10000
    sync workload.  Since the tracing layer landed, the disabled path
    costs two module-global ``None`` checks (registry + recorder); the
    5% budget binds on their sum."""
    assert active_registry() is None  # disabled is the default
    assert active_recorder() is None  # tracing disabled too
    assert active_plan() is None  # chaos injection disabled too
    n = 10_000
    ids = monotone_ids(n)
    executor = FastExecutor(Cycle(n), FastFiveColoring(), ids)
    assert executor._kernel is not None

    baseline_result, baseline = _best_of(
        lambda: executor._kernel(SynchronousScheduler(), 100_000, 10_000)
    )
    instrumented_result, instrumented = _best_of(
        lambda: executor.run(SynchronousScheduler(), max_time=100_000)
    )
    assert instrumented_result == baseline_result
    assert instrumented_result.all_terminated

    overhead = (instrumented - baseline) / baseline
    emit(
        "disabled-instrumentation overhead (n=10000 sync fast5)",
        [
            {"path": "raw kernel", "wall [s]": round(baseline, 4)},
            {"path": "instrumented entry", "wall [s]": round(instrumented, 4)},
            {"path": "overhead", "wall [s]": round(instrumented - baseline, 4)},
        ],
    )
    assert instrumented <= baseline * (1 + MAX_OVERHEAD) + ABS_SLACK, (
        f"disabled-mode instrumentation costs {overhead:.1%} "
        f"(> {MAX_OVERHEAD:.0%} budget)"
    )


def test_reference_engine_disabled_overhead():
    """The reference engine's per-step monitor/metric gates are `None`
    checks; keep its disabled-mode cost inside the same envelope."""
    n = 500
    ids = monotone_ids(n)

    def run(engine):
        result = run_execution(
            SixColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000, engine=engine,
        )
        assert result.all_terminated
        return result

    # Warm up, then time the reference engine twice — the comparison
    # here is run-to-run stability, pinned loosely to catch a hook
    # accidentally moved inside the hot loop unguarded.
    run("reference")
    _, first = _best_of(lambda: run("reference"), repeats=3)
    _, second = _best_of(lambda: run("reference"), repeats=3)
    assert abs(first - second) <= max(first, second)  # sanity: both ran


def test_traced_run_overhead_recorded_in_engine_artifact():
    """Measure the *enabled* tracing cost on the flagship workload and
    record it as ``BENCH_engine.json`` metadata.

    Traced mode is allowed to cost something — it records real spans —
    but on an engine run it is O(1) span records per run, so the cost
    must stay small and, unlike the disabled path, it is *reported*
    rather than budgeted: the artifact documents what turning tracing
    on costs on this workload.
    """
    n = 10_000
    ids = monotone_ids(n)
    executor = FastExecutor(Cycle(n), FastFiveColoring(), ids)
    scheduler = SynchronousScheduler()
    rounds = 9

    recorder = FlightRecorder(capacity=256)

    def disabled_run():
        return executor.run(scheduler, max_time=100_000)

    def traced_run():
        with tracing(recorder):
            with use_context(TraceContext.new_root()):
                with start_span("bench_run"):
                    return executor.run(scheduler, max_time=100_000)

    # Warm up both paths (kernel cache, span machinery) on a throwaway
    # recorder before any timed round.
    with tracing(FlightRecorder(capacity=256)):
        with use_context(TraceContext.new_root()):
            with start_span("warmup"):
                disabled_run()

    disabled_result, traced_result, disabled, diff, noise = (
        _paired_median_overhead(disabled_run, traced_run, rounds=rounds)
    )
    assert traced_result == disabled_result
    assert recorder.recorded >= 2  # bench_run + engine_run landed

    # Tracing cannot make a run faster, so a negative estimate means
    # the true cost — O(1) span records per run — is below this
    # machine's measurement floor; publish zero rather than a sign
    # drawn from scheduler noise, and record the raw estimate and the
    # floor alongside so the clamp is auditable.
    below_floor = abs(diff) <= noise
    overhead = max(diff, 0.0) / disabled
    emit(
        "tracing overhead (n=10000 sync fast5)",
        [
            {"path": "tracing disabled (median)", "wall [s]": round(disabled, 4)},
            {"path": "tracing enabled (median)", "wall [s]": round(disabled + diff, 4)},
            {"path": "overhead (paired median)", "wall [s]": round(diff, 4)},
            {"path": "noise floor (MAD of diffs)", "wall [s]": round(noise, 4)},
        ],
    )

    # Satellite: the traced-run overhead lands in BENCH_engine.json
    # metadata (merged — test_engine_performance owns the other keys).
    payload = (
        json.loads(ENGINE_ARTIFACT.read_text())
        if ENGINE_ARTIFACT.exists()
        else {}
    )
    payload["tracing"] = {
        "workload": "fast5 cycle(10000) monotone sync",
        "estimator": f"median of {rounds} paired per-round differences",
        "disabled_wall_time": disabled,
        "traced_wall_time": disabled + max(diff, 0.0),
        "traced_overhead_ratio": overhead,
        "raw_diff_seconds": diff,
        "noise_floor_seconds": noise,
        "below_noise_floor": below_floor,
        "spans_per_run": recorder.recorded // rounds,
    }
    ENGINE_ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Loose sanity bound: a handful of span records must not come close
    # to doubling an engine run.
    assert diff <= disabled * 0.5 + ABS_SLACK, (
        f"traced-mode overhead {overhead:.1%} is implausibly high"
    )


def test_bound_monitor_smoke_alg1_c64():
    """Algorithm 1 on C_64: the Theorem 3.1 suite reports zero
    violations live, on both engines (CI smoke criterion)."""
    n = 64
    for engine in ("reference", "fast"):
        monitors = default_monitors("alg1", n)
        result = run_execution(
            SixColoring(), Cycle(n), random_distinct_ids(n, seed=7),
            SynchronousScheduler(), engine=engine, monitors=monitors,
        )
        assert result.all_terminated
        assert all(m.ok for m in monitors), [m.report() for m in monitors]
        assert result.round_complexity <= theorem_3_1_bound(n)


def test_bound_monitor_smoke_detects_tightened_budget():
    """The same smoke run with a budget of 1 must flag violations —
    proving the zero-violation result above is not vacuous."""
    n = 64
    monitor = ActivationBudgetMonitor(1)
    run_execution(
        SixColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
        monitors=[monitor],
    )
    assert not monitor.ok
    assert monitor.violations[0].time >= 1
