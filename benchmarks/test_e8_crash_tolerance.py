"""E8 — wait-freedom under crashes: crash-fraction and crash-time sweeps.

Regenerates the fault-tolerance rows: for each crash fraction, whether
survivors terminated and stayed properly colored.  Algorithm 1 and the
FastSix repair pass at every fraction; Algorithm 3 is reported
including the E13b starvation cases (safety always holds).
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.model.execution import run_execution
from repro.model.faults import CrashPlan
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler

N = 60
FRACTIONS = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9]


def crash_sweep(algorithm_factory, palette, schedule_factory, seeds=(0, 1, 2)):
    rows = []
    all_proper = True
    all_survivors_done = True
    for fraction in FRACTIONS:
        survivors_done = 0
        proper = 0
        runs = 0
        for seed in seeds:
            rng = random.Random(seed)
            crashed = set(rng.sample(range(N), int(fraction * N)))
            plan = CrashPlan(
                schedule_factory(seed),
                crash_times={p: rng.randint(1, 15) for p in crashed},
            )
            result = run_execution(
                algorithm_factory(), Cycle(N), list(range(N)), plan,
                max_time=5_000,
            )
            verdict = verify_execution(Cycle(N), result, palette=palette)
            runs += 1
            proper += verdict.ok
            survivors_done += (set(range(N)) - crashed) <= result.terminated
        rows.append(
            {
                "crash_fraction": fraction,
                "proper": f"{proper}/{runs}",
                "survivors_terminated": f"{survivors_done}/{runs}",
            }
        )
        all_proper &= proper == runs
        all_survivors_done &= survivors_done == runs
    return rows, all_proper, all_survivors_done


def test_e8_algorithm1(benchmark):
    rows, proper, done = benchmark.pedantic(
        crash_sweep,
        args=(SixColoring, list(SIX_PALETTE), lambda s: SynchronousScheduler()),
        rounds=1, iterations=1,
    )
    emit("E8: Algorithm 1 crash sweep (synchronous)", rows)
    assert proper and done


def test_e8_fast_six(benchmark):
    rows, proper, done = benchmark.pedantic(
        crash_sweep,
        args=(FastSixColoring, list(FAST_SIX_PALETTE),
              lambda s: SynchronousScheduler()),
        rounds=1, iterations=1,
    )
    emit("E8: FastSix repair crash sweep (synchronous)", rows)
    assert proper and done


def test_e8_algorithm3_safety_with_starvation_caveat(benchmark):
    """Algorithm 3: safety holds at every fraction; termination of all
    survivors can fail (E13b) — the table records how often."""
    rows, proper, done = benchmark.pedantic(
        crash_sweep,
        args=(FastFiveColoring, list(range(5)),
              lambda s: SynchronousScheduler()),
        rounds=1, iterations=1,
    )
    emit("E8: Algorithm 3 crash sweep (synchronous; E13b caveat)", rows)
    assert proper  # safety always


def test_e8_random_schedule_breaks_phase_lock(benchmark):
    """Under random schedules even Algorithm 3's survivors finish."""
    rows, proper, done = benchmark.pedantic(
        crash_sweep,
        args=(FastFiveColoring, list(range(5)),
              lambda s: BernoulliScheduler(p=0.6, seed=s)),
        rounds=1, iterations=1,
    )
    emit("E8: Algorithm 3 crash sweep (random schedule)", rows)
    assert proper and done
