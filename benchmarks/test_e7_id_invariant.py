"""E7 — Lemma 4.5: published identifiers always properly color the cycle.

Regenerates the invariant-checking ensemble (schedule zoo × sizes) and
the two ablations: A1 (no green light — invariant empirically holds;
recorded as an observation) and A2 (unguarded adoption — invariant
breaks; the count of violating seeds is reported).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.analysis.verify import published_identifier_violations
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    SlowChainScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
)


def invariant_ensemble(algorithm_factory, n, seeds):
    """Run the zoo and count executions with invariant violations."""
    violating = 0
    runs = 0
    for seed in seeds:
        for schedule in (
            SynchronousScheduler(),
            AlternatingScheduler(),
            StaggeredScheduler(stagger=2),
            SlowChainScheduler(slow=range(n // 2), slowdown=7),
            BernoulliScheduler(p=0.45, seed=seed),
        ):
            result = run_execution(
                algorithm_factory(), Cycle(n),
                random_distinct_ids(n, seed=seed), schedule,
                max_time=20_000, record_registers=True,
            )
            runs += 1
            if published_identifier_violations(Cycle(n), result.trace):
                violating += 1
    return runs, violating


def test_e7_invariant_holds_for_paper_algorithm(benchmark):
    runs, violating = benchmark.pedantic(
        invariant_ensemble, args=(FastFiveColoring, 24, range(6)),
        rounds=1, iterations=1,
    )
    emit(
        "E7: Lemma 4.5 invariant (Algorithm 3)",
        [{"executions": runs, "violating": violating}],
    )
    assert violating == 0


def test_e7_ablation_a1_no_green_light(benchmark):
    """A1 observation: the invariant holds even without the green light
    (exhaustive on C_3/C_4 — see tests; here, the ensemble)."""
    runs, violating = benchmark.pedantic(
        invariant_ensemble,
        args=(lambda: FastFiveColoring(green_light=False), 24, range(6)),
        rounds=1, iterations=1,
    )
    emit(
        "E7/A1: no green light (observation: still no violations)",
        [{"executions": runs, "violating": violating}],
    )
    assert violating == 0


def test_e7_ablation_a2_unguarded_adoption(benchmark):
    """A2: dropping the Y < min guard breaks the invariant."""

    def workload():
        violating = 0
        for seed in range(60):
            n = 10
            result = run_execution(
                FastFiveColoring(guarded_adoption=False), Cycle(n),
                random_distinct_ids(n, seed=seed + 700),
                BernoulliScheduler(p=0.5, seed=seed),
                max_time=20_000, record_registers=True,
            )
            if published_identifier_violations(Cycle(n), result.trace):
                violating += 1
        return violating

    violating = benchmark.pedantic(workload, rounds=1, iterations=1)
    emit(
        "E7/A2: unguarded adoption (invariant broken)",
        [{"random_seeds": 60, "violating_executions": violating}],
    )
    assert violating > 0
