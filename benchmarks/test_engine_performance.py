"""Engine microbenchmarks: simulation throughput.

Not a paper experiment — the absolute-performance anchor for the
simulator itself, so regressions in the hot loop (register batching,
view construction, step dispatch) are visible.  Reported as
process-activations per second.

The scattered-access workload (random-subset activation over many
seeds) is expressed as a ``repro.campaign`` grid — the campaign runner
is now the standard way to sweep (input × schedule × seed) loads, and
benchmarking through it keeps its per-task overhead on the hook too.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.analysis.inputs import monotone_ids
from repro.campaign import CampaignSpec, SequentialBackend, run_campaign
from repro.core.coloring5 import FiveColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
ENGINE_ARTIFACT = REPO_ROOT / "BENCH_engine.json"


@pytest.mark.parametrize("n", [100, 1000, 10000])
def test_engine_throughput_synchronous(benchmark, n):
    """Algorithm 3 on monotone ids under lock-step activation."""
    ids = monotone_ids(n)

    def workload():
        result = run_execution(
            FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000,
        )
        assert result.all_terminated
        return sum(result.activations.values())

    activations = benchmark(workload)
    assert activations >= n


def test_engine_fast_vs_reference_speedup():
    """Fast engine vs reference oracle on the n=10000 synchronous load.

    The Issue-2 acceptance bar: the compiled fast path must deliver at
    least 3× the reference engine's activations/sec on the same
    workload as ``test_engine_throughput_synchronous[10000]``, while
    producing an *equal* ``ExecutionResult``.  Both throughputs and the
    speedup land in ``BENCH_engine.json`` at the repo root so the
    engine's perf trajectory is visible across PRs.
    """
    n = 10_000
    ids = monotone_ids(n)

    def measure(engine):
        best = float("inf")
        result = None
        for _ in range(3):
            started = time.perf_counter()
            result = run_execution(
                FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
                max_time=100_000, engine=engine,
            )
            best = min(best, time.perf_counter() - started)
        assert result.all_terminated
        return result, sum(result.activations.values()) / best, best

    ref_result, ref_rate, ref_time = measure("reference")
    fast_result, fast_rate, fast_time = measure("fast")
    assert fast_result == ref_result  # observably identical, on the record

    speedup = fast_rate / ref_rate
    payload = {
        "workload": {
            "algorithm": "fast5", "topology": f"cycle({n})",
            "inputs": "monotone", "schedule": "sync",
            "activations": sum(ref_result.activations.values()),
        },
        "reference": {
            "activations_per_sec": ref_rate, "wall_time": ref_time,
        },
        "fast": {
            "activations_per_sec": fast_rate, "wall_time": fast_time,
        },
        "speedup": speedup,
    }
    ENGINE_ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    emit(
        "execution engine throughput (BENCH_engine.json)",
        [
            {"engine": "reference",
             "activations/sec": round(ref_rate),
             "wall [s]": round(ref_time, 3)},
            {"engine": "fast",
             "activations/sec": round(fast_rate),
             "wall [s]": round(fast_time, 3)},
        ],
    )
    assert speedup >= 3.0, (
        f"fast engine speedup {speedup:.2f}x < 3x over the reference engine"
    )


def test_engine_throughput_linear_workload(benchmark):
    """Algorithm 2's Θ(n) monotone run — the heaviest standard load."""
    n = 2000
    ids = monotone_ids(n)

    def workload():
        result = run_execution(
            FiveColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000,
        )
        assert result.all_terminated
        return result.round_complexity

    rounds = benchmark.pedantic(workload, rounds=3, iterations=1)
    assert rounds == n - 1


def test_engine_throughput_random_schedule(benchmark):
    """Random-subset activation: the scattered-access pattern.

    Migrated onto the campaign subsystem: a 5-seed
    (random inputs × Bernoulli schedule) grid on C_2000, executed by
    the sequential backend so the measurement stays single-process and
    comparable with the pre-campaign numbers.
    """
    spec = CampaignSpec.build(
        algorithms=["fast5"],
        ns=[2000],
        input_families=["random"],
        schedules=[("bernoulli", {"p": 0.5})],
        seeds=range(5),
        max_time=100_000,
    )

    def workload():
        outcome = run_campaign(spec, backend=SequentialBackend())
        assert outcome.all_ok
        assert outcome.report.runs == 5
        return outcome.summary.runs_per_sec

    benchmark.pedantic(workload, rounds=3, iterations=1)
