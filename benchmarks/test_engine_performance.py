"""Engine microbenchmarks: simulation throughput.

Not a paper experiment — the absolute-performance anchor for the
simulator itself, so regressions in the hot loop (register batching,
view construction, step dispatch) are visible.  Reported as
process-activations per second.
"""

import pytest

from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.core.coloring5 import FiveColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


@pytest.mark.parametrize("n", [100, 1000, 10000])
def test_engine_throughput_synchronous(benchmark, n):
    """Algorithm 3 on monotone ids under lock-step activation."""
    ids = monotone_ids(n)

    def workload():
        result = run_execution(
            FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000,
        )
        assert result.all_terminated
        return sum(result.activations.values())

    activations = benchmark(workload)
    assert activations >= n


def test_engine_throughput_linear_workload(benchmark):
    """Algorithm 2's Θ(n) monotone run — the heaviest standard load."""
    n = 2000
    ids = monotone_ids(n)

    def workload():
        result = run_execution(
            FiveColoring(), Cycle(n), ids, SynchronousScheduler(),
            max_time=100_000,
        )
        assert result.all_terminated
        return result.round_complexity

    rounds = benchmark.pedantic(workload, rounds=3, iterations=1)
    assert rounds == n - 1


def test_engine_throughput_random_schedule(benchmark):
    """Random-subset activation: the scattered-access pattern."""
    n = 2000
    ids = random_distinct_ids(n, seed=0)

    def workload():
        result = run_execution(
            FastFiveColoring(), Cycle(n), ids,
            BernoulliScheduler(p=0.5, seed=1), max_time=100_000,
        )
        assert result.all_terminated
        return result.final_time

    benchmark.pedantic(workload, rounds=3, iterations=1)
