"""BackoffPolicy and CircuitBreaker unit tests (no real sleeping)."""

import pytest

from repro.chaos.resilience import BackoffPolicy, CircuitBreaker
from repro.errors import CircuitOpenError


class TestBackoffPolicy:
    def test_same_seed_same_delays(self):
        a = BackoffPolicy(seed=5)
        b = BackoffPolicy(seed=5)
        assert [a.delay(k) for k in range(6)] == [b.delay(k) for k in range(6)]

    def test_delays_grow_exponentially_up_to_cap(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, multiplier=2.0, jitter=0.0)
        assert [policy.delay(k) for k in range(6)] == [
            0.1, 0.2, 0.4, 0.8, 1.0, 1.0,
        ]

    def test_jitter_only_shrinks_never_exceeds_cap(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, jitter=0.5, seed=3)
        for k in range(50):
            delay = policy.delay(k)
            raw = min(1.0, 0.1 * 2.0**k)
            assert raw * 0.5 <= delay <= raw

    def test_retry_after_wins_when_larger(self):
        policy = BackoffPolicy(base=0.01, cap=1.0, jitter=0.0)
        assert policy.delay(0, retry_after=0.5) == 0.5

    def test_retry_after_is_capped(self):
        policy = BackoffPolicy(base=0.01, cap=1.0, jitter=0.0)
        assert policy.delay(0, retry_after=30.0) == 1.0

    def test_retry_after_smaller_than_schedule_ignored(self):
        policy = BackoffPolicy(base=0.5, cap=1.0, jitter=0.0)
        assert policy.delay(0, retry_after=0.1) == 0.5

    def test_preview_does_not_consume_the_stream(self):
        policy = BackoffPolicy(seed=9)
        previewed = policy.preview(4)
        assert [policy.delay(k) for k in range(4)] == previewed

    def test_clone_reseeds_independently(self):
        base = BackoffPolicy(seed=0, base=0.07, max_retries=9)
        clone = base.clone(seed=42)
        assert clone.base == 0.07
        assert clone.max_retries == 9
        assert clone.seed == 42
        assert clone.preview(5) != base.preview(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=-1)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, reset_after=10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_after=reset_after, clock=clock
        )
        return breaker, clock

    def test_closed_until_threshold(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_open_rejects_with_remaining_cooldown(self):
        breaker, clock = self.make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.acquire()
        assert info.value.retry_after == pytest.approx(6.0)

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.acquire()  # the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # second caller is still rejected

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.acquire()  # flows freely again

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        with pytest.raises(CircuitOpenError):
            breaker.acquire()
        clock.advance(0.1)
        breaker.acquire()  # half-open again after the full cool-down

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
