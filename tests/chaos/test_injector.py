"""Injector tests: install/uninstall, env export, probes, telemetry."""

import os

import pytest

from repro.chaos.injector import (
    CHAOS_PLAN_ENV,
    active_plan,
    chaos,
    ensure_worker_plan,
    install_plan,
    maybe_fault,
    uninstall_plan,
)
from repro.chaos.plan import FaultPlan, FaultRule
from repro.obs.metrics import MetricsRegistry, collecting


@pytest.fixture(autouse=True)
def clean_chaos_state():
    uninstall_plan()
    yield
    uninstall_plan()


def always(site):
    return FaultPlan(0, [FaultRule(site, rate=1.0)])


def test_disabled_by_default():
    assert active_plan() is None
    assert maybe_fault("service.dispatch.error") is None


def test_install_and_uninstall():
    plan = always("service.dispatch.error")
    install_plan(plan)
    assert active_plan() is plan
    assert FaultPlan.from_json(os.environ[CHAOS_PLAN_ENV]).plan_hash == plan.plan_hash
    uninstall_plan()
    assert active_plan() is None
    assert CHAOS_PLAN_ENV not in os.environ


def test_context_manager_restores_previous_plan_and_env():
    outer = always("service.dispatch.error")
    inner = always("cache.bitflip")
    install_plan(outer)
    outer_env = os.environ[CHAOS_PLAN_ENV]
    with chaos(inner):
        assert active_plan() is inner
        assert os.environ[CHAOS_PLAN_ENV] != outer_env
    assert active_plan() is outer
    assert os.environ[CHAOS_PLAN_ENV] == outer_env


def test_maybe_fault_returns_decisions_and_counts_metrics():
    with chaos(always("service.dispatch.error")):
        with collecting() as registry:
            decision = maybe_fault("service.dispatch.error")
            assert decision is not None
            assert decision.site == "service.dispatch.error"
            assert decision.index == 0
            assert maybe_fault("cache.bitflip") is None  # no rule
            assert (
                registry.value(
                    "chaos_faults_injected_total",
                    site="service.dispatch.error",
                )
                == 1
            )


def test_maybe_fault_pinned_registry_wins():
    pinned = MetricsRegistry()
    with chaos(always("cache.bitflip")):
        assert maybe_fault("cache.bitflip", pinned) is not None
    assert pinned.value("chaos_faults_injected_total", site="cache.bitflip") == 1


def test_ensure_worker_plan_scopes_from_env():
    plan = FaultPlan(5, [FaultRule("pool.worker.crash", rate=0.5)])
    install_plan(plan)
    worker_plan = ensure_worker_plan("worker:2")
    assert worker_plan is not None
    assert worker_plan.scope == "worker:2"
    assert worker_plan.plan_hash == plan.plan_hash
    assert active_plan() is worker_plan
    # Same salt → same stream; different salt → decorrelated stream.
    again = FaultPlan.from_json(plan.to_json()).scoped("worker:2")
    assert worker_plan.sequence("pool.worker.crash", 50) == again.sequence(
        "pool.worker.crash", 50
    )


def test_ensure_worker_plan_without_env_is_noop():
    assert ensure_worker_plan("worker:0") is None


def test_ensure_worker_plan_tolerates_malformed_env():
    os.environ[CHAOS_PLAN_ENV] = "{not json"
    try:
        assert ensure_worker_plan("worker:0") is None
    finally:
        os.environ.pop(CHAOS_PLAN_ENV, None)
