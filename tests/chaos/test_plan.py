"""FaultPlan unit tests: determinism, identity, scoping, caps."""

import pytest

from repro.chaos.plan import FAULT_SITES, FaultPlan, FaultRule
from repro.errors import ChaosError, ReproError


def make_plan(seed=7, **rule_kwargs):
    return FaultPlan(
        seed, [FaultRule("service.dispatch.error", **rule_kwargs)]
    )


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        a = make_plan(rate=0.3).sequence("service.dispatch.error", 200)
        b = make_plan(rate=0.3).sequence("service.dispatch.error", 200)
        assert a == b
        assert any(a) and not all(a)  # a real mix of fire and skip

    def test_different_seeds_differ(self):
        a = make_plan(seed=1, rate=0.3).sequence("service.dispatch.error", 200)
        b = make_plan(seed=2, rate=0.3).sequence("service.dispatch.error", 200)
        assert a != b

    def test_decide_matches_sequence_preview(self):
        plan = make_plan(rate=0.4)
        preview = plan.sequence("service.dispatch.error", 100)
        fired = [
            plan.decide("service.dispatch.error") is not None
            for _ in range(100)
        ]
        assert fired == preview

    def test_decide_is_order_free_across_sites(self):
        """Per-site streams are independent: interleaving probes of two
        sites does not change either site's decisions."""
        rules = [
            FaultRule("service.dispatch.error", rate=0.5),
            FaultRule("cache.bitflip", rate=0.5),
        ]
        solo = FaultPlan(3, rules)
        expected_a = solo.sequence("service.dispatch.error", 50)
        expected_b = solo.sequence("cache.bitflip", 50)
        plan = FaultPlan(3, rules)
        got_a, got_b = [], []
        for _ in range(50):
            got_b.append(plan.decide("cache.bitflip") is not None)
            got_a.append(plan.decide("service.dispatch.error") is not None)
        assert got_a == expected_a
        assert got_b == expected_b


class TestRuleKnobs:
    def test_rate_zero_never_fires(self):
        plan = make_plan(rate=0.0)
        assert not any(plan.sequence("service.dispatch.error", 500))

    def test_rate_one_always_fires(self):
        plan = make_plan(rate=1.0)
        assert all(plan.sequence("service.dispatch.error", 50))

    def test_after_skips_warmup_probes(self):
        plan = make_plan(rate=1.0, after=10)
        seq = plan.sequence("service.dispatch.error", 15)
        assert seq == [False] * 10 + [True] * 5
        for _ in range(10):
            assert plan.decide("service.dispatch.error") is None
        decision = plan.decide("service.dispatch.error")
        assert decision is not None
        assert decision.index == 10

    def test_max_faults_caps_total_fires(self):
        plan = make_plan(rate=1.0, max_faults=3)
        fired = [
            plan.decide("service.dispatch.error") is not None
            for _ in range(10)
        ]
        assert sum(fired) == 3
        assert fired[:3] == [True, True, True]
        assert plan.fired_counts() == {"service.dispatch.error": 3}

    def test_param_rides_on_the_decision(self):
        plan = FaultPlan(
            0, [FaultRule("pool.worker.hang", rate=1.0, param=1.25)]
        )
        decision = plan.decide("pool.worker.hang")
        assert decision is not None
        assert decision.param == 1.25

    def test_unruled_site_never_fires(self):
        plan = make_plan(rate=1.0)
        assert plan.decide("cache.bitflip") is None


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault site"):
            FaultRule("service.dispatch.typo")

    def test_bad_rate_rejected(self):
        with pytest.raises(ChaosError, match="rate"):
            FaultRule("cache.bitflip", rate=1.5)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ChaosError, match="duplicate"):
            FaultPlan(
                0,
                [FaultRule("cache.bitflip"), FaultRule("cache.bitflip")],
            )

    def test_malformed_json_wrapped(self):
        with pytest.raises(ChaosError, match="malformed fault plan"):
            FaultPlan.from_json("{not json")

    def test_missing_file_wrapped(self, tmp_path):
        with pytest.raises(ChaosError, match="cannot read fault plan"):
            FaultPlan.from_file(tmp_path / "nope.json")

    def test_plan_errors_are_repro_errors(self):
        # the CLI maps ReproError to `repro-color: error: ...` + exit 2
        with pytest.raises(ReproError):
            FaultRule("service.dispatch.typo")

    def test_every_documented_site_is_constructible(self):
        for site in FAULT_SITES:
            FaultRule(site)


class TestIdentityAndSerialization:
    def test_round_trip_preserves_decisions(self):
        plan = FaultPlan(
            11,
            [
                FaultRule("service.dispatch.error", rate=0.25, max_faults=4),
                FaultRule("pool.worker.crash", rate=0.1, after=2, param=3.0),
            ],
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.plan_hash == plan.plan_hash
        for site in plan.rules:
            assert clone.sequence(site, 100) == plan.sequence(site, 100)

    def test_plan_hash_ignores_scope(self):
        plan = make_plan(rate=0.5)
        assert plan.scoped("worker:3").plan_hash == plan.plan_hash

    def test_plan_hash_sensitive_to_rules_and_seed(self):
        base = make_plan(rate=0.5)
        assert make_plan(rate=0.6).plan_hash != base.plan_hash
        assert make_plan(seed=8, rate=0.5).plan_hash != base.plan_hash

    def test_from_file(self, tmp_path):
        plan = make_plan(rate=0.5)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(path).plan_hash == plan.plan_hash


class TestScoping:
    def test_scoped_streams_are_deterministic(self):
        a = make_plan(rate=0.3).scoped("worker:1")
        b = make_plan(rate=0.3).scoped("worker:1")
        assert a.sequence("service.dispatch.error", 100) == b.sequence(
            "service.dispatch.error", 100
        )

    def test_scopes_decorrelate_workers(self):
        plan = make_plan(rate=0.3)
        streams = {
            salt: plan.scoped(salt).sequence("service.dispatch.error", 200)
            for salt in ("worker:0", "worker:1", "worker:2")
        }
        assert len({tuple(s) for s in streams.values()}) == 3

    def test_scoping_nests(self):
        plan = make_plan(rate=0.3).scoped("a").scoped("b")
        assert plan.scope == "a/b"
