"""Unit tests for the scheduler zoo."""

import itertools

import pytest

from repro.errors import ScheduleError
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BlockRoundRobinScheduler,
    BurstScheduler,
    ConcatScheduler,
    GeometricRateScheduler,
    InterleaveScheduler,
    LateWakeupScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    SoloScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)


def take(schedule, n, k):
    return list(itertools.islice(schedule.steps(n), k))


class TestSynchronous:
    def test_everyone_every_step(self):
        steps = take(SynchronousScheduler(), 4, 5)
        assert all(s == frozenset(range(4)) for s in steps)

    def test_horizon(self):
        assert len(list(SynchronousScheduler(horizon=7).steps(2))) == 7


class TestRoundRobin:
    def test_rotation(self):
        steps = take(RoundRobinScheduler(), 3, 6)
        assert steps == [frozenset({i % 3}) for i in range(6)]

    def test_offset(self):
        steps = take(RoundRobinScheduler(offset=2), 3, 2)
        assert steps == [frozenset({2}), frozenset({0})]


class TestBlockRoundRobin:
    def test_blocks(self):
        steps = take(BlockRoundRobinScheduler(2), 4, 2)
        assert steps == [frozenset({0, 1}), frozenset({2, 3})]

    def test_wraps(self):
        steps = take(BlockRoundRobinScheduler(3), 4, 2)
        assert steps[1] == frozenset({3, 0, 1})

    def test_block_larger_than_n(self):
        steps = take(BlockRoundRobinScheduler(10), 3, 1)
        assert steps[0] == frozenset({0, 1, 2})

    def test_invalid(self):
        with pytest.raises(ScheduleError):
            BlockRoundRobinScheduler(0)


class TestBernoulli:
    def test_deterministic_given_seed(self):
        a = take(BernoulliScheduler(p=0.5, seed=3), 6, 20)
        b = take(BernoulliScheduler(p=0.5, seed=3), 6, 20)
        assert a == b

    def test_never_empty(self):
        steps = take(BernoulliScheduler(p=0.05, seed=1), 4, 50)
        assert all(s for s in steps)

    def test_p_one_is_synchronous(self):
        steps = take(BernoulliScheduler(p=1.0, seed=0), 3, 4)
        assert all(s == frozenset({0, 1, 2}) for s in steps)

    def test_invalid_p(self):
        with pytest.raises(ScheduleError):
            BernoulliScheduler(p=0)
        with pytest.raises(ScheduleError):
            BernoulliScheduler(p=1.5)


class TestUniformSubset:
    def test_nonempty_and_valid(self):
        for s in take(UniformSubsetScheduler(seed=4), 5, 50):
            assert s and s <= frozenset(range(5))

    def test_covers_sizes(self):
        sizes = {len(s) for s in take(UniformSubsetScheduler(seed=0), 5, 200)}
        assert sizes == {1, 2, 3, 4, 5}


class TestGeometricRate:
    def test_explicit_rates_validated(self):
        with pytest.raises(ScheduleError):
            GeometricRateScheduler(rates=[0.5, 1.5])

    def test_rate_count_checked_lazily(self):
        sched = GeometricRateScheduler(rates=[0.5])
        with pytest.raises(ScheduleError):
            take(sched, 3, 1)

    def test_slow_processes_rarely_activated(self):
        sched = GeometricRateScheduler(
            rates=[0.01, 0.99], seed=5,
        )
        steps = take(sched, 2, 300)
        slow = sum(1 for s in steps if 0 in s)
        fast = sum(1 for s in steps if 1 in s)
        assert slow < fast / 5


class TestSolo:
    def test_solo_prefix(self):
        steps = take(SoloScheduler(1, solo_steps=3), 3, 5)
        assert steps[:3] == [frozenset({1})] * 3
        assert steps[3] == frozenset({0, 1, 2})

    def test_pid_validated(self):
        with pytest.raises(ScheduleError):
            take(SoloScheduler(9, solo_steps=1), 3, 1)


class TestLateWakeup:
    def test_sleepers_absent_before_wake(self):
        sched = LateWakeupScheduler(sleepers=[0, 2], wake_time=4)
        steps = take(sched, 4, 6)
        assert steps[0] == frozenset({1, 3})
        assert steps[2] == frozenset({1, 3})
        assert steps[3] == frozenset({0, 1, 2, 3})


class TestSlowChain:
    def test_slow_only_on_multiples(self):
        sched = SlowChainScheduler(slow=[0], slowdown=3)
        steps = take(sched, 2, 6)
        assert [0 in s for s in steps] == [False, False, True, False, False, True]


class TestStaggered:
    def test_wakeup_times(self):
        steps = take(StaggeredScheduler(stagger=2), 3, 5)
        assert steps[0] == frozenset({0})
        assert steps[2] == frozenset({0, 1})
        assert steps[4] == frozenset({0, 1, 2})


class TestAlternating:
    def test_bipartition(self):
        steps = take(AlternatingScheduler(), 4, 4)
        assert steps[0] == frozenset({0, 2})
        assert steps[1] == frozenset({1, 3})
        assert steps[2] == frozenset({0, 2})


class TestComposite:
    def test_concat_phases(self):
        sched = ConcatScheduler([
            (RoundRobinScheduler(), 2),
            (SynchronousScheduler(), 2),
        ])
        steps = list(sched.steps(3))
        assert steps == [
            frozenset({0}), frozenset({1}),
            frozenset({0, 1, 2}), frozenset({0, 1, 2}),
        ]

    def test_concat_rejects_unbounded_middle(self):
        with pytest.raises(ScheduleError):
            ConcatScheduler([
                (SynchronousScheduler(), None),
                (RoundRobinScheduler(), 2),
            ])

    def test_burst(self):
        steps = take(BurstScheduler(burst=2), 2, 6)
        assert steps == [
            frozenset({0}), frozenset({0}),
            frozenset({1}), frozenset({1}),
            frozenset({0}), frozenset({0}),
        ]

    def test_burst_horizon(self):
        assert len(list(BurstScheduler(burst=3, horizon=7).steps(5))) == 7

    def test_interleave(self):
        sched = InterleaveScheduler(
            RoundRobinScheduler(horizon=2), SynchronousScheduler(horizon=2),
        )
        steps = list(sched.steps(2))
        assert steps == [
            frozenset({0}), frozenset({0, 1}),
            frozenset({1}), frozenset({0, 1}),
        ]


class TestStepsFast:
    """``steps_fast`` must replay ``steps`` exactly: same step sets in
    the same order, consuming the same RNG stream — it is the fast
    engine's view of the schedule, so any divergence here is an
    engine-equivalence bug waiting to happen."""

    CASES = [
        lambda: SynchronousScheduler(horizon=40),
        lambda: RoundRobinScheduler(offset=2, horizon=40),
        lambda: BlockRoundRobinScheduler(k=3, offset=1, horizon=40),
        lambda: BernoulliScheduler(p=0.3, seed=7, horizon=40),
        lambda: BernoulliScheduler(p=0.01, seed=5, horizon=25),  # redraw-heavy
        lambda: UniformSubsetScheduler(seed=9, horizon=40),
        lambda: GeometricRateScheduler(seed=2, horizon=40),
        lambda: SoloScheduler(pid=3, solo_steps=10, horizon=40),
        lambda: LateWakeupScheduler(sleepers=[0, 2], wake_time=12, horizon=40),
        lambda: SlowChainScheduler(slow=[1], slowdown=4, horizon=40),
        lambda: StaggeredScheduler(stagger=2, horizon=40),
        lambda: StaggeredScheduler(stagger=0, horizon=20),
        lambda: AlternatingScheduler(horizon=40),
        lambda: BurstScheduler(burst=3, horizon=40),
        lambda: ConcatScheduler(
            [(RoundRobinScheduler(), 5), (SynchronousScheduler(), 5)]
        ),
        lambda: InterleaveScheduler(
            BernoulliScheduler(p=0.4, seed=1, horizon=10),
            SynchronousScheduler(horizon=10),
        ),
    ]

    @pytest.mark.parametrize("factory", CASES)
    @pytest.mark.parametrize("n", [1, 5, 8])
    def test_matches_steps(self, factory, n):
        def collect(iterator):
            # Some (scheduler, n) pairs are invalid (e.g. a solo pid
            # outside 0..n-1); then both paths must raise the same way.
            try:
                return [frozenset(s) for s in itertools.islice(iterator, 60)]
            except ScheduleError:
                return ScheduleError

        slow = collect(factory().steps(n))
        fast = collect(factory().steps_fast(n))
        assert fast == slow

    @pytest.mark.parametrize("factory", CASES)
    def test_steps_are_duplicate_free(self, factory):
        """The fast engine trusts steps_fast items to be duplicate-free
        (it counts one activation per listed process)."""
        for step in itertools.islice(factory().steps_fast(6), 60):
            listed = list(step)
            assert len(listed) == len(set(listed))

    def test_default_adapter_delegates_to_steps(self):
        """A scheduler that only implements ``steps`` still works."""
        from repro.model.schedule import FiniteSchedule

        sched = FiniteSchedule([{0, 1}, {2}])
        assert [frozenset(s) for s in sched.steps_fast(3)] == [
            frozenset({0, 1}), frozenset({2}),
        ]

    def test_bernoulli_redraw_keeps_rng_streams_synchronized(self):
        """Regression: empty-step redraws must consume the seeded RNG
        stream identically in ``steps`` and ``steps_fast``.

        With p small, most raw draws are empty and get re-drawn; if the
        two paths consumed different numbers of RNG values per redraw
        they would desynchronize after the first empty draw and emit
        different step streams for the same seed.
        """
        n, p, seed = 9, 0.02, 11  # ≈ (1-p)^n = 83% of raw draws empty
        slow = [frozenset(s) for s in itertools.islice(
            BernoulliScheduler(p=p, seed=seed).steps(n), 120)]
        fast = [frozenset(s) for s in itertools.islice(
            BernoulliScheduler(p=p, seed=seed).steps_fast(n), 120)]
        assert slow == fast
        # Sanity: the scenario actually triggered redraws (many steps,
        # all non-empty, at a rate only possible via redrawing).
        assert all(slow) and len(slow) == 120
