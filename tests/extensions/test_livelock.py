"""Tests pinning the E13/E13b reproduction finding."""

import pytest

from repro.analysis.verify import verify_execution
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.livelock import (
    CRASH_WITNESS_CRASHED,
    CRASH_WITNESS_N,
    LIVELOCK_IDS,
    demonstrate_crash_livelock,
    demonstrate_livelock,
    find_livelock,
    livelock_prefix,
    livelock_schedule,
)
from repro.model.topology import Cycle


class TestCanonicalWitness:
    @pytest.mark.parametrize("loops", [10, 100, 1000])
    def test_alg2_never_returns_under_loop(self, loops):
        """Processes 1, 2 take unboundedly many steps without output."""
        result = demonstrate_livelock(loop_iterations=loops)
        assert result.outputs.keys() == {0}
        assert result.activations[1] >= loops
        assert result.activations[2] >= loops

    def test_alg3_inherits(self):
        result = demonstrate_livelock(FastFiveColoring(), loop_iterations=50)
        assert result.outputs.keys() == {0}

    def test_safety_never_violated_during_livelock(self):
        result = demonstrate_livelock(loop_iterations=50)
        assert verify_execution(Cycle(3), result, palette=range(5)).ok

    def test_algorithm1_immune_to_same_schedule(self):
        from repro.model.execution import run_execution

        result = run_execution(
            SixColoring(), Cycle(3), list(LIVELOCK_IDS), livelock_schedule(100),
        )
        assert result.all_terminated

    def test_prefix_shape(self):
        prefix = livelock_prefix()
        assert prefix[0] == frozenset({0})
        assert prefix[-1] == frozenset({1, 2})


class TestSearchFromScratch:
    def test_alg2_found_automatically(self):
        outcome = find_livelock(FiveColoring(), n=3)
        assert outcome.found

    @pytest.mark.parametrize("ids", [(1, 2, 3), (2, 1, 3), (3, 1, 2)])
    def test_found_for_multiple_id_orders(self, ids):
        outcome = find_livelock(FiveColoring(), n=3, identifiers=ids)
        assert outcome.found

    def test_alg1_clean(self):
        outcome = find_livelock(SixColoring(), n=3)
        assert not outcome.found
        assert outcome.exhausted


class TestCrashTriggeredVariant:
    def test_e13b_survivor_pair_starves(self):
        """Default (Algorithm 3): survivors {1, 2} never return."""
        result = demonstrate_crash_livelock(steps=1500)
        survivors = set(range(CRASH_WITNESS_N)) - set(CRASH_WITNESS_CRASHED)
        stuck = survivors - result.terminated
        assert {1, 2} <= stuck
        assert result.time_exhausted

    def test_e13b_alg2_unaffected_on_this_witness(self):
        """Algorithm 2's raw identifiers avoid the chase seed here; its
        own starvation witness is the schedule-based E13."""
        result = demonstrate_crash_livelock(FiveColoring(), steps=1500)
        survivors = set(range(CRASH_WITNESS_N)) - set(CRASH_WITNESS_CRASHED)
        assert survivors <= result.terminated

    def test_e13b_safety_intact(self):
        result = demonstrate_crash_livelock(steps=800)
        assert verify_execution(
            Cycle(CRASH_WITNESS_N), result, palette=range(5),
        ).ok
