"""Tests for the falsified 5-color repair attempt."""

from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import verify_execution
from repro.extensions.adaptive_five import AdaptiveFiveColoring
from repro.extensions.livelock import find_livelock
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


class TestNegativeResult:
    def test_still_not_wait_free(self):
        """The documented refutation: the explorer finds a livelock."""
        outcome = find_livelock(AdaptiveFiveColoring(), n=3)
        assert outcome.found

    def test_safety_unchanged(self):
        """Return rule is Algorithm 2's, so safety holds on executions
        that do terminate."""
        for seed in range(5):
            n = 12
            result = run_execution(
                AdaptiveFiveColoring(), Cycle(n),
                random_distinct_ids(n, seed=seed),
                BernoulliScheduler(p=0.5, seed=seed), max_time=50_000,
            )
            verdict = verify_execution(Cycle(n), result, palette=range(5))
            assert verdict.ok

    def test_terminates_on_friendly_schedules(self):
        result = run_execution(
            AdaptiveFiveColoring(), Cycle(10), random_distinct_ids(10, seed=1),
            SynchronousScheduler(), max_time=50_000,
        )
        assert result.all_terminated
