"""Tests for FastSixColoring — the repaired algorithm (E14)."""

import itertools

import pytest

from repro.analysis.complexity import logstar_budget
from repro.analysis.inputs import huge_ids, monotone_ids, random_distinct_ids
from repro.analysis.verify import identifiers_always_proper, verify_execution
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.extensions.livelock import livelock_schedule
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler
from tests.conftest import INPUT_FAMILIES, SCHEDULER_FACTORIES


class TestGuarantees:
    @pytest.mark.parametrize("inputs_name", sorted(INPUT_FAMILIES))
    @pytest.mark.parametrize("n", [3, 4, 7, 16, 33])
    def test_across_schedulers(self, n, inputs_name):
        inputs = INPUT_FAMILIES[inputs_name](n)
        for sched_name, factory in SCHEDULER_FACTORIES.items():
            result = run_execution(
                FastSixColoring(), Cycle(n), inputs, factory(), max_time=100_000,
            )
            assert result.all_terminated, (sched_name, inputs_name, n)
            verdict = verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE)
            assert verdict.ok, (sched_name, inputs_name, n, verdict)

    def test_survives_the_livelock_schedule(self):
        """The E13 witness schedule is harmless to the repair."""
        result = run_execution(
            FastSixColoring(), Cycle(3), [1, 2, 3], livelock_schedule(200),
        )
        assert result.all_terminated

    def test_survives_crash_witness(self):
        from repro.extensions.livelock import demonstrate_crash_livelock

        result = demonstrate_crash_livelock(FastSixColoring(), steps=5_000)
        assert not (set(result.pending) - {0, 3, 6, 9, 12, 15, 18})


class TestExhaustiveWaitFreedom:
    @pytest.mark.parametrize("n", [3, 4])
    def test_configuration_graph_acyclic_all_orders(self, n):
        for perm in itertools.permutations(range(1, n + 1)):
            explorer = BoundedExplorer(FastSixColoring(), Cycle(n), list(perm))
            outcome = explorer.find_livelock(max_depth=200, max_configs=400_000)
            assert not outcome.found, perm
            assert outcome.exhausted, perm

    def test_exact_worst_case_c3(self):
        explorer = BoundedExplorer(FastSixColoring(), Cycle(3), [1, 2, 3])
        worst = {p: explorer.max_activations(p) for p in range(3)}
        assert all(v != float("inf") for v in worst.values())
        assert max(worst.values()) <= 12


class TestScaling:
    @pytest.mark.parametrize("n", [16, 256, 4096])
    def test_logstar_budget_on_monotone(self, n):
        result = run_execution(
            FastSixColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.round_complexity <= logstar_budget(n)

    def test_huge_ids(self):
        n = 48
        result = run_execution(
            FastSixColoring(), Cycle(n), huge_ids(n, bits=512, seed=3),
            SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.round_complexity <= logstar_budget(2 ** 512)


class TestInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_lemma_4_5_invariant(self, seed):
        from repro.schedulers import BernoulliScheduler

        n = 16
        result = run_execution(
            FastSixColoring(), Cycle(n), monotone_ids(n),
            BernoulliScheduler(p=0.45, seed=seed), record_registers=True,
        )
        assert identifiers_always_proper(Cycle(n), result.trace)

    def test_outputs_are_pairs_in_palette(self):
        result = run_execution(
            FastSixColoring(), Cycle(9), random_distinct_ids(9, seed=2),
            SynchronousScheduler(),
        )
        for color in result.outputs.values():
            assert color in FAST_SIX_PALETTE
