"""Property-based tests: random schedules and inputs, paper invariants.

Hypothesis drives (identifier assignment, schedule) pairs; the paper's
safety guarantees must hold on every generated execution, and the
exhaustively-verified wait-free algorithms must terminate.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import (
    identifiers_always_proper,
    inputs_properly_color,
    verify_execution,
)
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle

# ---------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------


@st.composite
def cycle_instances(draw, min_n=3, max_n=9):
    """(n, distinct identifiers) for a ring."""
    n = draw(st.integers(min_n, max_n))
    ids = draw(
        st.lists(
            st.integers(0, 10 ** 6), min_size=n, max_size=n, unique=True,
        )
    )
    return n, ids


@st.composite
def schedules(draw, n, min_steps=30, max_steps=120):
    """A finite schedule of random non-empty activation sets, ending
    with enough synchronous steps to let wait-free algorithms finish."""
    steps = draw(
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
            min_size=min_steps,
            max_size=max_steps,
        )
    )
    # Synchronous tail guarantees everyone is eventually activated often.
    tail = [set(range(n))] * (6 * n + 40)
    return FiniteSchedule([frozenset(s) for s in steps] + tail)


common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------
# Safety properties (all four algorithms)
# ---------------------------------------------------------------------


@given(data=st.data())
@common
def test_alg1_safety_and_termination(data):
    n, ids = data.draw(cycle_instances())
    schedule = data.draw(schedules(n))
    result = run_execution(SixColoring(), Cycle(n), ids, schedule)
    verdict = verify_execution(Cycle(n), result, palette=SIX_PALETTE)
    assert verdict.ok
    assert result.all_terminated  # exhaustively wait-free + fair tail


@given(data=st.data())
@common
def test_alg2_safety(data):
    n, ids = data.draw(cycle_instances())
    schedule = data.draw(schedules(n))
    result = run_execution(FiveColoring(), Cycle(n), ids, schedule)
    assert verify_execution(Cycle(n), result, palette=range(5)).ok


@given(data=st.data())
@common
def test_fast5_safety_and_id_invariant(data):
    n, ids = data.draw(cycle_instances())
    schedule = data.draw(schedules(n))
    result = run_execution(
        FastFiveColoring(), Cycle(n), ids, schedule, record_registers=True,
    )
    assert verify_execution(Cycle(n), result, palette=range(5)).ok
    assert identifiers_always_proper(Cycle(n), result.trace)


@given(data=st.data())
@common
def test_fast6_safety_and_termination(data):
    n, ids = data.draw(cycle_instances())
    schedule = data.draw(schedules(n))
    result = run_execution(FastSixColoring(), Cycle(n), ids, schedule)
    verdict = verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE)
    assert verdict.ok
    assert result.all_terminated


# ---------------------------------------------------------------------
# Precondition relaxation (Remark 3.10): proper-coloring-only inputs
# ---------------------------------------------------------------------


@st.composite
def proper_nonunique_inputs(draw, min_n=3, max_n=9):
    n = draw(st.integers(min_n, max_n))
    ids = [0] * n
    for i in range(1, n):
        ids[i] = draw(
            st.integers(0, 6).filter(lambda v, prev=ids[i - 1]: v != prev)
        )
    # close the ring: last must differ from first
    if ids[-1] == ids[0]:
        ids[-1] = draw(
            st.integers(0, 8).filter(
                lambda v: v != ids[0] and v != ids[-2]
            )
        )
    return n, ids


@given(data=st.data())
@common
def test_alg1_with_proper_coloring_inputs(data):
    n, ids = data.draw(proper_nonunique_inputs())
    assert inputs_properly_color(Cycle(n), ids)
    schedule = data.draw(schedules(n))
    result = run_execution(SixColoring(), Cycle(n), ids, schedule)
    assert verify_execution(Cycle(n), result, palette=SIX_PALETTE).ok
    assert result.all_terminated


# ---------------------------------------------------------------------
# Crash tolerance property
# ---------------------------------------------------------------------


@given(data=st.data())
@common
def test_fast6_survivors_terminate_under_random_crashes(data):
    n, ids = data.draw(cycle_instances(min_n=4, max_n=9))
    crashed = data.draw(
        st.sets(st.integers(0, n - 1), min_size=0, max_size=n - 2)
    )
    crash_times = {
        p: data.draw(st.integers(1, 20), label=f"crash-{p}") for p in crashed
    }
    from repro.model.faults import CrashPlan
    from repro.schedulers import SynchronousScheduler

    plan = CrashPlan(SynchronousScheduler(), crash_times=crash_times)
    result = run_execution(
        FastSixColoring(), Cycle(n), ids, plan, max_time=20_000,
    )
    assert verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE).ok
    assert (set(range(n)) - crashed) <= result.terminated
