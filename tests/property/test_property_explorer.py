"""Property: the explorer's transition relation equals the engine.

The validity of every exhaustive result (E13, exact worst cases,
falsifications) rests on :meth:`BoundedExplorer.apply` being exactly
the engine's step semantics; hypothesis drives random schedules through
both and demands identical outcomes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle

ALGORITHMS = [SixColoring, FiveColoring, FastFiveColoring]

common = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instance_and_schedule(draw):
    n = draw(st.integers(3, 6))
    ids = draw(
        st.lists(st.integers(0, 50), min_size=n, max_size=n, unique=True)
    )
    steps = draw(
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
            min_size=1, max_size=25,
        )
    )
    algorithm_factory = draw(st.sampled_from(ALGORITHMS))
    return n, ids, [frozenset(s) for s in steps], algorithm_factory


@given(data=instance_and_schedule())
@common
def test_explorer_apply_equals_engine(data):
    n, ids, steps, algorithm_factory = data

    # Engine execution.
    engine_result = run_execution(
        algorithm_factory(), Cycle(n), ids, FiniteSchedule(steps),
    )

    # Explorer replay of the same steps (restricted to working sets,
    # as the engine does).
    explorer = BoundedExplorer(algorithm_factory(), Cycle(n), ids)
    config = explorer.initial_config()
    for step in steps:
        working = frozenset(p for p in step if config.outputs[p] is None)
        if working:
            config = explorer.apply(config, working)
        if config.all_returned:
            break

    assert config.output_dict() == engine_result.outputs
    # Register contents agree wherever the engine wrote.
    final = {
        p: config.registers[p] for p in range(n)
    }
    # Re-derive engine registers by replaying once more with recording.
    recorded = run_execution(
        algorithm_factory(), Cycle(n), ids, FiniteSchedule(steps),
        record_registers=True,
    )
    engine_regs = recorded.trace.final_registers()
    if engine_regs is not None:
        for p in range(n):
            assert final[p] == engine_regs[p]
