"""Adversarial property tests for the DECOUPLED announcement protocol.

The announcement 3-coloring is this reproduction's own construction
(the paper only cites [13]), so it gets the heaviest fuzzing: random
graphs, random schedules, random crash patterns — survivors must always
decide, within the Δ+1 palette, properly.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import coloring_violations
from repro.decoupled import AnnouncementColoring, run_decoupled
from repro.model.faults import CrashPlan
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, GeneralGraph
from repro.types import ProcessId

common = settings(
    max_examples=80, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fair_tail_schedule(steps, n, tail=60):
    return FiniteSchedule(
        [frozenset(s) for s in steps] + [frozenset(range(n))] * tail
    )


@given(data=st.data())
@common
def test_rings_with_crashes(data):
    n = data.draw(st.integers(3, 9))
    ids = data.draw(
        st.lists(st.integers(0, 300), min_size=n, max_size=n, unique=True)
    )
    crashed = data.draw(st.sets(st.integers(0, n - 1), max_size=n - 1))
    crash_times = {
        p: data.draw(st.integers(1, 15), label=f"t{p}") for p in crashed
    }
    steps = data.draw(
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
            min_size=0, max_size=30,
        )
    )
    schedule = CrashPlan(
        fair_tail_schedule(steps, n, tail=6 * n + 30), crash_times=crash_times,
    )
    result = run_decoupled(AnnouncementColoring(), Cycle(n), ids, schedule)

    survivors = set(range(n)) - crashed
    assert survivors <= set(result.outputs), (crashed, result.pending)
    assert not coloring_violations(Cycle(n), result.outputs)
    assert set(result.outputs.values()) <= {0, 1, 2}


@given(data=st.data())
@common
def test_random_graphs_with_crashes(data):
    n = data.draw(st.integers(3, 8))
    edge_pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = data.draw(
        st.lists(st.sampled_from(edge_pool), min_size=1,
                 max_size=len(edge_pool), unique=True)
    )
    topo = GeneralGraph(n, edges)
    ids = data.draw(
        st.lists(st.integers(0, 300), min_size=n, max_size=n, unique=True)
    )
    crashed = data.draw(st.sets(st.integers(0, n - 1), max_size=n - 1))
    schedule = CrashPlan(
        fair_tail_schedule([], n, tail=6 * n + 30),
        crash_times={p: data.draw(st.integers(1, 10), label=f"t{p}") for p in crashed},
    )
    result = run_decoupled(AnnouncementColoring(), topo, ids, schedule)

    survivors = set(range(n)) - crashed
    assert survivors <= set(result.outputs)
    assert not coloring_violations(topo, result.outputs)
    assert all(c <= topo.max_degree() for c in result.outputs.values())


def test_dense_seeded_fuzz():
    """A deterministic heavy fuzz loop (non-hypothesis, more trials)."""
    rng = random.Random(42)
    for trial in range(300):
        n = rng.randint(3, 7)
        ids = rng.sample(range(400), n)
        crashed = set(rng.sample(range(n), rng.randint(0, n - 1)))
        steps = [
            frozenset(rng.sample(range(n), rng.randint(1, n)))
            for _ in range(rng.randint(0, 25))
        ]
        schedule = CrashPlan(
            fair_tail_schedule(steps, n, tail=6 * n + 30),
            crash_times={p: rng.randint(1, 12) for p in crashed},
        )
        result = run_decoupled(AnnouncementColoring(), Cycle(n), ids, schedule)
        survivors = set(range(n)) - crashed
        assert survivors <= set(result.outputs), (trial, crashed, result.pending)
        assert not coloring_violations(Cycle(n), result.outputs), trial
        assert set(result.outputs.values()) <= {0, 1, 2}, trial
