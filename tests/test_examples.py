"""Smoke tests: every shipped example runs green end-to-end.

Examples are self-verifying (each asserts its own claims and prints a
final OK), so executing them is a real integration test of the public
API surface they exercise.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_green(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout[-2000:]}\n{completed.stderr[-2000:]}"
    )
    assert "OK" in completed.stdout
