"""Tests for campaign orchestration, journaling and resume equivalence."""

import pytest

from repro.campaign.backends import SequentialBackend
from repro.campaign.journal import CampaignJournal
from repro.campaign.runner import aggregate_records, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError


def spec_200() -> CampaignSpec:
    """A 1×1×2×4×25 = 200-run grid (the acceptance-criterion scale)."""
    return CampaignSpec.build(
        algorithms=["fast5"],
        ns=[8],
        input_families=["random", "zigzag"],
        schedules=["sync", "round-robin", "bernoulli", "staggered"],
        seeds=range(25),
    )


def small_spec() -> CampaignSpec:
    return CampaignSpec.build(
        algorithms=["fast5"], ns=[10], input_families=["random"],
        schedules=["sync", "bernoulli"], seeds=range(3),
    )


class TestRunCampaign:
    def test_full_run_aggregates_everything(self):
        spec = small_spec()
        outcome = run_campaign(spec, backend=SequentialBackend())
        assert outcome.report.runs == spec.size == 6
        assert outcome.report.all_ok
        assert outcome.summary.executed == 6
        assert outcome.summary.skipped == 0
        assert outcome.summary.runs_per_sec > 0
        assert outcome.all_ok

    def test_without_journal_records_kept_in_memory(self):
        outcome = run_campaign(small_spec())
        assert len(outcome.records) == 6

    def test_resume_requires_journal(self):
        with pytest.raises(CampaignError, match="journal_path"):
            run_campaign(small_spec(), resume=True)

    def test_journal_written(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_campaign(small_spec(), journal_path=path)
        journal = CampaignJournal(path)
        assert journal.header()["spec_hash"] == small_spec().spec_hash
        assert len(journal.completed_hashes()) == 6

    def test_shard_latencies_cover_all_shards(self):
        outcome = run_campaign(spec_200(), backend=SequentialBackend())
        latencies = outcome.summary.per_shard_latency
        assert set(latencies) == set(range(spec_200().num_shards))
        assert sum(d.count for d in latencies.values()) == 200


class TestResumeEquivalence:
    """The acceptance criterion: kill at ~50%, resume, identical report."""

    def test_interrupted_plus_resume_equals_uninterrupted(self, tmp_path):
        spec = spec_200()
        baseline = run_campaign(spec, backend=SequentialBackend())
        assert baseline.report.runs == 200

        # First invocation stops (is "killed") after ~50% of the tasks.
        path = tmp_path / "campaign.jsonl"
        half = run_campaign(
            spec, backend=SequentialBackend(),
            journal_path=path, stop_after=100,
        )
        assert half.summary.executed == 100
        assert half.report.runs == 100

        # Resume executes exactly the unfinished half...
        resumed = run_campaign(
            spec, backend=SequentialBackend(),
            journal_path=path, resume=True,
        )
        assert resumed.summary.skipped == 100
        assert resumed.summary.executed == 100

        # ...and the final report is identical to the uninterrupted run.
        assert resumed.report == baseline.report
        assert resumed.summary.ok == 200

    def test_resume_of_finished_campaign_is_noop(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "j.jsonl"
        run_campaign(spec, journal_path=path)
        again = run_campaign(spec, journal_path=path, resume=True)
        assert again.summary.executed == 0
        assert again.summary.skipped == 6
        assert again.report.runs == 6

    def test_checkpointed_loop_completes(self, tmp_path):
        """stop_after in a loop == cooperative checkpointing."""
        spec = small_spec()
        path = tmp_path / "j.jsonl"
        run_campaign(spec, journal_path=path, stop_after=2)
        while True:
            outcome = run_campaign(
                spec, journal_path=path, resume=True, stop_after=2
            )
            if outcome.summary.executed == 0:
                break
        assert outcome.report.runs == 6
        assert outcome.summary.ok == 6


class TestAggregateRecords:
    def test_empty_records_give_no_report(self):
        assert aggregate_records([]) is None
        assert aggregate_records(
            [{"status": "failed", "result": None}]
        ) is None

    def test_order_insensitive(self):
        outcome = run_campaign(small_spec())
        forward = aggregate_records(outcome.records)
        backward = aggregate_records(list(reversed(outcome.records)))
        assert forward == backward
