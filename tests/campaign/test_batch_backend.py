"""Batch backend tests: lockstep task packing inside campaigns.

The batch backend's contract is that packing compatible tasks into one
lockstep :func:`repro.model.batch.run_batch` call is *invisible* in the
journal: every task still gets its own terminal record whose result is
bit-identical to per-run execution (which is what keeps ``--resume``
sound when a journal holds half of a former group), and anything the
packer cannot place falls back to sequential per-task execution.
"""

import pytest

from repro.campaign.backends import BatchBackend, SequentialBackend, make_backend
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import CampaignError
from repro.obs.metrics import NONDETERMINISTIC_METRICS, collecting


class SubclassedFive(FastFiveColoring):
    """Outside exact-type kernel dispatch: no batched kernel covers it."""


def subclassed_five():
    """Dotted-path factory used to force the batch packer to decline."""
    return SubclassedFive()


def spec_with(**overrides):
    defaults = dict(
        algorithms=["fast5", "alg2"],
        ns=[9, 17],
        input_families=["random"],
        schedules=["sync", "bernoulli"],
        seeds=[0, 1, 2],
        engine="batch",
    )
    defaults.update(overrides)
    return CampaignSpec.build(**defaults)


def by_hash(records):
    return {r["hash"]: r for r in records}


def strip_timing(record):
    """Drop fields legitimately differing between backends/runs."""
    clean = dict(record)
    clean.pop("elapsed", None)
    clean.pop("worker", None)
    result = clean.get("result")
    if isinstance(result, dict):
        result = dict(result)
        result.pop("elapsed", None)
        clean["result"] = result
    return clean


class TestMakeBackend:
    def test_batch_backend_constructible(self):
        backend = make_backend("batch")
        assert isinstance(backend, BatchBackend)
        assert backend.name == "batch"

    def test_unknown_backend_lists_batch(self):
        with pytest.raises(CampaignError, match="batch"):
            make_backend("quantum")


class TestBatchRecordsMatchSequential:
    def test_records_bit_identical_up_to_timing(self):
        """24-task grid (2 algorithms × 2 sizes × 2 schedules × 3
        seeds): every record the batch backend journals must equal the
        sequential backend's, ignoring only wall-clock attribution."""
        spec = spec_with()
        batch = run_campaign(spec, backend=BatchBackend())
        sequential = run_campaign(spec, backend=SequentialBackend())

        assert batch.summary.ok == sequential.summary.ok == 24
        assert batch.summary.failed == 0
        assert batch.report == sequential.report

        batch_records = by_hash(batch.records)
        sequential_records = by_hash(sequential.records)
        assert set(batch_records) == set(sequential_records)
        for task_hash, record in batch_records.items():
            assert strip_timing(record) == strip_timing(
                sequential_records[task_hash]
            ), f"task {task_hash}: batch record diverged"

    def test_non_batch_engine_tasks_fall_back(self):
        """A fast-engine spec through the batch backend: nothing packs,
        everything still completes via the sequential fallback."""
        spec = spec_with(engine="fast", seeds=[0])
        outcome = run_campaign(spec, backend=BatchBackend())
        reference = run_campaign(spec, backend=SequentialBackend())
        assert outcome.summary.ok == reference.summary.ok
        assert outcome.report == reference.report

    def test_unpackable_algorithm_falls_back(self):
        """A group whose algorithm has no batched kernel (subclass of a
        registered type) must fall back per task, not fail."""
        spec = spec_with(
            algorithms=["tests.campaign.test_batch_backend:subclassed_five"],
            ns=[9],
            seeds=[0, 1],
        )
        outcome = run_campaign(spec, backend=BatchBackend())
        assert outcome.summary.ok == 4
        assert outcome.summary.failed == 0
        reference = run_campaign(spec, backend=SequentialBackend())
        assert outcome.report == reference.report


class TestBatchResume:
    def test_resume_repacks_remainder(self, tmp_path):
        """A journal holding half of a former group: the resumed run
        re-packs the remainder into a smaller batch and the union of
        records equals a from-scratch sequential run."""
        spec = spec_with(algorithms=["fast5"], ns=[9])
        journal = tmp_path / "journal.jsonl"

        partial = run_campaign(
            spec, backend=BatchBackend(), journal_path=journal, stop_after=3
        )
        assert partial.summary.ok == 3

        resumed = run_campaign(
            spec, backend=BatchBackend(), journal_path=journal, resume=True
        )
        assert resumed.summary.ok == 6
        assert resumed.summary.failed == 0

        reference = run_campaign(spec, backend=SequentialBackend())
        resumed_records = by_hash(resumed.records)
        for task_hash, record in by_hash(reference.records).items():
            assert strip_timing(resumed_records[task_hash]) == strip_timing(
                record
            )


class TestBatchMetrics:
    def test_batch_metrics_emitted_and_nondeterministic(self):
        from repro.analysis.inputs import random_distinct_ids
        from repro.model.batch import run_batch
        from repro.model.topology import Cycle
        from repro.schedulers import BernoulliScheduler

        assert "batch_replicas" in NONDETERMINISTIC_METRICS
        assert "batch_occupancy" in NONDETERMINISTIC_METRICS

        with collecting() as registry:
            results = run_batch(
                [FastFiveColoring() for _ in range(4)], Cycle(9),
                [random_distinct_ids(9, seed=s) for s in range(4)],
                [BernoulliScheduler(p=0.5, seed=s) for s in range(4)],
                max_time=20_000,
            )
        assert results is not None and len(results) == 4
        snapshot = registry.snapshot()
        assert snapshot["batch_replicas"]["samples"][0]["count"] == 1
        occupancy = snapshot["batch_occupancy"]["samples"][0]
        assert 0.0 < occupancy["sum"] <= 1.0
        # Per-replica engine metrics ride along under engine="batch".
        runs = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snapshot["engine_runs_total"]["samples"]
        }
        assert sum(runs.values()) == 4
        assert all(dict(k)["engine"] == "batch" for k in runs)

    def test_deterministic_engine_metrics_match_fast(self):
        """Deterministic engine metrics are a pure function of the
        (bit-identical) results, so batch and fast emissions must diff
        clean once the engine label is ignored."""
        from repro.analysis.inputs import random_distinct_ids
        from repro.model.batch import run_batch
        from repro.model.execution import run_execution
        from repro.model.topology import Cycle
        from repro.schedulers import BernoulliScheduler

        def workload():
            return (
                [FastFiveColoring() for _ in range(3)],
                [random_distinct_ids(9, seed=s) for s in range(3)],
                [BernoulliScheduler(p=0.5, seed=s) for s in range(3)],
            )

        with collecting() as registry:
            algorithms, inputs_list, schedules = workload()
            run_batch(
                algorithms, Cycle(9), inputs_list, schedules, max_time=20_000
            )
        batch_snapshot = registry.deterministic_snapshot(
            ignore_labels=("engine",)
        )

        with collecting() as registry:
            algorithms, inputs_list, schedules = workload()
            for algorithm, inputs, schedule in zip(
                algorithms, inputs_list, schedules
            ):
                run_execution(
                    algorithm, Cycle(9), inputs, schedule,
                    max_time=20_000, engine="fast",
                )
            fast_snapshot = registry.deterministic_snapshot(
                ignore_labels=("engine",)
            )
        assert batch_snapshot == fast_snapshot
