"""Tests for task execution and result serialization."""

from repro.campaign.registry import resolve_algorithm, resolve_schedule
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import TaskResult, execute_task
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import CampaignError

import pytest


def one_task(algorithm="fast5", schedule="bernoulli"):
    spec = CampaignSpec.build(
        algorithms=[algorithm], ns=[10], input_families=["random"],
        schedules=[schedule], seeds=[3],
    )
    return spec.expand()[0]


class TestExecuteTask:
    def test_runs_and_verifies(self):
        result = execute_task(one_task().to_dict())
        assert result.ok
        assert result.terminated_count == 10
        assert result.max_activation >= 1
        assert sum(k for _, k in result.colors) == 10

    def test_deterministic_up_to_elapsed(self):
        a = execute_task(one_task().to_dict()).to_dict()
        b = execute_task(one_task().to_dict()).to_dict()
        a.pop("elapsed"), b.pop("elapsed")
        assert a == b

    def test_tuple_colors_survive_json_roundtrip(self):
        """Algorithm 1's palette is tuples; journaling must not lose that."""
        import json

        result = execute_task(one_task(algorithm="alg1", schedule="sync").to_dict())
        assert result.palette_ok
        rehydrated = TaskResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rehydrated.colors == result.colors
        assert all(isinstance(c, tuple) for c, _ in rehydrated.colors)


class TestRegistryResolution:
    def test_dotted_path_algorithm(self):
        factory = resolve_algorithm("tests.campaign.faulty:slow_coloring")
        assert isinstance(factory(), FastFiveColoring)

    def test_unknown_name_lists_known(self):
        with pytest.raises(CampaignError, match="known:"):
            resolve_algorithm("nope")

    def test_bad_dotted_path(self):
        with pytest.raises(CampaignError, match="cannot import"):
            resolve_algorithm("no.such.module:thing")
        with pytest.raises(CampaignError, match="no attribute"):
            resolve_algorithm("tests.campaign.faulty:missing")

    def test_seed_injection_uniform(self):
        """Every registered scheduler factory tolerates a seed."""
        from repro.campaign.registry import SCHEDULERS

        for name in SCHEDULERS:
            assert resolve_schedule(name, seed=7) is not None
