"""E2E torn-write recovery via the chaos layer (deterministic kill).

``test_kill_resume`` kills the campaign from outside at a *roughly*
timed point; this test uses the ``campaign.journal.torn`` fault site to
die mid-append at an *exact* journal line, leaving a provably torn
trailing record.  Resume must skip exactly the records that were
durably journaled, re-run everything else, and land on the bit-identical
report — the strongest form of the journal's crash-safety contract.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

TOTAL_TASKS = 16  # 8 seeds x 2 schedules

CAMPAIGN_ARGS = [
    "campaign",
    "--algorithms", "fast5",
    "--ns", "16",
    "--inputs", "random",
    "--schedules", "sync,bernoulli",
    "--seeds", "8",
    "--backend", "sequential",
    "--json",
]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_CHAOS_PLAN", None)  # no ambient plan leaks in
    return env


def run_cli(args, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args,
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, text=True, **kw
    )


@pytest.mark.slow
@pytest.mark.parametrize("site", ["campaign.journal.torn", "campaign.journal.kill"])
def test_injected_journal_death_resumes_bit_identically(tmp_path, site):
    from repro.chaos.plan import FaultPlan, FaultRule

    after = 6  # die at journal probe 6: header + 5 durable records

    # Baseline: the uninterrupted campaign.
    baseline = run_cli(
        CAMPAIGN_ARGS + ["--journal", str(tmp_path / "base.jsonl")]
    )
    assert baseline.returncode == 0, baseline.stderr
    base_payload = json.loads(baseline.stdout)
    assert base_payload["report"]["runs"] == TOTAL_TASKS

    # The same campaign with a plan that dies at the chosen append.
    plan = FaultPlan(0, [FaultRule(site, rate=1.0, after=after)])
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(plan.to_json() + "\n")
    journal = tmp_path / "campaign.jsonl"
    killed = run_cli(
        CAMPAIGN_ARGS
        + ["--journal", str(journal), "--chaos-plan", str(plan_path)]
    )
    assert killed.returncode == 137, (killed.returncode, killed.stderr)

    raw_lines = journal.read_text().splitlines()
    if site == "campaign.journal.torn":
        # The fatal append is half-written: present on disk, not JSON.
        assert len(raw_lines) == after + 1
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw_lines[-1])
        parseable = raw_lines[:-1]
    else:
        # The pre-append kill loses the record entirely: no torn line.
        assert len(raw_lines) == after
        parseable = raw_lines
    for line in parseable:
        json.loads(line)

    # Resume without the plan: exactly the durable records are skipped.
    resumed = run_cli(CAMPAIGN_ARGS + ["--journal", str(journal), "--resume"])
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(resumed.stdout)
    assert payload["summary"]["skipped"] == after - 1
    assert payload["summary"]["executed"] == TOTAL_TASKS - (after - 1)
    assert payload["report"] == base_payload["report"]
    assert payload["all_ok"] is True
