"""Deliberately faulty campaign workloads (fault-tolerance tests).

These factories are referenced by dotted path
(``"tests.campaign.faulty:crash_once"``) in task descriptions, so
worker processes resolve them through the campaign registry exactly
like real algorithms.  One-shot faults coordinate across processes via
marker files under ``$REPRO_CAMPAIGN_FAULT_DIR`` (set by the tests):
the first resolution trips the fault, every later one runs the real
:class:`FastFiveColoring` — which is what lets a retried task succeed.
"""

from __future__ import annotations

import os
import time

from repro.core.fast_coloring5 import FastFiveColoring


def _trip_once(marker_name: str) -> bool:
    """True exactly once per fault dir (atomic via O_EXCL create)."""
    fault_dir = os.environ["REPRO_CAMPAIGN_FAULT_DIR"]
    marker = os.path.join(fault_dir, marker_name)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def raise_always():
    """Every attempt raises: the task must end up ``failed``."""
    raise ValueError("injected failure (raise_always)")


def raise_once():
    """First attempt raises, retries succeed."""
    if _trip_once("raised"):
        raise ValueError("injected failure (raise_once)")
    return FastFiveColoring()


def crash_once():
    """First attempt kills the worker process outright (no exception)."""
    if _trip_once("crashed"):
        os._exit(42)
    return FastFiveColoring()


def crash_always():
    """Every attempt kills the worker: the task must surface a
    PoolTaskError after exhausting retries, without respawn-storming."""
    os._exit(42)


def hang_once():
    """First attempt hangs far beyond any sane task timeout."""
    if _trip_once("hung"):
        time.sleep(600)
    return FastFiveColoring()


def slow_coloring():
    """A correct algorithm with ~20 ms of startup cost per task.

    Used by the kill-and-resume integration test to make mid-campaign
    SIGKILL timing reliable, and by the throughput benchmark to model
    a compute-heavy task.
    """
    time.sleep(0.02)
    return FastFiveColoring()
