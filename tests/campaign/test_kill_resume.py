"""Integration: a campaign process SIGKILLed mid-flight resumes exactly.

Unlike the in-process resume tests, this drives the real CLI in a
subprocess, kills it -9 at roughly half completion (so the journal's
fsync-per-record durability is what's actually under test), resumes
with ``--resume``, and checks the final verdict matches an
uninterrupted campaign.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

CAMPAIGN_ARGS = [
    "campaign",
    "--algorithms", "tests.campaign.faulty:slow_coloring",
    "--ns", "8",
    "--inputs", "random",
    "--schedules", "sync,bernoulli",
    "--seeds", "30",  # 60 tasks x ~20ms startup each
    "--backend", "pool",
    "--workers", "2",
    "--json",
]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def run_cli(args, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args,
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, text=True, **kw
    )


@pytest.mark.slow
def test_sigkill_then_resume_matches_uninterrupted(tmp_path):
    journal = tmp_path / "campaign.jsonl"

    # Baseline: uninterrupted campaign.
    baseline = run_cli(CAMPAIGN_ARGS + ["--journal", str(tmp_path / "base.jsonl")])
    assert baseline.returncode == 0, baseline.stderr
    base_report = json.loads(baseline.stdout)["report"]
    assert base_report["runs"] == 60

    # Start the same campaign, SIGKILL it mid-flight.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli"]
        + CAMPAIGN_ARGS + ["--journal", str(journal)],
        cwd=REPO_ROOT, env=cli_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    # Wait until roughly half the journal exists, then kill -9.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if journal.exists():
            lines = journal.read_text().count("\n")
            if lines >= 25:  # header + ~40% of 60 records
                break
        if proc.poll() is not None:  # finished too fast — still a pass path
            break
        time.sleep(0.02)
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    journaled = journal.read_text().count("\n") - 1
    assert journaled < 60, "kill landed too late to exercise resume"

    # Resume: only the unfinished tasks run; final report matches.
    resumed = run_cli(CAMPAIGN_ARGS + ["--journal", str(journal), "--resume"])
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(resumed.stdout)
    assert payload["summary"]["skipped"] >= journaled - 1  # torn line tolerated
    assert payload["summary"]["skipped"] + payload["summary"]["executed"] == 60
    assert payload["report"] == base_report
    assert payload["all_ok"] is True
