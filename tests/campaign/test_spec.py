"""Tests for campaign specs, expansion determinism and task hashing."""

import pytest

from repro.campaign.spec import CampaignSpec, ScheduleSpec, TaskSpec
from repro.errors import CampaignError


def small_spec(**overrides):
    defaults = dict(
        algorithms=["fast5", "fast6"],
        ns=[8, 12],
        input_families=["random", "zigzag"],
        schedules=["sync", ("bernoulli", {"p": 0.5})],
        seeds=range(3),
    )
    defaults.update(overrides)
    return CampaignSpec.build(**defaults)


class TestScheduleSpec:
    def test_params_are_sorted_and_frozen(self):
        a = ScheduleSpec.of("bernoulli", {"p": 0.4, "seed_bias": 1})
        b = ScheduleSpec.of("bernoulli", {"seed_bias": 1, "p": 0.4})
        assert a == b
        assert a.params_dict() == {"p": 0.4, "seed_bias": 1}

    def test_label(self):
        assert ScheduleSpec.of("sync").label() == "sync"
        assert "p=0.5" in ScheduleSpec.of("bernoulli", {"p": 0.5}).label()


class TestExpansion:
    def test_grid_size(self):
        spec = small_spec()
        tasks = spec.expand()
        assert len(tasks) == spec.size == 2 * 2 * 2 * 2 * 3

    def test_deterministic(self):
        assert small_spec().expand() == small_spec().expand()

    def test_indices_and_shards(self):
        spec = small_spec(num_shards=4)
        tasks = spec.expand()
        assert [t.index for t in tasks] == list(range(len(tasks)))
        assert {t.shard for t in tasks} == {0, 1, 2, 3}

    def test_hashes_unique(self):
        tasks = small_spec().expand()
        assert len({t.task_hash for t in tasks}) == len(tasks)

    def test_hash_excludes_grid_position(self):
        """The same run config hashes identically at any grid position."""
        task = small_spec().expand()[0]
        moved = TaskSpec.from_dict({**task.to_dict(), "index": 99, "shard": 3})
        assert moved.task_hash == task.task_hash
        assert moved.index == 99 and moved.shard == 3

    def test_task_roundtrip(self):
        for task in small_spec().expand()[:5]:
            clone = TaskSpec.from_dict(task.to_dict())
            assert clone == task
            assert clone.task_hash == task.task_hash


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError, match="empty"):
            small_spec(seeds=[])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(CampaignError, match="unknown algorithm"):
            small_spec(algorithms=["quantum9"])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(CampaignError, match="unknown scheduler"):
            small_spec(schedules=["chaotic"])

    def test_dotted_path_accepted_unchecked(self):
        spec = small_spec(algorithms=["tests.campaign.faulty:slow_coloring"])
        assert spec.size > 0


class TestSpecRoundtrip:
    def test_dict_roundtrip(self):
        spec = small_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_spec_hash_differs(self):
        assert small_spec().spec_hash != small_spec(seeds=range(4)).spec_hash
