"""Tests for the JSONL campaign journal (durability + resume filter)."""

import json

import pytest

from repro.campaign.journal import CampaignJournal
from repro.errors import CampaignError


def rec(h, status="ok"):
    return {"hash": h, "status": status, "task": {}, "result": None,
            "error": None, "attempts": 1, "elapsed": 0.0, "worker": None,
            "timeouts": 0, "crashes": 0}


class TestJournalBasics:
    def test_start_append_read(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start({"axis": [1]}, "abc123")
        journal.append(rec("h1"))
        journal.append(rec("h2", "failed"))
        journal.close()

        assert journal.header()["spec_hash"] == "abc123"
        assert [r["hash"] for r in journal.records()] == ["h1", "h2"]
        assert journal.completed_hashes() == {"h1", "h2"}

    def test_append_before_start_rejected(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        with pytest.raises(CampaignError, match="not started"):
            journal.append(rec("h1"))

    def test_creates_parent_dirs(self, tmp_path):
        journal = CampaignJournal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.start({}, "x")
        journal.close()
        assert journal.path.exists()


class TestResume:
    def test_resume_missing_file_is_fresh_start(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert journal.resume("abc") == set()
        journal.append(rec("h1"))
        journal.close()
        assert journal.completed_hashes() == {"h1"}

    def test_resume_returns_terminal_hashes_and_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.start({}, "abc")
        journal.append(rec("h1"))
        journal.close()

        journal2 = CampaignJournal(path)
        assert journal2.resume("abc") == {"h1"}
        journal2.append(rec("h2"))
        journal2.close()
        assert journal2.completed_hashes() == {"h1", "h2"}

    def test_resume_wrong_campaign_rejected(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start({}, "abc")
        journal.close()
        with pytest.raises(CampaignError, match="refusing to mix"):
            CampaignJournal(journal.path).resume("def")

    def test_truncated_trailing_line_ignored(self, tmp_path):
        """A SIGKILL mid-append must not poison the journal."""
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.start({}, "abc")
        journal.append(rec("h1"))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec("h2"))[: 20])  # torn write

        journal2 = CampaignJournal(path)
        assert journal2.resume("abc") == {"h1"}
        journal2.close()
