"""Fault-tolerance tests: raising, crashing and hanging tasks.

The pool backend's contract is that *no* task failure mode kills the
campaign: raising tasks are retried, hung workers are killed at the
deadline and replaced, dead workers are respawned — and a task that
keeps failing is recorded as ``failed`` while everything else
completes.
"""

import pytest

from repro.campaign.backends import PoolBackend, SequentialBackend, make_backend
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError


def spec_with(algorithms, **overrides):
    defaults = dict(
        algorithms=algorithms,
        ns=[8],
        input_families=["random"],
        schedules=["sync"],
        seeds=[0],
    )
    defaults.update(overrides)
    return CampaignSpec.build(**defaults)


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_FAULT_DIR", str(tmp_path))
    return tmp_path


class TestMakeBackend:
    def test_known_backends(self):
        assert make_backend("sequential").name == "sequential"
        assert make_backend("pool", workers=2).workers == 2

    def test_unknown_backend(self):
        with pytest.raises(CampaignError, match="unknown backend"):
            make_backend("quantum")


class TestSequentialFaults:
    def test_raise_once_is_retried(self, fault_dir):
        outcome = run_campaign(
            spec_with(["tests.campaign.faulty:raise_once", "fast5"]),
            backend=SequentialBackend(),
            max_retries=2,
        )
        assert outcome.summary.failed == 0
        assert outcome.summary.ok == 2
        assert outcome.summary.retries == 1
        assert outcome.report.runs == 2
        assert outcome.all_ok

    def test_raise_always_fails_terminally(self, fault_dir):
        outcome = run_campaign(
            spec_with(["tests.campaign.faulty:raise_always", "fast5"]),
            backend=SequentialBackend(),
            max_retries=1,
        )
        assert outcome.summary.failed == 1
        assert outcome.summary.ok == 1
        assert not outcome.all_ok
        failed = [r for r in outcome.records if r["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["attempts"] == 2  # 1 try + 1 retry
        assert "injected failure" in failed[0]["error"]


class TestPoolFaults:
    def test_worker_crash_recovered(self, fault_dir):
        """A dying worker must not kill the campaign (requeue + respawn)."""
        outcome = run_campaign(
            spec_with(["tests.campaign.faulty:crash_once", "fast5"],
                      seeds=[0, 1]),
            backend=PoolBackend(workers=2),
            task_timeout=30.0,
            max_retries=2,
        )
        assert outcome.summary.failed == 0
        assert outcome.summary.ok == 4
        assert outcome.summary.crashes == 1
        assert outcome.summary.retries >= 1
        assert outcome.all_ok

    def test_hung_task_times_out_and_retries(self, fault_dir):
        outcome = run_campaign(
            spec_with(["tests.campaign.faulty:hang_once", "fast5"]),
            backend=PoolBackend(workers=2),
            task_timeout=1.0,
            max_retries=2,
        )
        assert outcome.summary.failed == 0
        assert outcome.summary.ok == 2
        assert outcome.summary.timeouts == 1
        assert outcome.all_ok

    def test_raise_always_fails_terminally(self, fault_dir):
        outcome = run_campaign(
            spec_with(["tests.campaign.faulty:raise_always", "fast5"]),
            backend=PoolBackend(workers=2),
            task_timeout=30.0,
            max_retries=1,
        )
        assert outcome.summary.failed == 1
        assert outcome.summary.ok == 1
        assert not outcome.all_ok

    def test_pool_matches_sequential_report(self):
        """Backends are execution strategies, not semantics: same report."""
        spec = spec_with(["fast5"], seeds=[0, 1, 2],
                         schedules=["sync", "bernoulli"])
        seq = run_campaign(spec, backend=SequentialBackend())
        pool = run_campaign(spec, backend=PoolBackend(workers=2),
                            task_timeout=30.0)
        assert seq.report == pool.report

    def test_empty_task_list_is_noop(self):
        PoolBackend(workers=1).execute(
            [], task_timeout=1.0, max_retries=0, on_record=lambda r: None
        )

    def test_bad_timeout_rejected(self):
        with pytest.raises(CampaignError, match="task_timeout"):
            PoolBackend(workers=1).execute(
                spec_with(["fast5"]).expand(),
                task_timeout=0,
                max_retries=0,
                on_record=lambda r: None,
            )
