"""Tests for the self-stabilization substrate (§1.4 baseline)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.inputs import random_distinct_ids
from repro.errors import ExecutionError
from repro.model.topology import Cycle, Star, Torus
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)
from repro.selfstab import ColoringRule, NodeState, corrupt_states, run_selfstab


class TestEngine:
    def test_already_legitimate_zero_moves(self):
        rule = ColoringRule(max_degree=2)
        states = [NodeState(x=i, color=i % 2) for i in range(4)]
        result = run_selfstab(rule, Cycle(4), states, RoundRobinScheduler())
        assert result.stabilized
        assert result.moves == 0

    def test_move_counting(self):
        rule = ColoringRule(max_degree=2)
        # all same color: conflicts everywhere
        states = [NodeState(x=i, color=0) for i in range(5)]
        result = run_selfstab(rule, Cycle(5), states, RoundRobinScheduler())
        assert result.stabilized
        assert result.moves == sum(result.moves_per_node.values()) > 0

    def test_state_count_validated(self):
        with pytest.raises(ExecutionError):
            run_selfstab(
                ColoringRule(2), Cycle(3),
                [NodeState(0, 0)], RoundRobinScheduler(),
            )

    def test_max_steps_cutoff_reports_unstabilized(self):
        class NeverDone(ColoringRule):
            def enabled(self, state, neighbor_states):
                return True

            def move(self, state, neighbor_states):
                return NodeState(state.x, state.color + 1)

        result = run_selfstab(
            NeverDone(2), Cycle(3),
            [NodeState(i, 0) for i in range(3)],
            SynchronousScheduler(), max_steps=20,
        )
        assert not result.stabilized
        assert result.steps == 20


class TestColoringRule:
    @pytest.mark.parametrize("n", [4, 9, 25])
    @pytest.mark.parametrize("daemon_seed", range(3))
    def test_stabilizes_from_corruption_on_rings(self, n, daemon_seed):
        ids = random_distinct_ids(n, seed=n)
        rule = ColoringRule(max_degree=2)
        rng = random.Random(daemon_seed)
        init = corrupt_states(ids, rng)
        for schedule in (
            RoundRobinScheduler(),                    # central daemon
            SynchronousScheduler(),                   # all-enabled daemon
            UniformSubsetScheduler(seed=daemon_seed), # distributed daemon
        ):
            result = run_selfstab(rule, Cycle(n), init, schedule, max_steps=10_000)
            assert result.stabilized
            assert rule.legitimate(result.states, Cycle(n))
            assert all(s.color <= 2 for s in result.states)

    def test_stabilizes_on_general_graphs(self):
        for topo in (Torus(3, 4), Star(7)):
            rule = ColoringRule(max_degree=topo.max_degree())
            init = corrupt_states(
                [11 * i for i in range(topo.n)], random.Random(1),
            )
            result = run_selfstab(
                rule, topo, init, BernoulliScheduler(p=0.5, seed=2),
                max_steps=20_000,
            )
            assert result.stabilized
            assert rule.legitimate(result.states, topo)

    def test_out_of_palette_color_is_enabled(self):
        rule = ColoringRule(max_degree=2)
        assert rule.enabled(NodeState(5, color=40), (NodeState(9, 0), NodeState(2, 1)))

    def test_only_lower_endpoint_enabled_on_conflict(self):
        rule = ColoringRule(max_degree=2)
        low = NodeState(x=1, color=0)
        high = NodeState(x=9, color=0)
        other = NodeState(x=5, color=1)
        assert rule.enabled(low, (high, other))
        assert not rule.enabled(high, (low, other))

    def test_move_is_first_fit(self):
        rule = ColoringRule(max_degree=2)
        moved = rule.move(NodeState(3, 0), (NodeState(9, 0), NodeState(1, 1)))
        assert moved.color == 2
        assert moved.x == 3

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_always_stabilizes(self, seed):
        n = 8
        rng = random.Random(seed)
        ids = random_distinct_ids(n, seed=seed)
        init = corrupt_states(ids, rng, color_space=100)
        rule = ColoringRule(max_degree=2)
        result = run_selfstab(
            rule, Cycle(n), init, UniformSubsetScheduler(seed=seed),
            max_steps=10_000,
        )
        assert result.stabilized
        assert rule.legitimate(result.states, Cycle(n))
