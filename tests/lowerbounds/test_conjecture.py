"""The paper's §5 conjecture, probed: k-coloring C_n needs k ≥ 5 for
every n ≥ 3 (not only the prime-power/C_3 cases Property 2.3 covers).

Simulation cannot prove the conjecture, but it can (i) defeat every
candidate 4-color algorithm on larger cycles too, and (ii) confirm the
5-color algorithms remain safe there — both directions of evidence.
"""

import pytest

from repro.lowerbounds.explorer import BoundedExplorer
from repro.lowerbounds.small_palette import (
    candidate_small_palette_algorithms,
    coloring_violation_predicate,
    falsify_coloring,
)
from repro.model.topology import Cycle


class TestConjectureEvidence:
    @pytest.mark.parametrize("n", [4, 5, 6])
    @pytest.mark.parametrize("name", sorted(candidate_small_palette_algorithms()))
    def test_four_color_candidates_fail_beyond_c3(self, name, n):
        algorithm = candidate_small_palette_algorithms()[name]
        outcome = falsify_coloring(
            algorithm, n=n, max_depth=10, max_configs=150_000,
        )
        assert outcome.found, f"{name} survived on C_{n}"

    @pytest.mark.parametrize("n", [4, 5])
    def test_alg1_safe_with_six_colors_exhaustive(self, n):
        """The positive side at 6 colors: no safety violation reachable
        for Algorithm 1 (full pair palette encoded as 6 scalar codes)."""
        from repro.core.coloring6 import SIX_PALETTE, SixColoring

        explorer = BoundedExplorer(SixColoring(), Cycle(n), list(range(1, n + 1)))

        def predicate(config):
            outputs = config.output_dict()
            for p, c in outputs.items():
                if c not in SIX_PALETTE:
                    return f"{p} out of palette: {c}"
            for p, q in Cycle(n).edges():
                if p in outputs and q in outputs and outputs[p] == outputs[q]:
                    return f"monochromatic edge ({p},{q})"
            return None

        outcome = explorer.find_violation(predicate, max_depth=60)
        assert not outcome.found
        assert outcome.exhausted

    def test_alg2_five_color_safety_holds_on_c4_exhaustive(self):
        explorer = BoundedExplorer(
            __import__("repro.core.coloring5", fromlist=["FiveColoring"]).FiveColoring(),
            Cycle(4), [1, 2, 3, 4],
        )
        outcome = explorer.find_violation(
            coloring_violation_predicate(Cycle(4), 5),
            max_depth=12, max_configs=400_000,
        )
        assert not outcome.found
