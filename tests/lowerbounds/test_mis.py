"""Tests for the MIS falsifier (Property 2.1 made operational)."""

import pytest

from repro.lowerbounds.mis import (
    CautiousMIS,
    EagerLocalMaxMIS,
    FlagConfirmMIS,
    candidate_mis_algorithms,
    falsify_mis,
    mis_violation_predicate,
)
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.shm.tasks import MISSpec


class TestCandidateZoo:
    def test_three_candidates(self):
        zoo = candidate_mis_algorithms()
        assert len(zoo) == 3
        assert "mis-eager-local-max" in zoo

    @pytest.mark.parametrize("name", sorted(candidate_mis_algorithms()))
    def test_every_candidate_defeated_on_c3(self, name):
        algorithm = candidate_mis_algorithms()[name]
        outcome = falsify_mis(algorithm, n=3, max_depth=12)
        assert outcome.found, f"{name} survived the bounded search"

    def test_eager_defeated_on_c4_too(self):
        outcome = falsify_mis(EagerLocalMaxMIS(), n=4, max_depth=10)
        assert outcome.found

    def test_eager_violation_is_safety(self):
        outcome = falsify_mis(EagerLocalMaxMIS(), n=3, max_depth=10)
        assert "both output 1" in outcome.description or "no terminated" in outcome.description

    def test_cautious_violation_replays(self):
        """The witness schedule, replayed through the engine, produces
        the doomed MIS position."""
        outcome = falsify_mis(CautiousMIS(), n=3, max_depth=12)
        assert outcome.found
        if outcome.witness:  # safety witness (livelock witnesses loop)
            result = run_execution(
                CautiousMIS(), Cycle(3), [1, 2, 3], outcome.schedule(),
            )
            assert MISSpec(Cycle(3)).check(result.outputs)

    def test_flag_confirm_defeated(self):
        outcome = falsify_mis(FlagConfirmMIS(), n=3)
        assert outcome.found


class TestPredicate:
    def test_no_outputs_no_violation(self):
        predicate = mis_violation_predicate(Cycle(3))
        explorer = BoundedExplorer(EagerLocalMaxMIS(), Cycle(3), [1, 2, 3])
        assert predicate(explorer.initial_config()) is None

    def test_detects_adjacent_ones(self):
        predicate = mis_violation_predicate(Cycle(3))
        explorer = BoundedExplorer(EagerLocalMaxMIS(), Cycle(3), [1, 2, 3])
        config = explorer.apply(explorer.initial_config(), frozenset({0}))
        config = explorer.apply(config, frozenset({1}))
        # p0 solo-joined with 1; p1 (id 2 > 1) joins too: adjacent ones.
        assert predicate(config) is not None
