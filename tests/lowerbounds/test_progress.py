"""Tests for the progress-condition classifier (§1.3 taxonomy)."""

import pytest

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.fast_six import FastSixColoring
from repro.lowerbounds.mis import CautiousMIS, EagerLocalMaxMIS
from repro.lowerbounds.progress import ProgressReport, classify_progress
from repro.lowerbounds.small_palette import PureGreedyColoring
from repro.model.topology import Cycle


class TestClassification:
    def test_algorithm1_fully_wait_free(self):
        report = classify_progress(SixColoring(), Cycle(3), [1, 2, 3])
        assert report.exhausted
        assert report.wait_free is True
        assert report.starvation_free is True
        assert report.obstruction_free is True

    def test_algorithm2_obstruction_free_only(self):
        """The sharpened E13: the chase is a *fair* cycle, so Algorithm
        2 is not even starvation-free — only obstruction-free, exactly
        the guarantee §1.3 proves for its b-subcomponent."""
        report = classify_progress(FiveColoring(), Cycle(3), [1, 2, 3])
        assert report.exhausted
        assert report.wait_free is False
        assert report.starvation_free is False
        assert report.obstruction_free is True

    def test_algorithm3_inherits_profile(self):
        report = classify_progress(FastFiveColoring(), Cycle(3), [1, 2, 3])
        assert (report.wait_free, report.starvation_free,
                report.obstruction_free) == (False, False, True)

    def test_fast_six_fully_wait_free(self):
        report = classify_progress(FastSixColoring(), Cycle(3), [1, 2, 3])
        assert report.wait_free is True
        assert report.starvation_free is True
        assert report.obstruction_free is True

    def test_cautious_mis_inverse_profile(self):
        """Waiting for a sleeping neighbor: starvation-free (fair
        schedules wake everyone) but not obstruction-free (solo runs
        spin forever)."""
        report = classify_progress(CautiousMIS(), Cycle(3), [1, 2, 3])
        assert report.wait_free is False
        assert report.starvation_free is True
        assert report.obstruction_free is False

    def test_eager_mis_wait_free_but_wrong(self):
        """Progress and safety are orthogonal: the eager candidate is
        fully wait-free — it is merely incorrect (E10)."""
        report = classify_progress(EagerLocalMaxMIS(), Cycle(3), [1, 2, 3])
        assert report.wait_free is True

    def test_pure_greedy_obstruction_free_only(self):
        report = classify_progress(PureGreedyColoring(), Cycle(3), [1, 2, 3])
        assert (report.wait_free, report.starvation_free,
                report.obstruction_free) == (False, False, True)

    @pytest.mark.parametrize("ids", [(2, 1, 3), (3, 1, 2), (3, 2, 1)])
    def test_algorithm2_profile_stable_across_id_orders(self, ids):
        report = classify_progress(FiveColoring(), Cycle(3), list(ids))
        assert report.wait_free is False
        assert report.starvation_free is False

    def test_algorithm1_on_c4(self):
        report = classify_progress(SixColoring(), Cycle(4), [1, 2, 3, 4])
        assert report.wait_free is True and report.exhausted


class TestReport:
    def test_summary_rendering(self):
        report = ProgressReport(True, False, None, configs=10, exhausted=False)
        text = report.summary()
        assert "wait-free=yes" in text
        assert "starvation-free=NO" in text
        assert "obstruction-free=?" in text
        assert "truncated" in text

    def test_truncation_keeps_negatives(self):
        """With a tiny budget, positive verdicts become None but found
        negatives stay conclusive."""
        report = classify_progress(
            FiveColoring(), Cycle(3), [1, 2, 3], max_configs=60,
        )
        assert not report.exhausted
        assert report.wait_free in (False, None)
