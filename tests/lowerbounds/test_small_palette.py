"""Tests for the 4-color falsifier (Property 2.3 made operational)."""

import math

import pytest

from repro.lowerbounds.small_palette import (
    CappedFiveColoring,
    PureGreedyColoring,
    RankGreedyColoring,
    alg2_exact_worst_case,
    candidate_small_palette_algorithms,
    coloring_violation_predicate,
    falsify_coloring,
)
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.topology import Cycle


class TestCandidates:
    @pytest.mark.parametrize("name", sorted(candidate_small_palette_algorithms()))
    def test_every_candidate_defeated_on_c3(self, name):
        algorithm = candidate_small_palette_algorithms()[name]
        outcome = falsify_coloring(algorithm, n=3, max_depth=14)
        assert outcome.found, f"{name} survived the bounded search"

    def test_pure_greedy_fails_by_livelock(self):
        outcome = falsify_coloring(PureGreedyColoring(), n=3)
        assert outcome.found
        assert "repeats" in outcome.description

    def test_capped_four_fails(self):
        outcome = falsify_coloring(CappedFiveColoring(), n=3)
        assert outcome.found

    def test_rank_greedy_fails(self):
        outcome = falsify_coloring(RankGreedyColoring(), n=3)
        assert outcome.found


class TestPositiveCounterpart:
    def test_alg2_safety_exhaustive_with_five_colors(self):
        """With its full 5-color palette Algorithm 2 never violates
        safety — exhaustive over the whole reachable space of C_3."""
        from repro.core.coloring5 import FiveColoring

        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_violation(
            coloring_violation_predicate(Cycle(3), 5), max_depth=80,
        )
        assert not outcome.found
        assert outcome.exhausted

    def test_alg2_exact_worst_case_reports_livelock(self):
        """The exact worst case is unbounded — the E13 finding, visible
        through the exhaustive-analysis API as well."""
        worst = alg2_exact_worst_case(3)
        assert any(v == math.inf for v in worst.values())


class TestPredicate:
    def test_out_of_palette_detected(self):
        predicate = coloring_violation_predicate(Cycle(3), 4)
        explorer = BoundedExplorer(CappedFiveColoring(), Cycle(3), [1, 2, 3])
        config = explorer.initial_config()
        assert predicate(config) is None
