"""Tests for the Linial neighborhood-graph apparatus (Property 2.2)."""

import pytest

from repro.errors import ReproError
from repro.lowerbounds.neighborhood import (
    ViewGraph,
    clique_lower_bound,
    exact_chromatic_number,
    greedy_chromatic_upper_bound,
    is_bipartite,
    neighborhood_graph,
)


class TestViewGraph:
    def test_basic_accounting(self):
        g = ViewGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.n == 3 and g.m == 2
        assert g.neighbors("b") == {"a", "c"}

    def test_no_loops(self):
        g = ViewGraph()
        with pytest.raises(ReproError):
            g.add_edge("a", "a")


class TestConstruction:
    @pytest.mark.parametrize("m", [3, 5, 8])
    def test_n0_is_complete(self, m):
        g = neighborhood_graph(0, m)
        assert g.n == m
        assert g.m == m * (m - 1) // 2

    def test_n1_vertex_count(self):
        g = neighborhood_graph(1, 5)
        assert g.n == 5 * 4 * 3

    def test_n1_edge_rule(self):
        g = neighborhood_graph(1, 5)
        assert (1, 2, 3) in g.neighbors((0, 1, 2))  # d=3 fresh
        assert (1, 2, 0) not in g.neighbors((0, 1, 2))  # d == a excluded

    def test_small_space_rejected(self):
        with pytest.raises(ReproError):
            neighborhood_graph(0, 2)

    def test_t_two_unsupported(self):
        with pytest.raises(ReproError):
            neighborhood_graph(2, 4)


class TestChromaticMachinery:
    def test_bipartite_detection(self):
        even = ViewGraph()
        for i in range(4):
            even.add_edge(i, (i + 1) % 4)
        odd = ViewGraph()
        for i in range(5):
            odd.add_edge(i, (i + 1) % 5)
        assert is_bipartite(even)
        assert not is_bipartite(odd)

    def test_bounds_bracket_chi(self):
        g = neighborhood_graph(1, 5)
        lower = clique_lower_bound(g)
        upper = greedy_chromatic_upper_bound(g)
        chi, exact = exact_chromatic_number(g)
        assert lower <= chi <= upper
        assert exact

    def test_exact_on_odd_cycle(self):
        g = ViewGraph()
        for i in range(7):
            g.add_edge(i, (i + 1) % 7)
        assert exact_chromatic_number(g) == (3, True)

    def test_budget_exhaustion_reports_inexact(self):
        g = neighborhood_graph(1, 6)
        chi, exact = exact_chromatic_number(g, node_budget=5)
        assert not exact
        assert chi >= 3  # the greedy bound fallback


class TestLinialStatements:
    """The finite lower-bound facts of E17."""

    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_zero_rounds_need_whole_id_space(self, m):
        chi, exact = exact_chromatic_number(neighborhood_graph(0, m))
        assert exact and chi == m

    def test_no_one_round_two_coloring_for_m_at_least_5(self):
        """N_1(m) has odd cycles for m >= 5: 2-coloring needs > 1 round."""
        for m in (5, 6):
            assert not is_bipartite(neighborhood_graph(1, m))

    def test_one_round_three_coloring_exists_for_small_spaces(self):
        chi5, exact5 = exact_chromatic_number(neighborhood_graph(1, 5))
        chi6, exact6 = exact_chromatic_number(neighborhood_graph(1, 6))
        assert (chi5, exact5) == (3, True)
        assert (chi6, exact6) == (3, True)

    def test_chi_grows_with_id_space(self):
        """χ(N_1(m)) is non-decreasing in m (subgraph monotonicity) —
        the seed of the Ω(log* n) growth."""
        values = []
        for m in (4, 5, 6):
            chi, exact = exact_chromatic_number(neighborhood_graph(1, m))
            assert exact
            values.append(chi)
        assert values == sorted(values)
        assert values[0] < values[-1]
