"""Tests for the bounded exhaustive explorer."""

import math

import pytest

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.errors import ExecutionError
from repro.lowerbounds.explorer import BoundedExplorer, ExplorerConfig
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.types import BOTTOM


class TestTransitionSystem:
    def test_initial_config(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        config = explorer.initial_config()
        assert config.registers == (BOTTOM, BOTTOM, BOTTOM)
        assert config.working() == (0, 1, 2)
        assert not config.all_returned
        assert config.output_dict() == {}

    def test_moves_enumerate_nonempty_subsets(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        moves = list(explorer.moves(explorer.initial_config()))
        assert len(moves) == 7  # 2^3 - 1

    def test_moves_exclude_returned(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        config = explorer.apply(explorer.initial_config(), frozenset({0}))
        assert config.output_dict() == {0: (0, 0)}  # solo return
        moves = list(explorer.moves(config))
        assert len(moves) == 3  # subsets of {1, 2}

    def test_apply_matches_engine(self):
        """The explorer's transition relation replays exactly as the
        engine executes the same schedule."""
        from repro.model.schedule import FiniteSchedule

        steps = [frozenset({0}), frozenset({1, 2}), frozenset({1, 2}),
                 frozenset({1}), frozenset({2}), frozenset({1, 2})]
        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [3, 1, 2])
        config = explorer.initial_config()
        for s in steps:
            working = frozenset(p for p in s if config.outputs[p] is None)
            if working:
                config = explorer.apply(config, working)
        result = run_execution(
            FiveColoring(), Cycle(3), [3, 1, 2], FiniteSchedule(steps),
        )
        assert config.output_dict() == result.outputs

    def test_input_count_checked(self):
        with pytest.raises(ExecutionError):
            BoundedExplorer(SixColoring(), Cycle(3), [1, 2])


class TestFindViolation:
    def test_initial_config_checked(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_violation(lambda c: "always", max_depth=1)
        assert outcome.found
        assert outcome.witness == []

    def test_no_violation_exhausted(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_violation(lambda c: None, max_depth=100)
        assert not outcome.found
        assert outcome.exhausted

    def test_witness_replays(self):
        """A found witness, replayed through the engine, reproduces the
        violating outputs."""
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])

        def two_returned(config):
            return "two returned" if len(config.output_dict()) >= 2 else None

        outcome = explorer.find_violation(two_returned, max_depth=10)
        assert outcome.found
        result = run_execution(
            SixColoring(), Cycle(3), [1, 2, 3], outcome.schedule(),
        )
        assert len(result.outputs) >= 2

    def test_schedule_raises_without_witness(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_violation(lambda c: None, max_depth=2)
        with pytest.raises(ExecutionError):
            outcome.schedule()


class TestFindLivelock:
    def test_algorithm1_acyclic(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_livelock(max_depth=100)
        assert not outcome.found
        assert outcome.exhausted

    def test_algorithm2_livelocks(self):
        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_livelock(max_depth=60)
        assert outcome.found

    def test_livelock_witness_contains_repeat(self):
        """Replaying the witness yields a configuration seen earlier."""
        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_livelock(max_depth=60)
        seen = set()
        config = explorer.initial_config()
        seen.add(config)
        repeated = False
        for step in outcome.witness:
            config = explorer.apply(config, step)
            if config in seen:
                repeated = True
            seen.add(config)
        assert repeated


class TestMaxActivations:
    def test_algorithm1_exact_worst_case(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        worst = {p: explorer.max_activations(p) for p in range(3)}
        assert all(1 <= v <= 8 for v in worst.values())  # Thm 3.1 bound: 8
        assert all(v != math.inf for v in worst.values())

    def test_algorithm2_unbounded(self):
        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [1, 2, 3])
        assert explorer.max_activations(1) == math.inf

    def test_budget_exhaustion_raises(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(4), [1, 2, 3, 4])
        with pytest.raises(ExecutionError):
            explorer.max_activations(0, max_configs=5)
