"""Tests for shared types and the exception hierarchy."""

import pickle

from repro import errors
from repro.types import BOTTOM, Bottom


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM
        assert Bottom() is Bottom()

    def test_falsy(self):
        assert not BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_hashable(self):
        assert len({BOTTOM, Bottom()}) == 1

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_distinct_from_payloads(self):
        assert BOTTOM != 0
        assert BOTTOM != ()
        assert BOTTOM is not None


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_spec_violations_grouped(self):
        assert issubclass(errors.ColoringViolation, errors.SpecViolation)
        assert issubclass(errors.PaletteViolation, errors.SpecViolation)
        assert issubclass(errors.WaitFreedomViolation, errors.SpecViolation)

    def test_catchable_as_base(self):
        try:
            raise errors.ScheduleError("boom")
        except errors.ReproError as exc:
            assert "boom" in str(exc)
