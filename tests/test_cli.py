"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "fast5"
        assert args.n == 20

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro-color {__version__}" in capsys.readouterr().out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8731
        assert args.queue_limit == 64
        assert args.cache_size == 1024
        assert args.max_batch == 32

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 100
        assert args.concurrency == 8
        assert args.duplicates == 0.0
        assert args.schedule == "bernoulli"


class TestCommands:
    def test_run_ok(self, capsys):
        status = main(["run", "--algorithm", "fast5", "--n", "8",
                       "--inputs", "random", "--schedule", "sync"])
        assert status == 0
        out = capsys.readouterr().out
        assert "terminated: 8/8" in out
        assert "proper    : True" in out

    def test_run_every_algorithm(self, capsys):
        for algorithm in ("alg1", "alg2", "fast5", "fast6"):
            assert main(["run", "--algorithm", algorithm, "--n", "6"]) == 0

    def test_run_with_timeline(self, capsys):
        assert main(["run", "--n", "5", "--timeline"]) == 0
        assert "p0" in capsys.readouterr().out

    def test_livelock_command(self, capsys):
        assert main(["livelock", "--loops", "5"]) == 0
        out = capsys.readouterr().out
        assert "finding E13" in out

    def test_falsify_mis(self, capsys):
        assert main(["falsify", "--target", "mis"]) == 0
        out = capsys.readouterr().out
        assert "DEFEATED" in out

    def test_falsify_coloring(self, capsys):
        assert main(["falsify", "--target", "coloring"]) == 0
        assert "DEFEATED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--algorithm", "fast5", "--max-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "log*n" in out
        assert "fit rounds" in out

    def test_ensemble(self, capsys):
        assert main(["ensemble", "--algorithm", "fast5", "--n", "8",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified ensemble" in out
        assert "max activations" in out

    def test_models(self, capsys):
        assert main(["models", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "DECOUPLED" in out
        assert "self-stabilizing" in out

    def test_progress(self, capsys):
        assert main(["progress", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "wait_free" in out
        assert "alg2" in out


class TestRunJson:
    def test_json_verdict_and_stats(self, capsys):
        assert main(["run", "--n", "8", "--schedule", "bernoulli",
                     "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"]["ok"] is True
        assert payload["verdict"]["terminated"] == 8
        assert payload["activations"]["round_complexity"] >= 1
        assert payload["activations"]["total"] >= 8
        assert payload["n"] == 8 and payload["schedule"] == "bernoulli"

    def test_json_suppresses_rendering(self, capsys):
        assert main(["run", "--n", "6", "--json"]) == 0
        out = capsys.readouterr().out
        json.loads(out)  # the whole stdout is one JSON document
        assert "algorithm :" not in out


class TestCampaignCommand:
    ARGS = ["campaign", "--algorithms", "fast5", "--ns", "10",
            "--inputs", "random,zigzag", "--schedules", "sync,bernoulli",
            "--seeds", "2", "--backend", "sequential"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.backend == "pool"
        assert args.retries == 2
        assert not args.resume

    def test_sequential_campaign(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "backend=sequential" in out
        assert "runs=8" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_ok"] is True
        assert payload["report"]["runs"] == 8
        assert payload["summary"]["executed"] == 8

    def test_journal_resume_and_summary_artifact(self, tmp_path, capsys):
        journal = tmp_path / "c.jsonl"
        summary = tmp_path / "summary.json"
        assert main(self.ARGS + ["--journal", str(journal)]) == 0
        capsys.readouterr()  # drain the first invocation's text output
        assert main(self.ARGS + ["--journal", str(journal), "--resume",
                                 "--summary", str(summary), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["skipped"] == 8
        artifact = json.loads(summary.read_text())
        assert artifact["skipped"] == 8
        assert artifact["executed"] == 0

    def test_per_shard_percentiles_in_summary(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        shards = payload["summary"]["per_shard_latency"]
        assert shards
        for shard in shards.values():
            assert "p99" in shard and "wall" in shard
            assert "tasks_per_sec" in shard

    def test_campaign_metrics_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.metrics.json"
        assert main(self.ARGS + ["--metrics", "json",
                                 "--metrics-output", str(out_path)]) == 0
        capsys.readouterr()
        artifact = json.loads(out_path.read_text())
        assert artifact["artifact"] == "repro-metrics"
        metrics = artifact["metrics"]
        assert metrics["campaign_tasks_total"]["samples"][0]["value"] == 8
        assert "campaign_journal_appends_total" not in metrics  # no journal
        assert "engine_runs_total" in metrics  # worker runs instrumented


class TestMetricsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.algorithm == "alg1"
        assert args.n == 64
        assert args.budget_scale == 1.0
        assert args.format == "json"

    def test_alg1_c64_zero_violations(self, capsys):
        """The acceptance-criterion run: Algorithm 1 on C_64 with the
        Theorem 3.1 monitor — the artifact records zero violations."""
        assert main(["metrics", "--algorithm", "alg1", "--n", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["run"]["all_terminated"] is True
        for report in payload["monitors"]:
            assert report["ok"] is True
            assert report["violations"] == []
        budget_report = next(
            r for r in payload["monitors"] if r["monitor"] == "theorem-3.1"
        )
        assert budget_report["max_observed"] <= 3 * 64 // 2 + 4
        assert "engine_activations_total" in payload["metrics"]

    def test_tightened_budget_detects_violation(self, capsys):
        status = main(["metrics", "--algorithm", "alg1", "--n", "32",
                       "--inputs", "monotone", "--budget-scale", "0.02"])
        assert status == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        violations = [
            v for r in payload["monitors"] for v in r["violations"]
        ]
        assert violations
        first = violations[0]
        assert {"time", "process", "observed", "budget"} <= set(first)
        assert first["observed"] > first["budget"]
        assert "violation:" in captured.err

    def test_prometheus_output_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["metrics", "--algorithm", "fast5", "--n", "16",
                     "--format", "prom", "--output", str(out_path)]) == 0
        text = out_path.read_text()
        assert "# TYPE engine_runs_total counter" in text
        assert "bound_violations_total" not in text  # clean run

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_both_engines(self, engine, capsys):
        assert main(["metrics", "--algorithm", "fast6", "--n", "12",
                     "--engine", engine]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestRunMetricsFlags:
    def test_run_metrics_off_by_default(self, capsys):
        assert main(["run", "--n", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload

    def test_run_json_embeds_metrics(self, capsys):
        assert main(["run", "--n", "6", "--json", "--metrics", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "engine_runs_total" in payload["metrics"]

    def test_run_text_mode_appends_artifact(self, capsys):
        assert main(["run", "--n", "6", "--metrics", "json"]) == 0
        out = capsys.readouterr().out
        assert '"repro-metrics"' in out

    def test_run_metrics_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "run.prom"
        assert main(["run", "--n", "6", "--metrics", "prom",
                     "--metrics-output", str(out_path)]) == 0
        assert "engine_runs_total" in out_path.read_text()

    def test_run_exhaustion_diagnostics_on_stderr(self, capsys):
        status = main(["run", "--algorithm", "alg1", "--n", "12",
                       "--inputs", "monotone", "--max-time", "2", "--json"])
        assert status == 1
        captured = capsys.readouterr()
        assert "max_time exhausted" in captured.err
        payload = json.loads(captured.out)
        assert payload["time_exhausted"]["final_time"] == 2
        assert payload["time_exhausted"]["pending"]


class TestServiceCommands:
    def test_loadgen_against_inprocess_server(self, capsys):
        from repro.service.server import ServerThread

        with ServerThread() as server:
            status = main([
                "loadgen", "--port", str(server.port),
                "--requests", "10", "--concurrency", "2",
                "--duplicates", "0.5", "--n", "16", "--json",
            ])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 10
        assert payload["outcomes"]["errors"] == 0
        assert payload["statuses"] == {"200": 10}

    def test_loadgen_text_output(self, capsys):
        from repro.service.server import ServerThread

        with ServerThread() as server:
            status = main([
                "loadgen", "--port", str(server.port),
                "--requests", "6", "--concurrency", "2", "--n", "16",
            ])
        assert status == 0
        out = capsys.readouterr().out
        assert "6 requests @ concurrency 2" in out
        assert "latency" in out

    def test_loadgen_unreachable_server_fails(self, capsys):
        # Nothing listens on port 9; every request errors, exit 1.
        status = main([
            "loadgen", "--port", "9", "--requests", "2",
            "--concurrency", "1", "--timeout", "0.5",
        ])
        assert status == 1
