"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "fast5"
        assert args.n == 20

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_ok(self, capsys):
        status = main(["run", "--algorithm", "fast5", "--n", "8",
                       "--inputs", "random", "--schedule", "sync"])
        assert status == 0
        out = capsys.readouterr().out
        assert "terminated: 8/8" in out
        assert "proper    : True" in out

    def test_run_every_algorithm(self, capsys):
        for algorithm in ("alg1", "alg2", "fast5", "fast6"):
            assert main(["run", "--algorithm", algorithm, "--n", "6"]) == 0

    def test_run_with_timeline(self, capsys):
        assert main(["run", "--n", "5", "--timeline"]) == 0
        assert "p0" in capsys.readouterr().out

    def test_livelock_command(self, capsys):
        assert main(["livelock", "--loops", "5"]) == 0
        out = capsys.readouterr().out
        assert "finding E13" in out

    def test_falsify_mis(self, capsys):
        assert main(["falsify", "--target", "mis"]) == 0
        out = capsys.readouterr().out
        assert "DEFEATED" in out

    def test_falsify_coloring(self, capsys):
        assert main(["falsify", "--target", "coloring"]) == 0
        assert "DEFEATED" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--algorithm", "fast5", "--max-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "log*n" in out
        assert "fit rounds" in out

    def test_ensemble(self, capsys):
        assert main(["ensemble", "--algorithm", "fast5", "--n", "8",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified ensemble" in out
        assert "max activations" in out

    def test_models(self, capsys):
        assert main(["models", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "DECOUPLED" in out
        assert "self-stabilizing" in out

    def test_progress(self, capsys):
        assert main(["progress", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "wait_free" in out
        assert "alg2" in out


class TestRunJson:
    def test_json_verdict_and_stats(self, capsys):
        assert main(["run", "--n", "8", "--schedule", "bernoulli",
                     "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"]["ok"] is True
        assert payload["verdict"]["terminated"] == 8
        assert payload["activations"]["round_complexity"] >= 1
        assert payload["activations"]["total"] >= 8
        assert payload["n"] == 8 and payload["schedule"] == "bernoulli"

    def test_json_suppresses_rendering(self, capsys):
        assert main(["run", "--n", "6", "--json"]) == 0
        out = capsys.readouterr().out
        json.loads(out)  # the whole stdout is one JSON document
        assert "algorithm :" not in out


class TestCampaignCommand:
    ARGS = ["campaign", "--algorithms", "fast5", "--ns", "10",
            "--inputs", "random,zigzag", "--schedules", "sync,bernoulli",
            "--seeds", "2", "--backend", "sequential"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.backend == "pool"
        assert args.retries == 2
        assert not args.resume

    def test_sequential_campaign(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "backend=sequential" in out
        assert "runs=8" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_ok"] is True
        assert payload["report"]["runs"] == 8
        assert payload["summary"]["executed"] == 8

    def test_journal_resume_and_summary_artifact(self, tmp_path, capsys):
        journal = tmp_path / "c.jsonl"
        summary = tmp_path / "summary.json"
        assert main(self.ARGS + ["--journal", str(journal)]) == 0
        capsys.readouterr()  # drain the first invocation's text output
        assert main(self.ARGS + ["--journal", str(journal), "--resume",
                                 "--summary", str(summary), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["skipped"] == 8
        artifact = json.loads(summary.read_text())
        assert artifact["skipped"] == 8
        assert artifact["executed"] == 0
