"""Unit tests for repro.model.registers."""

import pytest

from repro.errors import RegisterError
from repro.model.registers import RegisterFile
from repro.types import BOTTOM


class TestInitialization:
    def test_all_bottom(self):
        rf = RegisterFile(4)
        assert all(rf.read(i) is BOTTOM for i in range(4))

    def test_zero_registers_rejected(self):
        with pytest.raises(RegisterError):
            RegisterFile(0)


class TestWriteRead:
    def test_roundtrip(self):
        rf = RegisterFile(3)
        rf.write(1, ("x", 42))
        assert rf.read(1) == ("x", 42)
        assert rf.read(0) is BOTTOM

    def test_overwrite(self):
        rf = RegisterFile(2)
        rf.write(0, "a")
        rf.write(0, "b")
        assert rf.read(0) == "b"

    def test_write_count(self):
        rf = RegisterFile(2)
        assert rf.write_count(0) == 0
        rf.write(0, 1)
        rf.write(0, 2)
        assert rf.write_count(0) == 2
        assert rf.write_count(1) == 0

    def test_out_of_range(self):
        rf = RegisterFile(2)
        with pytest.raises(RegisterError):
            rf.read(5)
        with pytest.raises(RegisterError):
            rf.write(-1, "x")


class TestBatchSemantics:
    def test_write_all_before_read(self):
        """Equation (1): co-activated processes see each other's writes."""
        rf = RegisterFile(3)
        rf.write_all([(0, "v0"), (2, "v2")])
        assert rf.read_many((0, 1, 2)) == ("v0", BOTTOM, "v2")

    def test_snapshot_immutable(self):
        rf = RegisterFile(2)
        rf.write(0, "x")
        snap = rf.snapshot()
        rf.write(0, "y")
        assert snap == ("x", BOTTOM)

    def test_read_many_order(self):
        rf = RegisterFile(3)
        rf.write(0, "a")
        rf.write(1, "b")
        assert rf.read_many((1, 0)) == ("b", "a")


class TestValidatedUncheckedPath:
    """The fast engine's validate-once / read-unchecked protocol."""

    def test_validate_indices_returns_tuple(self):
        rf = RegisterFile(4)
        assert rf.validate_indices([3, 0]) == (3, 0)
        assert rf.validate_indices(()) == ()

    def test_validate_indices_rejects_bad_indices(self):
        rf = RegisterFile(4)
        with pytest.raises(RegisterError):
            rf.validate_indices([0, 4])
        with pytest.raises(RegisterError):
            rf.validate_indices([-1])

    def test_unchecked_matches_checked_after_validation(self):
        rf = RegisterFile(3)
        rf.write_all([(0, "v0"), (2, "v2")])
        indices = rf.validate_indices((2, 1, 0))
        assert rf.read_many_unchecked(indices) == rf.read_many(indices)
        assert rf.read_many_unchecked(indices) == ("v2", BOTTOM, "v0")

    def test_checked_read_many_stays_default_guardrail(self):
        """The public batch read still validates — the unchecked path
        is an opt-in for callers that pre-validated."""
        rf = RegisterFile(2)
        with pytest.raises(RegisterError):
            rf.read_many((0, 2))
