"""Unit tests for repro.model.trace."""

from repro.core.coloring6 import SixColoring
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.model.trace import StepEvent, Trace


def _traced_run():
    return run_execution(
        SixColoring(), Cycle(3), [5, 1, 9],
        FiniteSchedule([[0], [1, 2], [0, 1, 2], [0, 1, 2], [0, 1, 2]]),
        record_registers=True,
    )


class TestTraceAccessors:
    def test_activations_of(self):
        result = _traced_run()
        acts = result.trace.activations_of(0)
        assert acts[0] == 1
        assert all(t >= 1 for t in acts)

    def test_return_time_matches_result(self):
        result = _traced_run()
        for p, t in result.return_times.items():
            assert result.trace.return_time_of(p) == t

    def test_return_time_none_for_pending(self):
        trace = Trace()
        trace.append(StepEvent(1, frozenset({0}), {0: "v"}, {}, None))
        assert trace.return_time_of(0) is None

    def test_register_history_is_per_write(self):
        result = _traced_run()
        history = result.trace.register_history(0)
        assert history[0][0] == 1  # first write at t=1
        times = [t for t, _ in history]
        assert times == sorted(times)

    def test_final_registers(self):
        result = _traced_run()
        final = result.trace.final_registers()
        assert final is not None
        assert len(final) == 3

    def test_iteration_and_len(self):
        result = _traced_run()
        assert len(result.trace) == len(list(result.trace))
