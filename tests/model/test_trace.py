"""Unit tests for repro.model.trace."""

from repro.core.coloring6 import SixColoring
from repro.model.execution import run_execution
from repro.model.faults import CrashPlan
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.model.trace import StepEvent, Trace
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


def _traced_run():
    return run_execution(
        SixColoring(), Cycle(3), [5, 1, 9],
        FiniteSchedule([[0], [1, 2], [0, 1, 2], [0, 1, 2], [0, 1, 2]]),
        record_registers=True,
    )


class TestTraceAccessors:
    def test_activations_of(self):
        result = _traced_run()
        acts = result.trace.activations_of(0)
        assert acts[0] == 1
        assert all(t >= 1 for t in acts)

    def test_return_time_matches_result(self):
        result = _traced_run()
        for p, t in result.return_times.items():
            assert result.trace.return_time_of(p) == t

    def test_return_time_none_for_pending(self):
        trace = Trace()
        trace.append(StepEvent(1, frozenset({0}), {0: "v"}, {}, None))
        assert trace.return_time_of(0) is None

    def test_register_history_is_per_write(self):
        result = _traced_run()
        history = result.trace.register_history(0)
        assert history[0][0] == 1  # first write at t=1
        times = [t for t, _ in history]
        assert times == sorted(times)

    def test_final_registers(self):
        result = _traced_run()
        final = result.trace.final_registers()
        assert final is not None
        assert len(final) == 3

    def test_iteration_and_len(self):
        result = _traced_run()
        assert len(result.trace) == len(list(result.trace))


def _crashed_run(n=6, crash_times=None, crash_after=None, seed=0):
    """A traced run under a crash-prone adversarial schedule."""
    return run_execution(
        SixColoring(), Cycle(n), [(i * 17) % 101 for i in range(n)],
        CrashPlan(
            BernoulliScheduler(p=0.5, seed=seed),
            crash_times=crash_times,
            crash_after=crash_after,
        ),
        record_registers=True,
        max_time=500,
        engine="reference",
    )


class TestTraceUnderCrashes:
    """Satellite coverage: trace helpers on crash-prone schedules."""

    def test_activations_of_crashed_process_stops_at_crash(self):
        result = _crashed_run(crash_after={2: 3})
        acts = result.trace.activations_of(2)
        assert len(acts) == result.activations[2] <= 3
        assert acts == sorted(acts)
        # No activation is recorded after the crash censors p=2.
        if acts:
            assert all(2 not in e.activated for e in result.trace
                       if e.time > acts[-1])

    def test_return_time_of_crashed_process_is_none(self):
        result = _crashed_run(crash_times={1: 1, 4: 1})
        for p in (1, 4):
            assert p not in result.outputs
            assert result.trace.return_time_of(p) is None
            assert result.trace.activations_of(p) == []
        # Survivors' recorded return times still match the result.
        for p, t in result.return_times.items():
            assert result.trace.return_time_of(p) == t

    def test_register_history_frozen_after_crash(self):
        result = _crashed_run(crash_after={3: 2})
        history = result.trace.register_history(3)
        assert len(history) == len(result.trace.activations_of(3))
        times = [t for t, _ in history]
        assert times == sorted(times)
        # A never-woken process never writes.
        dead = _crashed_run(crash_times={0: 1})
        assert dead.trace.register_history(0) == []

    def test_final_registers_present_despite_crashes(self):
        result = _crashed_run(crash_after={2: 1, 5: 1})
        final = result.trace.final_registers()
        assert final is not None and len(final) == 6

    def test_all_crashed_run_still_traces_time(self):
        """Every process crashed at t=1: the schedule still advances
        time with empty steps until the idle cutoff."""
        n = 4
        result = run_execution(
            SixColoring(), Cycle(n), [5, 1, 9, 7],
            CrashPlan(
                SynchronousScheduler(),
                crash_times={p: 1 for p in range(n)},
            ),
            record_trace=True, max_time=50, engine="reference",
        )
        assert result.outputs == {}
        for p in range(n):
            assert result.trace.activations_of(p) == []
            assert result.trace.return_time_of(p) is None


class TestEmptyTraceEdgeCases:
    def test_empty_trace_helpers(self):
        trace = Trace()
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.activations_of(0) == []
        assert trace.return_time_of(0) is None
        assert trace.register_history(0) == []
        assert trace.final_registers() is None

    def test_empty_schedule_yields_empty_trace(self):
        result = run_execution(
            SixColoring(), Cycle(3), [5, 1, 9], FiniteSchedule([]),
            record_registers=True, engine="reference",
        )
        assert result.final_time == 0
        assert len(result.trace) == 0
        assert result.trace.final_registers() is None

    def test_final_registers_none_without_register_recording(self):
        result = run_execution(
            SixColoring(), Cycle(3), [5, 1, 9],
            FiniteSchedule([[0, 1, 2]] * 4),
            record_trace=True, engine="reference",
        )
        assert len(result.trace) > 0
        assert result.trace.final_registers() is None
