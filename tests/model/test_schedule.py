"""Unit tests for repro.model.schedule."""

import pytest

from repro.errors import ScheduleError
from repro.model.schedule import (
    FiniteSchedule,
    FunctionSchedule,
    RecordedSchedule,
    validate_step,
)
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


class TestValidateStep:
    def test_normalizes_to_frozenset(self):
        s = validate_step([0, 1, 1], 3)
        assert s == frozenset({0, 1})

    def test_rejects_unknown_process(self):
        with pytest.raises(ScheduleError):
            validate_step([5], 3)

    def test_empty_allowed(self):
        assert validate_step([], 3) == frozenset()


class TestFiniteSchedule:
    def test_replays_steps(self):
        sched = FiniteSchedule([[0], [1, 2], []])
        assert list(sched.steps(3)) == [
            frozenset({0}),
            frozenset({1, 2}),
            frozenset(),
        ]

    def test_reusable(self):
        sched = FiniteSchedule([[0]])
        assert list(sched.steps(1)) == list(sched.steps(1))

    def test_len(self):
        assert len(FiniteSchedule([[0], [0]])) == 2

    def test_validates_lazily(self):
        sched = FiniteSchedule([[9]])
        with pytest.raises(ScheduleError):
            list(sched.steps(2))


class TestFunctionSchedule:
    def test_computes_from_time(self):
        sched = FunctionSchedule(lambda t, n: [(t - 1) % n], horizon=4)
        assert list(sched.steps(2)) == [
            frozenset({0}),
            frozenset({1}),
            frozenset({0}),
            frozenset({1}),
        ]


class TestRecordedSchedule:
    def test_records_consumed_steps(self):
        rec = RecordedSchedule(SynchronousScheduler(horizon=3))
        consumed = list(rec.steps(2))
        assert rec.record == consumed
        assert len(consumed) == 3

    def test_replay_matches_random_run(self):
        rec = RecordedSchedule(BernoulliScheduler(p=0.5, seed=7, horizon=10))
        first = list(rec.steps(4))
        replay = list(rec.replay().steps(4))
        assert first == replay

    def test_rerecording_resets(self):
        rec = RecordedSchedule(SynchronousScheduler(horizon=2))
        list(rec.steps(2))
        list(rec.steps(2))
        assert len(rec.record) == 2
