"""Tests for the algorithm conformance harness."""

from typing import NamedTuple

import pytest

from repro.core.algorithm import Algorithm, StepOutcome
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.core.general import GeneralGraphColoring
from repro.extensions.adaptive_five import AdaptiveFiveColoring
from repro.extensions.fast_six import FastSixColoring
from repro.model.contract import check_algorithm
from repro.model.topology import CompleteGraph
from repro.shm.renaming import RankRenaming


class TestShippedAlgorithmsConform:
    @pytest.mark.parametrize(
        "algorithm",
        [
            SixColoring(),
            FiveColoring(),
            FastFiveColoring(),
            GeneralGraphColoring(),
            FastSixColoring(),
            AdaptiveFiveColoring(),
        ],
        ids=lambda a: a.name,
    )
    def test_cycle_algorithms(self, algorithm):
        report = check_algorithm(algorithm)
        assert report.ok, str(report)

    def test_renaming_on_complete_graph(self):
        report = check_algorithm(
            RankRenaming(), topology=CompleteGraph(4), inputs=[9, 2, 7, 5],
        )
        assert report.ok, str(report)


class _BadState:
    """Unhashable, mutable state."""

    def __init__(self, x):
        self.x = x
        self.count = 0

    __hash__ = None

    def __eq__(self, other):
        return isinstance(other, _BadState) and (self.x, self.count) == (other.x, other.count)


class MutatingAlgorithm(Algorithm):
    """Deliberately violates immutability and hashability."""

    name = "bad-mutating"

    def initial_state(self, x_input):
        return _BadState(x_input)

    def register_value(self, state):
        return (state.x, state.count)

    def step(self, state, views):
        state.count += 1  # mutation!
        if state.count >= 3:
            return StepOutcome.ret(state, state.x)
        return StepOutcome.cont(state)


class NondeterministicAlgorithm(Algorithm):
    """Deliberately nondeterministic."""

    name = "bad-nondeterministic"

    _counter = 0

    def initial_state(self, x_input):
        NondeterministicAlgorithm._counter += 1
        return (x_input, NondeterministicAlgorithm._counter)

    def register_value(self, state):
        return state

    def step(self, state, views):
        return StepOutcome.ret(state, state[1])


class TestViolationsDetected:
    def test_mutation_and_hashability_flagged(self):
        report = check_algorithm(MutatingAlgorithm())
        assert not report.ok
        text = str(report)
        assert "not hashable" in text
        assert "mutated the state" in text

    def test_nondeterminism_flagged(self):
        report = check_algorithm(NondeterministicAlgorithm())
        assert not report.ok
        assert any("deterministic" in v for v in report.violations)

    def test_report_str_ok(self):
        report = check_algorithm(SixColoring())
        assert "contract OK" in str(report)
