"""Unit tests for repro.model.topology."""

import random

import pytest

from repro.errors import TopologyError
from repro.model.topology import (
    CompleteGraph,
    Cycle,
    GeneralGraph,
    Path,
    Star,
    Topology,
    Torus,
)


class TestCycle:
    def test_structure(self):
        c = Cycle(5)
        assert c.n == 5
        assert c.neighbors(0) == (4, 1)
        assert c.neighbors(4) == (3, 0)
        assert c.max_degree() == 2

    def test_every_node_degree_two(self):
        c = Cycle(9)
        assert all(c.degree(p) == 2 for p in c.processes())

    def test_edge_count(self):
        assert len(list(Cycle(7).edges())) == 7

    def test_edges_unique_and_ordered(self):
        edges = list(Cycle(6).edges())
        assert len(set(edges)) == len(edges)
        assert all(p < q for p, q in edges)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_too_small_rejected(self, n):
        with pytest.raises(TopologyError):
            Cycle(n)

    def test_adjacency_symmetric(self):
        c = Cycle(8)
        for p, q in c.edges():
            assert c.are_adjacent(p, q)
            assert c.are_adjacent(q, p)

    def test_c3_equals_k3(self):
        c3, k3 = Cycle(3), CompleteGraph(3)
        for p in range(3):
            assert set(c3.neighbors(p)) == set(k3.neighbors(p))


class TestPath:
    def test_structure(self):
        p = Path(4)
        assert p.neighbors(0) == (1,)
        assert p.neighbors(1) == (0, 2)
        assert p.neighbors(3) == (2,)

    def test_too_small(self):
        with pytest.raises(TopologyError):
            Path(1)


class TestCompleteGraph:
    def test_degrees(self):
        k = CompleteGraph(6)
        assert all(k.degree(p) == 5 for p in k.processes())

    def test_edge_count(self):
        assert len(list(CompleteGraph(5).edges())) == 10


class TestStar:
    def test_structure(self):
        s = Star(4)
        assert s.n == 5
        assert s.degree(0) == 4
        assert all(s.degree(i) == 1 for i in range(1, 5))
        assert s.max_degree() == 4


class TestTorus:
    def test_four_regular(self):
        t = Torus(3, 4)
        assert t.n == 12
        assert all(t.degree(p) == 4 for p in t.processes())

    def test_too_small(self):
        with pytest.raises(TopologyError):
            Torus(2, 5)

    def test_wraparound(self):
        t = Torus(3, 3)
        assert 6 in t.neighbors(0)  # vertical wrap
        assert 2 in t.neighbors(0)  # horizontal wrap


class TestGeneralGraph:
    def test_from_edges(self):
        g = GeneralGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.degree(1) == 2
        assert g.are_adjacent(0, 1)
        assert not g.are_adjacent(0, 3)

    def test_duplicate_edges_collapsed(self):
        g = GeneralGraph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.degree(0) == 1

    def test_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            GeneralGraph(3, [(0, 7)])

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        g = GeneralGraph.from_networkx(nx.petersen_graph(), name="petersen")
        assert g.n == 10
        assert g.max_degree() == 3
        assert len(list(g.edges())) == 15


class TestTopologyValidation:
    def test_asymmetric_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (1,), 1: ()})

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (0,)})

    def test_bad_ids_rejected(self):
        with pytest.raises(TopologyError):
            Topology({1: (2,), 2: (1,)})

    def test_duplicate_neighbor_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (1, 1), 1: (0,)})

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology({})


class TestTransformations:
    def test_shuffled_neighbors_same_edges(self):
        c = Cycle(7)
        s = c.with_shuffled_neighbors(random.Random(3))
        assert sorted(c.edges()) == sorted(s.edges())
        for p in c.processes():
            assert set(c.neighbors(p)) == set(s.neighbors(p))

    def test_induced_subgraph(self):
        c = Cycle(6)
        sub = c.induced_subgraph({0, 1, 3})
        assert sub[0] == (1,)
        assert sub[1] == (0,)
        assert sub[3] == ()

    def test_equality_and_hash(self):
        assert Cycle(5) == Cycle(5)
        assert Cycle(5) != Cycle(6)
        assert hash(Cycle(5)) == hash(Cycle(5))
