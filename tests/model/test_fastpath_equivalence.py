"""Differential equivalence harness: fast engine vs reference engine.

The fast execution engine (:mod:`repro.model.fastpath`, including the
compiled kernels of :mod:`repro.model.kernels`) claims to be
*observably identical* to the reference :class:`~repro.model.execution.
Executor`.  This suite is that claim's enforcement: it replays seeded
random, adversarial and synchronous schedules through both engines
across every registered algorithm and asserts bit-identical
:class:`~repro.model.execution.ExecutionResult`\\ s — outputs,
activation counts, return times, final time, final states, and (where
recorded) full traces.

Two dispatch tiers are exercised deliberately:

* registered algorithm classes hit their *compiled kernels*;
* subclasses (exact-type dispatch excludes them) and tracing runs hit
  the *generic fast path* — so both tiers are diffed against the
  reference oracle here.
"""

import random

import pytest

from repro.campaign.registry import ALGORITHMS
from repro.analysis.inputs import random_distinct_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import ExecutionError
from repro.model.execution import ENGINES, Executor, run_execution
from repro.model.fastpath import FastExecutor
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Path
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BurstScheduler,
    GeometricRateScheduler,
    InterleaveScheduler,
    LateWakeupScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    SoloScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

#: Scheduler families of the sweep: synchronous, seeded random, and
#: structured adversaries.  Factories take ``seed`` so random families
#: get a fresh stream per case while structured ones ignore it.
SCHEDULER_FAMILIES = [
    ("sync", lambda seed: SynchronousScheduler()),
    ("bernoulli", lambda seed: BernoulliScheduler(p=0.35, seed=seed)),
    ("uniform-subset", lambda seed: UniformSubsetScheduler(seed=seed)),
    ("adversarial", lambda seed: SlowChainScheduler(slow=[0], slowdown=7)),
]


def both_engines(algorithm_factory, topology, inputs, schedule_factory,
                 *, max_time=20_000, **kwargs):
    """Run the same configuration through both engines.

    Each engine gets its own schedule instance (random schedules are
    seeded, so two instances replay the same stream) and its own
    algorithm instance, ruling out accidental state sharing.
    """
    results = []
    for engine in ("reference", "fast"):
        results.append(
            run_execution(
                algorithm_factory(), topology, list(inputs),
                schedule_factory(), max_time=max_time, engine=engine,
                **kwargs,
            )
        )
    return results


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_engines_bit_identical_over_25_seeds(alg_name, sched_name, sched_factory):
    """The headline differential sweep (Issue 2 acceptance criterion).

    Every registered algorithm × every scheduler family × 25 seeds:
    the two engines must produce equal ``ExecutionResult``s — dataclass
    equality covers outputs, activations, return_times, final_time,
    time_exhausted and final_states.
    """
    factory = ALGORITHMS[alg_name]
    for seed in range(25):
        n = 5 + (seed % 7)
        ids = random_distinct_ids(n, seed=seed)
        reference, fast = both_engines(
            factory, Cycle(n), ids, lambda: sched_factory(seed)
        )
        assert reference == fast, (
            f"{alg_name} under {sched_name} seed {seed}: engines diverged"
        )
        # The sweep must exercise real executions, not vacuous ones.
        assert reference.all_terminated or reference.final_time > 0


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_trace_and_register_recording_equivalence(alg_name):
    """Recorded traces are bit-identical too (generic fast path).

    ``record_registers=True`` makes every step carry a full register
    snapshot, so this compares the engines' visible memory word for
    word at every time index.
    """
    factory = ALGORITHMS[alg_name]
    for seed in range(5):
        n = 7
        ids = random_distinct_ids(n, seed=seed)
        for sched in (
            lambda: SynchronousScheduler(),
            lambda: BernoulliScheduler(p=0.4, seed=seed),
            lambda: RoundRobinScheduler(),
        ):
            reference, fast = both_engines(
                factory, Cycle(n), ids, sched,
                max_time=2_000, record_trace=True, record_registers=True,
            )
            assert reference.trace is not None and fast.trace is not None
            assert reference.trace == fast.trace
            assert reference == fast


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_adversarial_gallery_equivalence(alg_name):
    """Structured adversaries and composite schedules, both engines."""
    factory = ALGORITHMS[alg_name]
    n = 9
    ids = random_distinct_ids(n, seed=3)
    adversaries = [
        lambda: SoloScheduler(pid=2, solo_steps=20),
        lambda: LateWakeupScheduler(sleepers=[0, 4], wake_time=25),
        lambda: SlowChainScheduler(slow=[1, 5], slowdown=5),
        lambda: StaggeredScheduler(stagger=2),
        lambda: AlternatingScheduler(),
        lambda: BurstScheduler(burst=3),
        lambda: GeometricRateScheduler(seed=1),
        lambda: InterleaveScheduler(
            RoundRobinScheduler(), SynchronousScheduler()
        ),
    ]
    for sched in adversaries:
        reference, fast = both_engines(factory, Cycle(n), ids, sched)
        assert reference == fast


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_engines_emit_identical_metrics(alg_name, sched_name, sched_factory):
    """The metrics diff: beyond bit-identical results, the engines must
    emit bit-identical *instrumentation* (deterministic metrics, with
    the ``engine`` label and machine-dependent series excluded)."""
    from repro.obs.metrics import collecting

    factory = ALGORITHMS[alg_name]
    snapshots = {}
    for engine in ("reference", "fast"):
        with collecting() as registry:
            for seed in range(5):
                n = 5 + (seed % 7)
                run_execution(
                    factory(), Cycle(n), random_distinct_ids(n, seed=seed),
                    sched_factory(seed), max_time=20_000, engine=engine,
                )
        snapshots[engine] = registry.deterministic_snapshot(
            ignore_labels=("engine",)
        )
    assert snapshots["reference"] == snapshots["fast"], (
        f"{alg_name} under {sched_name}: metric emissions diverged"
    )
    assert snapshots["fast"], "sweep emitted no deterministic metrics"


def test_generic_path_via_subclass_matches_reference():
    """Kernels dispatch on exact type; a subclass gets the generic
    fast path — which must also be bit-identical to the reference."""

    class Subclassed(FastFiveColoring):
        pass

    for seed in range(10):
        n = 8
        ids = random_distinct_ids(n, seed=seed)
        reference, fast = both_engines(
            Subclassed, Cycle(n), ids,
            lambda: BernoulliScheduler(p=0.3, seed=seed),
        )
        assert reference == fast


def test_kernel_vs_generic_dispatch():
    """Tracing runs bypass the kernel; plain runs compile one."""
    alg = FastFiveColoring()
    plain = FastExecutor(Cycle(5), alg, [3, 11, 6, 14, 9])
    traced = FastExecutor(
        Cycle(5), alg, [3, 11, 6, 14, 9], record_trace=True
    )
    assert plain._kernel is not None
    assert traced._kernel is None


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_path_topology_equivalence(alg_name):
    """Degree-1 endpoints (Path) hit the kernels' one-neighbor arms."""
    factory = ALGORITHMS[alg_name]
    for seed in range(5):
        n = 6
        ids = random_distinct_ids(n, seed=seed)
        reference, fast = both_engines(
            factory, Path(n), ids,
            lambda: UniformSubsetScheduler(seed=seed),
        )
        assert reference == fast


def test_max_time_exhaustion_equivalence():
    """Both engines cut off at the same time with the same flag."""
    for alg_name, factory in sorted(ALGORITHMS.items()):
        reference, fast = both_engines(
            factory, Cycle(9), random_distinct_ids(9, seed=0),
            lambda: BernoulliScheduler(p=0.2, seed=0),
            max_time=7,
        )
        assert reference == fast
        assert reference.final_time <= 7


def test_idle_cutoff_equivalence():
    """The idle-streak cutoff fires identically in both engines."""
    sched = lambda: FiniteSchedule([{0}] * 3 + [set()] * 40)
    alg = FastFiveColoring
    ids = [5, 1, 9]
    r1 = Executor(Cycle(3), alg(), ids).run(sched(), idle_limit=10)
    r2 = FastExecutor(Cycle(3), alg(), ids).run(sched(), idle_limit=10)
    assert r1 == r2
    # idle_limit=0 disables the cutoff in both.
    r3 = Executor(Cycle(3), alg(), ids).run(sched(), idle_limit=0)
    r4 = FastExecutor(Cycle(3), alg(), ids).run(sched(), idle_limit=0)
    assert r3 == r4
    assert r3.final_time > r1.final_time


def test_quiescence_skip_requires_declaration():
    """An algorithm that renounces view-determinism is never skipped.

    The impure algorithm below changes behavior on its k-th step with
    the *same* state and views — a contract violation the fast engine
    must not paper over once ``view_deterministic`` is False.  With the
    flag False, both engines agree (the fast engine re-steps every
    activation); this pins the gate, not the impure behavior.
    """
    from repro.core.algorithm import Algorithm, StepOutcome

    class CountingAlg(Algorithm):
        name = "counting"
        view_deterministic = False

        def __init__(self):
            self.calls = 0

        def initial_state(self, x_input):
            return ("s", x_input)

        def register_value(self, state):
            return state[1]

        def step(self, state, views):
            self.calls += 1
            if self.calls >= 12:
                return StepOutcome.ret(state, state[1])
            return StepOutcome.cont(state)  # identical state: a no-op

    reference = run_execution(
        CountingAlg(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        max_time=100, engine="reference",
    )
    fast = run_execution(
        CountingAlg(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        max_time=100, engine="fast",
    )
    assert reference == fast
    assert reference.all_terminated  # skipping would starve the counter


def test_unknown_engine_rejected():
    with pytest.raises(ExecutionError, match="unknown engine"):
        run_execution(
            FastFiveColoring(), Cycle(3), [1, 2, 3],
            SynchronousScheduler(), engine="warp",
        )
    assert set(ENGINES) == {"fast", "batch", "reference"}


def test_fast_executor_input_length_check():
    with pytest.raises(ExecutionError):
        FastExecutor(Cycle(4), FastFiveColoring(), [1, 2, 3])


def test_non_integer_inputs_flow_through_unchanged():
    """Kernels must not coerce identifiers; ``bool`` ids (an int
    subtype that must survive verbatim in outputs/states) prove it."""
    ids = [True, 3, 7]  # True == 1, a distinct-id set with a bool
    reference, fast = both_engines(
        FastFiveColoring, Cycle(3), ids, lambda: SynchronousScheduler()
    )
    assert reference == fast
