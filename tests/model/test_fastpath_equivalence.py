"""Differential equivalence harness: the engine matrix vs reference.

Every execution engine — the fast path (:mod:`repro.model.fastpath`
with the compiled kernels of :mod:`repro.model.kernels`) and the
node-vectorized wide engine (:mod:`repro.model.wide`) — claims to be
*observably identical* to the reference :class:`~repro.model.execution.
Executor`.  This suite is that claim's enforcement: it replays seeded
random, adversarial and synchronous schedules (with and without crash
plans) through every engine across every registered algorithm and
asserts bit-identical :class:`~repro.model.execution.ExecutionResult`\\ s
— outputs, activation counts, return times, final time, final states,
and (where recorded) full traces.

Three dispatch tiers are exercised deliberately:

* registered algorithm classes hit their *compiled kernels* (scalar
  for fast, plane-form for wide);
* subclasses (exact-type dispatch excludes them) and tracing runs hit
  the *generic fast path*;
* the ``REPRO_BATCH_DISABLE_NUMPY`` flag forces the wide engine's
  pure-Python tier — so all tiers are diffed against the reference
  oracle here.

The ``engine="auto"`` selection layer is covered at the end: whatever
it picks must preserve the reference contract (traces, registers,
monitors), and the decision must be auditable in metrics.
"""

import random

import pytest

from repro.campaign.registry import ALGORITHMS
from repro.analysis.inputs import random_distinct_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import ExecutionError
from repro.model.batch import NUMPY_ENV_FLAG
from repro.model.execution import ENGINES, Executor, run_execution
from repro.model.fastpath import FastExecutor
from repro.model.faults import CrashPlan
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Path
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BurstScheduler,
    GeometricRateScheduler,
    InterleaveScheduler,
    LateWakeupScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    SoloScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

#: Scheduler families of the sweep: synchronous, seeded random, and
#: structured adversaries.  Factories take ``seed`` so random families
#: get a fresh stream per case while structured ones ignore it.
SCHEDULER_FAMILIES = [
    ("sync", lambda seed: SynchronousScheduler()),
    ("bernoulli", lambda seed: BernoulliScheduler(p=0.35, seed=seed)),
    ("uniform-subset", lambda seed: UniformSubsetScheduler(seed=seed)),
    ("adversarial", lambda seed: SlowChainScheduler(slow=[0], slowdown=7)),
]

#: The engines diffed against the reference oracle.  ``batch`` has its
#: own lockstep equivalence suite (tests/model/test_batch_engine.py);
#: ``auto`` is a selection layer over these and is covered separately
#: below.
KERNEL_ENGINES = ("fast", "wide")

#: numpy/no-numpy tier axis: parametrize a test with this to run it in
#: both the vectorized and the pure-Python tier of the wide engine.
TIERS = ("numpy", "pure")


def set_tier(monkeypatch, tier):
    if tier == "pure":
        monkeypatch.setenv(NUMPY_ENV_FLAG, "1")
    else:
        monkeypatch.delenv(NUMPY_ENV_FLAG, raising=False)


def both_engines(algorithm_factory, topology, inputs, schedule_factory,
                 *, max_time=20_000, engines=("reference",) + KERNEL_ENGINES,
                 **kwargs):
    """Run the same configuration through every engine of the matrix.

    Each engine gets its own schedule instance (random schedules are
    seeded, so two instances replay the same stream) and its own
    algorithm instance, ruling out accidental state sharing.  Returns
    results in ``engines`` order (reference first by default).
    """
    results = []
    for engine in engines:
        results.append(
            run_execution(
                algorithm_factory(), topology, list(inputs),
                schedule_factory(), max_time=max_time, engine=engine,
                **kwargs,
            )
        )
    return results


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_engines_bit_identical_over_25_seeds(
    alg_name, sched_name, sched_factory, tier, monkeypatch
):
    """The headline differential sweep (Issue 2 acceptance criterion).

    Every registered algorithm × every scheduler family × 25 seeds ×
    numpy/pure tiers: every engine must produce equal
    ``ExecutionResult``s — dataclass equality covers outputs,
    activations, return_times, final_time, time_exhausted and
    final_states.
    """
    set_tier(monkeypatch, tier)
    factory = ALGORITHMS[alg_name]
    for seed in range(25):
        n = 5 + (seed % 7)
        ids = random_distinct_ids(n, seed=seed)
        reference, fast, wide = both_engines(
            factory, Cycle(n), ids, lambda: sched_factory(seed)
        )
        assert reference == fast, (
            f"{alg_name} under {sched_name} seed {seed} ({tier}): "
            f"fast diverged"
        )
        assert reference == wide, (
            f"{alg_name} under {sched_name} seed {seed} ({tier}): "
            f"wide diverged"
        )
        # The sweep must exercise real executions, not vacuous ones.
        assert reference.all_terminated or reference.final_time > 0


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_crash_plan_equivalence(
    alg_name, sched_name, sched_factory, tier, monkeypatch
):
    """Crashes = schedule censoring: every engine must agree under
    ``CrashPlan``-wrapped schedules of every family, in both tiers.

    A wrapped schedule also exercises the generic ``steps_wide``
    adapter (the wrapper only implements ``steps``), so this doubles
    as the adapter's equivalence proof.
    """
    set_tier(monkeypatch, tier)
    factory = ALGORITHMS[alg_name]
    for seed in range(6):
        n = 6 + (seed % 5)
        ids = random_distinct_ids(n, seed=seed)
        plans = [
            {"crash_times": {0: 2 + seed}},
            {"crash_times": {0: 3, n // 2: 5}},
            {"crash_after": {1: 1, n - 1: 2}},
        ]
        for plan in plans:
            reference, fast, wide = both_engines(
                factory, Cycle(n), ids,
                lambda: CrashPlan(sched_factory(seed), **plan),
            )
            assert reference == fast, (
                f"{alg_name}/{sched_name}/{plan} ({tier}): fast diverged"
            )
            assert reference == wide, (
                f"{alg_name}/{sched_name}/{plan} ({tier}): wide diverged"
            )


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_trace_and_register_recording_equivalence(alg_name):
    """Recorded traces are bit-identical too (generic fast path).

    ``record_registers=True`` makes every step carry a full register
    snapshot, so this compares the engines' visible memory word for
    word at every time index.
    """
    factory = ALGORITHMS[alg_name]
    for seed in range(5):
        n = 7
        ids = random_distinct_ids(n, seed=seed)
        for sched in (
            lambda: SynchronousScheduler(),
            lambda: BernoulliScheduler(p=0.4, seed=seed),
            lambda: RoundRobinScheduler(),
        ):
            reference, fast, wide = both_engines(
                factory, Cycle(n), ids, sched,
                max_time=2_000, record_trace=True, record_registers=True,
            )
            assert reference.trace is not None and fast.trace is not None
            assert reference.trace == fast.trace
            assert reference == fast
            # A recording run through the wide engine falls back to the
            # generic path — the trace must still be bit-identical.
            assert wide.trace is not None
            assert reference.trace == wide.trace
            assert reference == wide


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_adversarial_gallery_equivalence(alg_name):
    """Structured adversaries and composite schedules, both engines."""
    factory = ALGORITHMS[alg_name]
    n = 9
    ids = random_distinct_ids(n, seed=3)
    adversaries = [
        lambda: SoloScheduler(pid=2, solo_steps=20),
        lambda: LateWakeupScheduler(sleepers=[0, 4], wake_time=25),
        lambda: SlowChainScheduler(slow=[1, 5], slowdown=5),
        lambda: StaggeredScheduler(stagger=2),
        lambda: AlternatingScheduler(),
        lambda: BurstScheduler(burst=3),
        lambda: GeometricRateScheduler(seed=1),
        lambda: InterleaveScheduler(
            RoundRobinScheduler(), SynchronousScheduler()
        ),
    ]
    for sched in adversaries:
        reference, fast, wide = both_engines(factory, Cycle(n), ids, sched)
        assert reference == fast
        assert reference == wide


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_engines_emit_identical_metrics(alg_name, sched_name, sched_factory):
    """The metrics diff: beyond bit-identical results, the engines must
    emit bit-identical *instrumentation* (deterministic metrics, with
    the ``engine`` label and machine-dependent series excluded)."""
    from repro.obs.metrics import collecting

    factory = ALGORITHMS[alg_name]
    snapshots = {}
    for engine in ("reference",) + KERNEL_ENGINES:
        with collecting() as registry:
            for seed in range(5):
                n = 5 + (seed % 7)
                run_execution(
                    factory(), Cycle(n), random_distinct_ids(n, seed=seed),
                    sched_factory(seed), max_time=20_000, engine=engine,
                )
        snapshots[engine] = registry.deterministic_snapshot(
            ignore_labels=("engine",)
        )
    for engine in KERNEL_ENGINES:
        assert snapshots["reference"] == snapshots[engine], (
            f"{alg_name} under {sched_name}: {engine} metric emissions "
            f"diverged"
        )
    assert snapshots["fast"], "sweep emitted no deterministic metrics"


def test_generic_path_via_subclass_matches_reference():
    """Kernels dispatch on exact type; a subclass gets the generic
    fast path — which must also be bit-identical to the reference."""

    class Subclassed(FastFiveColoring):
        pass

    for seed in range(10):
        n = 8
        ids = random_distinct_ids(n, seed=seed)
        reference, fast, wide = both_engines(
            Subclassed, Cycle(n), ids,
            lambda: BernoulliScheduler(p=0.3, seed=seed),
        )
        assert reference == fast
        assert reference == wide  # wide declines subclasses too


def test_kernel_vs_generic_dispatch():
    """Tracing runs bypass the kernel; plain runs compile one."""
    alg = FastFiveColoring()
    plain = FastExecutor(Cycle(5), alg, [3, 11, 6, 14, 9])
    traced = FastExecutor(
        Cycle(5), alg, [3, 11, 6, 14, 9], record_trace=True
    )
    assert plain._kernel is not None
    assert traced._kernel is None


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_path_topology_equivalence(alg_name):
    """Degree-1 endpoints (Path) hit the kernels' one-neighbor arms."""
    factory = ALGORITHMS[alg_name]
    for seed in range(5):
        n = 6
        ids = random_distinct_ids(n, seed=seed)
        reference, fast, wide = both_engines(
            factory, Path(n), ids,
            lambda: UniformSubsetScheduler(seed=seed),
        )
        assert reference == fast
        assert reference == wide


def test_max_time_exhaustion_equivalence():
    """Both engines cut off at the same time with the same flag."""
    for alg_name, factory in sorted(ALGORITHMS.items()):
        reference, fast, wide = both_engines(
            factory, Cycle(9), random_distinct_ids(9, seed=0),
            lambda: BernoulliScheduler(p=0.2, seed=0),
            max_time=7,
        )
        assert reference == fast
        assert reference == wide
        assert reference.final_time <= 7


def test_idle_cutoff_equivalence():
    """The idle-streak cutoff fires identically in both engines."""
    sched = lambda: FiniteSchedule([{0}] * 3 + [set()] * 40)
    alg = FastFiveColoring
    ids = [5, 1, 9]
    r1 = Executor(Cycle(3), alg(), ids).run(sched(), idle_limit=10)
    r2 = FastExecutor(Cycle(3), alg(), ids).run(sched(), idle_limit=10)
    assert r1 == r2
    # idle_limit=0 disables the cutoff in both.
    r3 = Executor(Cycle(3), alg(), ids).run(sched(), idle_limit=0)
    r4 = FastExecutor(Cycle(3), alg(), ids).run(sched(), idle_limit=0)
    assert r3 == r4
    assert r3.final_time > r1.final_time


def test_quiescence_skip_requires_declaration():
    """An algorithm that renounces view-determinism is never skipped.

    The impure algorithm below changes behavior on its k-th step with
    the *same* state and views — a contract violation the fast engine
    must not paper over once ``view_deterministic`` is False.  With the
    flag False, both engines agree (the fast engine re-steps every
    activation); this pins the gate, not the impure behavior.
    """
    from repro.core.algorithm import Algorithm, StepOutcome

    class CountingAlg(Algorithm):
        name = "counting"
        view_deterministic = False

        def __init__(self):
            self.calls = 0

        def initial_state(self, x_input):
            return ("s", x_input)

        def register_value(self, state):
            return state[1]

        def step(self, state, views):
            self.calls += 1
            if self.calls >= 12:
                return StepOutcome.ret(state, state[1])
            return StepOutcome.cont(state)  # identical state: a no-op

    reference = run_execution(
        CountingAlg(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        max_time=100, engine="reference",
    )
    fast = run_execution(
        CountingAlg(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        max_time=100, engine="fast",
    )
    assert reference == fast
    assert reference.all_terminated  # skipping would starve the counter


def test_unknown_engine_rejected():
    with pytest.raises(ExecutionError, match="unknown engine"):
        run_execution(
            FastFiveColoring(), Cycle(3), [1, 2, 3],
            SynchronousScheduler(), engine="warp",
        )
    assert set(ENGINES) == {"fast", "batch", "wide", "reference", "auto"}


def test_unknown_engine_rejected_eagerly_by_ensembles():
    """`run_ensemble` fails fast with the one-line message, before any
    run executes — not with a traceback from deep inside the grid."""
    from repro.analysis.ensembles import run_ensemble

    with pytest.raises(ExecutionError, match="unknown engine 'warp'"):
        run_ensemble(
            FastFiveColoring, Cycle(3), [[1, 2, 3]],
            [("sync", SynchronousScheduler())], engine="warp",
        )


def test_fast_executor_input_length_check():
    with pytest.raises(ExecutionError):
        FastExecutor(Cycle(4), FastFiveColoring(), [1, 2, 3])


def test_non_integer_inputs_flow_through_unchanged():
    """Kernels must not coerce identifiers; ``bool`` ids (an int
    subtype that must survive verbatim in outputs/states) prove it."""
    ids = [True, 3, 7]  # True == 1, a distinct-id set with a bool
    reference, fast, wide = both_engines(
        FastFiveColoring, Cycle(3), ids, lambda: SynchronousScheduler()
    )
    assert reference == fast
    assert reference == wide


def test_huge_identifiers_take_the_scalar_tier():
    """Identifiers ≥ 2⁵³ cannot live in exact int64 lanes; the wide
    engine must route them through its scalar tier, bit-identically."""
    from repro.analysis.inputs import huge_ids

    ids = huge_ids(7, seed=4)
    reference, fast, wide = both_engines(
        FastFiveColoring, Cycle(7), ids, lambda: SynchronousScheduler()
    )
    assert reference == fast
    assert reference == wide


# ----------------------------------------------------------------------
# engine="auto": contract safety of adaptive selection
# ----------------------------------------------------------------------


def test_auto_never_selects_a_contract_changing_engine():
    """Whatever ``auto`` picks must preserve the reference contract for
    the given request: recording and monitored runs land on engines
    that actually produce traces/registers and run monitors."""
    from repro.model.select import select_engine
    from repro.model.wide import WIDE_KERNELS
    from repro.obs.monitors import ActivationBudgetMonitor

    alg = FastFiveColoring()
    shapes = [
        dict(),
        dict(record_trace=True),
        dict(record_registers=True),
        dict(monitors=[ActivationBudgetMonitor(10)]),
        dict(replicas=16),
    ]
    for n in (8, 5000):
        for sched in (SynchronousScheduler(), BernoulliScheduler(p=0.5)):
            for shape in shapes:
                choice = select_engine(alg, Cycle(n), sched, **shape)
                assert choice in ENGINES and choice != "auto"
                if shape.get("record_trace") or shape.get("record_registers"):
                    assert choice == "fast"  # only path producing history
                if shape.get("monitors"):
                    assert choice == "fast"  # only path running monitors
    # Unknown algorithm types and opaque schedules stay on fast.
    class Custom(FastFiveColoring):
        pass

    assert type(Custom()) not in WIDE_KERNELS
    assert select_engine(Custom(), Cycle(5000), SynchronousScheduler()) == "fast"
    assert select_engine(
        alg, Cycle(5000), FiniteSchedule([{0, 1, 2}] * 5)
    ) == "fast"


def test_auto_traced_and_monitored_runs_keep_their_artifacts():
    """End-to-end: ``engine="auto"`` on a traced / register-recording /
    monitored run produces exactly the reference artifacts."""
    from repro.obs.monitors import ActivationBudgetMonitor

    n = 16
    ids = random_distinct_ids(n, seed=11)
    reference = run_execution(
        FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
        record_trace=True, record_registers=True, engine="reference",
    )
    auto = run_execution(
        FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
        record_trace=True, record_registers=True, engine="auto",
    )
    assert auto.trace is not None
    assert auto.trace == reference.trace
    assert auto == reference

    monitor = ActivationBudgetMonitor(1)
    run_execution(
        FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
        monitors=[monitor], engine="auto",
    )
    assert not monitor.ok  # the monitor actually observed the run


def test_auto_results_bit_identical_and_selection_recorded():
    """``auto`` results equal the reference, and each decision lands in
    the ``engine_auto_selected_total`` counter with its reason."""
    from repro.obs.metrics import collecting

    n = 12
    ids = random_distinct_ids(n, seed=5)
    with collecting() as registry:
        auto = run_execution(
            FastFiveColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=2),
            engine="auto",
        )
    reference = run_execution(
        FastFiveColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=2),
        engine="reference",
    )
    assert auto == reference
    entry = registry.snapshot().get("engine_auto_selected_total")
    assert entry is not None and len(entry["samples"]) == 1
    sample = entry["samples"][0]
    assert sample["value"] == 1
    assert sample["labels"]["engine"] in ENGINES
    assert sample["labels"]["engine"] != "auto"
    assert "reason" in sample["labels"]
