"""Unit tests for the execution engine — the Equation (1) semantics."""

from typing import NamedTuple, Tuple

import pytest

from repro.core.algorithm import Algorithm, StepOutcome
from repro.errors import ExecutionError
from repro.model.execution import Executor, run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Path
from repro.schedulers import SynchronousScheduler
from repro.types import BOTTOM


class ProbeState(NamedTuple):
    x: int
    count: int          #: own activations so far
    seen: Tuple         #: last views observed


class ProbeRegister(NamedTuple):
    x: int
    count: int


class Probe(Algorithm):
    """Instrumented algorithm: publishes its activation count, records
    its views, returns after ``stop_after`` activations."""

    name = "probe"

    def __init__(self, stop_after=10**9):
        self.stop_after = stop_after

    def initial_state(self, x_input):
        return ProbeState(x=x_input, count=0, seen=())

    def register_value(self, state):
        return ProbeRegister(x=state.x, count=state.count)

    def step(self, state, views):
        new = ProbeState(x=state.x, count=state.count + 1, seen=views)
        if new.count >= self.stop_after:
            return StepOutcome.ret(new, state.x)
        return StepOutcome.cont(new)


class TestEquationOne:
    def test_first_write_publishes_initial_state(self):
        """A process's first write shows count=0 (pre-first-update)."""
        result = run_execution(
            Probe(), Path(2), [10, 20], FiniteSchedule([[0], [1]]),
        )
        # p1 was activated at t=2 and saw p0's register: count written at
        # t=1 is p0's state *before* its first update, i.e. count=0.
        assert result.final_states[1].seen == (ProbeRegister(x=10, count=0),)

    def test_simultaneous_activation_sees_previous_state(self):
        """Co-activated neighbors see each other's just-written value,
        which is the state at the end of the *previous* activation."""
        result = run_execution(
            Probe(), Path(2), [10, 20],
            FiniteSchedule([[0, 1], [0, 1]]),
        )
        # At t=2 both write count=1 (state after t=1) and read each other.
        assert result.final_states[0].seen == (ProbeRegister(x=20, count=1),)
        assert result.final_states[1].seen == (ProbeRegister(x=10, count=1),)

    def test_sleeping_neighbor_reads_bottom(self):
        result = run_execution(
            Probe(), Path(2), [10, 20], FiniteSchedule([[0]]),
        )
        assert result.final_states[0].seen == (BOTTOM,)

    def test_lagging_register_not_updated_while_inactive(self):
        """A register holds its last write until the owner's next round."""
        result = run_execution(
            Probe(), Path(2), [10, 20],
            FiniteSchedule([[0], [0], [0], [1]]),
        )
        # p0 took 3 steps (last write at t=3 shows count=2); p1 reads that.
        assert result.final_states[1].seen == (ProbeRegister(x=10, count=2),)


class TestTerminationBookkeeping:
    def test_returned_process_never_reactivated(self):
        result = run_execution(
            Probe(stop_after=1), Path(2), [1, 2],
            FiniteSchedule([[0], [0], [0], [1]]),
        )
        assert result.activations[0] == 1
        assert result.outputs == {0: 1, 1: 2}
        assert result.return_times == {0: 1, 1: 4}

    def test_terminated_register_frozen(self):
        """Neighbors still read the last value a returned process wrote."""
        result = run_execution(
            Probe(stop_after=1), Path(2), [1, 2],
            FiniteSchedule([[0], [1]]),
        )
        # p0 returned at t=1 having written count=0; p1 sees that value.
        assert result.final_states[1].seen == (ProbeRegister(x=1, count=0),)

    def test_round_complexity_is_max_activations(self):
        result = run_execution(
            Probe(stop_after=3), Cycle(3), [1, 2, 3],
            FiniteSchedule([[0, 1, 2], [0], [0], [1]]),
        )
        assert result.round_complexity == 3
        assert result.activations == {0: 3, 1: 2, 2: 1}

    def test_all_terminated_stops_early(self):
        result = run_execution(
            Probe(stop_after=1), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.final_time == 1

    def test_pending_set(self):
        result = run_execution(
            Probe(stop_after=2), Cycle(3), [1, 2, 3], FiniteSchedule([[0], [0]]),
        )
        assert result.terminated == {0}
        assert result.pending == {1, 2}


class TestCutoffs:
    def test_max_time_flag(self):
        result = run_execution(
            Probe(), Cycle(3), [1, 2, 3], SynchronousScheduler(), max_time=5,
        )
        assert result.time_exhausted
        assert result.final_time == 5

    def test_idle_limit_breaks_spin(self):
        """A schedule that keeps activating finished processes ends."""
        executor = Executor(Path(2), Probe(stop_after=1), [1, 2])
        result = executor.run(
            FiniteSchedule([[0]] * 500), max_time=10_000, idle_limit=10,
        )
        assert result.outputs == {0: 1}
        assert result.final_time <= 12

    def test_schedule_exhaustion(self):
        result = run_execution(
            Probe(), Cycle(3), [1, 2, 3], FiniteSchedule([[0, 1, 2]] * 4),
        )
        assert not result.time_exhausted
        assert result.final_time == 4


class TestTraceRecording:
    def test_trace_events(self):
        result = run_execution(
            Probe(stop_after=2), Path(2), [1, 2],
            FiniteSchedule([[0, 1], [0, 1]]), record_trace=True,
        )
        assert len(result.trace) == 2
        assert result.trace.events[0].activated == frozenset({0, 1})
        assert result.trace.events[1].returned == {0: 1, 1: 2}

    def test_register_snapshots(self):
        result = run_execution(
            Probe(stop_after=1), Path(2), [1, 2],
            FiniteSchedule([[0], [1]]), record_registers=True,
        )
        snaps = [e.registers for e in result.trace]
        assert snaps[0] == (ProbeRegister(1, 0), BOTTOM)
        assert snaps[1] == (ProbeRegister(1, 0), ProbeRegister(2, 0))

    def test_no_trace_by_default(self):
        result = run_execution(
            Probe(stop_after=1), Path(2), [1, 2], SynchronousScheduler(),
        )
        assert result.trace is None


class TestValidation:
    def test_input_count_mismatch(self):
        with pytest.raises(ExecutionError):
            Executor(Cycle(3), Probe(), [1, 2])
