"""Tests for witness serialization and replay."""

import pytest

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.errors import ReproError
from repro.lowerbounds.explorer import BoundedExplorer
from repro.model.topology import CompleteGraph, Cycle, GeneralGraph
from repro.model.witness import Witness, witness_from_outcome


def _sample_witness():
    return Witness(
        topology=Cycle(3),
        inputs=[1, 2, 3],
        steps=[frozenset({0}), frozenset({1, 2}), frozenset({1, 2})],
        description="sample",
    )


class TestRoundTrip:
    def test_json_roundtrip(self):
        witness = _sample_witness()
        loaded = Witness.from_json(witness.to_json())
        assert loaded.topology == witness.topology
        assert loaded.inputs == witness.inputs
        assert loaded.steps == witness.steps
        assert loaded.description == "sample"

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "witness.json"
        _sample_witness().save(path)
        loaded = Witness.load(path)
        assert loaded.steps == _sample_witness().steps

    def test_complete_graph_topology(self):
        witness = Witness(CompleteGraph(4), [1, 2, 3, 4], [frozenset({0})])
        assert Witness.from_json(witness.to_json()).topology == CompleteGraph(4)

    def test_general_graph_topology(self):
        topo = GeneralGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        witness = Witness(topo, [5, 6, 7, 8], [frozenset({2})])
        loaded = Witness.from_json(witness.to_json())
        assert sorted(loaded.topology.edges()) == sorted(topo.edges())


class TestValidation:
    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            Witness.from_json("not json at all {")

    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            Witness.from_json('{"format": "something-else"}')


class TestReplay:
    def test_replay_reproduces_execution(self):
        witness = _sample_witness()
        first = witness.replay(FiveColoring())
        second = witness.replay(FiveColoring())
        assert first.outputs == second.outputs
        assert first.activations == second.activations

    def test_e13_witness_packaged_and_replayed(self):
        """End to end: explorer finds the livelock, the witness is
        serialized, reloaded, and replaying it reproduces the repeat."""
        explorer = BoundedExplorer(FiveColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_livelock(max_depth=60)
        assert outcome.found
        witness = witness_from_outcome(
            Cycle(3), [1, 2, 3], outcome, description="E13 livelock",
        )
        loaded = Witness.from_json(witness.to_json())
        result = loaded.replay(FiveColoring())
        assert not result.all_terminated  # the loop-entering prefix

    def test_outcome_without_witness_rejected(self):
        explorer = BoundedExplorer(SixColoring(), Cycle(3), [1, 2, 3])
        outcome = explorer.find_livelock(max_depth=60)
        assert not outcome.found
        with pytest.raises(ReproError):
            witness_from_outcome(Cycle(3), [1, 2, 3], outcome)
