"""Unit tests for crash injection (repro.model.faults)."""

import pytest

from repro.analysis.verify import verify_execution
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import ScheduleError
from repro.model.execution import run_execution
from repro.model.faults import CrashPlan, crash_after_activations, crash_after_time
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler


class TestCrashPlanMechanics:
    def test_time_trigger_censors(self):
        plan = crash_after_time(SynchronousScheduler(horizon=4), {1: 3})
        steps = list(plan.steps(3))
        assert steps[0] == frozenset({0, 1, 2})
        assert steps[1] == frozenset({0, 1, 2})
        assert steps[2] == frozenset({0, 2})
        assert steps[3] == frozenset({0, 2})

    def test_never_wakes_with_time_one(self):
        plan = crash_after_time(SynchronousScheduler(horizon=3), {0: 1})
        assert all(0 not in s for s in plan.steps(2))

    def test_activation_trigger(self):
        plan = crash_after_activations(SynchronousScheduler(horizon=5), {0: 2})
        steps = list(plan.steps(2))
        assert [0 in s for s in steps] == [True, True, False, False, False]

    def test_zero_activations(self):
        plan = crash_after_activations(SynchronousScheduler(horizon=2), {1: 0})
        assert all(1 not in s for s in plan.steps(2))

    def test_bad_parameters(self):
        with pytest.raises(ScheduleError):
            CrashPlan(SynchronousScheduler(), crash_times={0: 0})
        with pytest.raises(ScheduleError):
            CrashPlan(SynchronousScheduler(), crash_after={0: -1})

    def test_crashed_processes_property(self):
        plan = CrashPlan(
            SynchronousScheduler(), crash_times={0: 5}, crash_after={2: 1},
        )
        assert plan.crashed_processes == {0, 2}


class TestCrashSemantics:
    """Crashes = disappearing from the schedule (§2.2).

    For the repaired algorithm (FastSixColoring) survivors always
    terminate and properly color; for the paper's Algorithms 2-3 the
    E13b crash-triggered livelock can starve a surviving pair — both
    facts are pinned here.
    """

    @pytest.mark.parametrize("crash_time", [1, 2, 5])
    def test_survivors_terminate_properly_fast_six(self, crash_time):
        from repro.extensions import FAST_SIX_PALETTE, FastSixColoring

        n = 20
        crashed = set(range(0, n, 3))
        plan = crash_after_time(
            SynchronousScheduler(), {p: crash_time for p in crashed},
        )
        result = run_execution(
            FastSixColoring(), Cycle(n), list(range(n)), plan, max_time=50_000,
        )
        verdict = verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE)
        assert verdict.ok
        survivors = set(range(n)) - crashed
        assert survivors <= result.terminated

    def test_crash_after_few_steps_fast_six(self):
        from repro.extensions import FAST_SIX_PALETTE, FastSixColoring

        n = 12
        plan = crash_after_activations(
            SynchronousScheduler(), {3: 1, 7: 2},
        )
        result = run_execution(
            FastSixColoring(), Cycle(n), list(range(n)), plan, max_time=50_000,
        )
        verdict = verify_execution(Cycle(n), result, palette=FAST_SIX_PALETTE)
        assert verdict.ok
        assert (set(range(n)) - {3, 7}) <= result.terminated

    def test_e13b_crash_livelock_starves_fast_five(self):
        """Finding E13b: under synchronous + crashes, Algorithm 3 leaves
        the surviving pair {1, 2} working forever (safety intact)."""
        n = 20
        crashed = set(range(0, n, 3))
        plan = crash_after_time(SynchronousScheduler(), {p: 2 for p in crashed})
        result = run_execution(
            FastFiveColoring(), Cycle(n), list(range(n)), plan, max_time=2_000,
        )
        assert result.time_exhausted
        assert {1, 2} <= result.pending
        assert verify_execution(Cycle(n), result, palette=range(5)).ok
