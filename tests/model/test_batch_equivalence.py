"""Differential equivalence harness: batch engine vs per-run engines.

The batched lockstep engine (:mod:`repro.model.batch`) claims that
running ``B`` replicas through one structure-of-arrays kernel produces
results *bit-identical* to running each replica through the per-run
engines.  This suite enforces that claim replica by replica across
every registered algorithm, across scheduler families (including crash
plans and mixed schedule types inside one batch), across ragged
termination shapes, and across both numeric tiers (numpy-accelerated
and the pure-Python fallback selected by ``REPRO_BATCH_DISABLE_NUMPY``).

The per-run *fast* engine is itself pinned to the reference ``Executor``
by ``test_fastpath_equivalence.py``; here the reference engine is the
oracle so a batch bug cannot hide behind a matching fast-path bug.
"""

import random

import pytest

from repro.analysis.inputs import random_distinct_ids
from repro.campaign.registry import ALGORITHMS
from repro.model.batch import (
    MTBatch,
    NUMPY_ENV_FLAG,
    _LazyMapping,
    _row_to_ids,
    batched_steps,
    load_numpy,
    numpy_accelerated,
    run_batch,
    run_single_batch,
)
from repro.model.execution import run_execution
from repro.model.faults import CrashPlan
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Path
from repro.schedulers import (
    BernoulliScheduler,
    GeometricRateScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

#: Scheduler families swept against every algorithm.  Factories take
#: ``seed`` so random families get a fresh stream per replica while
#: deterministic ones ignore it.
SCHEDULER_FAMILIES = [
    ("sync", lambda seed: SynchronousScheduler()),
    ("bernoulli", lambda seed: BernoulliScheduler(p=0.35, seed=seed)),
    ("uniform-subset", lambda seed: UniformSubsetScheduler(seed=seed)),
    ("round-robin", lambda seed: RoundRobinScheduler(offset=seed % 5)),
    ("geometric", lambda seed: GeometricRateScheduler(seed=seed)),
]


def reference_results(factory, topology, inputs_list, schedule_factories,
                      *, max_time=20_000):
    """Oracle: each replica through the reference engine on its own."""
    return [
        run_execution(
            factory(), topology, list(inputs), make_schedule(),
            max_time=max_time, engine="reference",
        )
        for inputs, make_schedule in zip(inputs_list, schedule_factories)
    ]


def assert_replicas_identical(batch, oracle, label):
    """Field-by-field equality, replica by replica, with a usable diff."""
    assert batch is not None, f"{label}: run_batch unexpectedly declined"
    assert len(batch) == len(oracle)
    for i, (got, want) in enumerate(zip(batch, oracle)):
        assert dict(got.outputs) == dict(want.outputs), f"{label} replica {i}: outputs"
        assert dict(got.activations) == dict(want.activations), (
            f"{label} replica {i}: activations"
        )
        assert dict(got.return_times) == dict(want.return_times), (
            f"{label} replica {i}: return_times"
        )
        assert got.final_time == want.final_time, f"{label} replica {i}: final_time"
        assert got.time_exhausted == want.time_exhausted, (
            f"{label} replica {i}: time_exhausted"
        )
        assert dict(got.final_states) == dict(want.final_states), (
            f"{label} replica {i}: final_states"
        )
        # Dataclass equality as the final word (covers every field at once,
        # and exercises _LazyMapping.__eq__ from the *left* side).
        assert got == want, f"{label} replica {i}: ExecutionResult diverged"


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("sched_name,sched_factory", SCHEDULER_FAMILIES)
def test_batch_bit_identical_per_replica(alg_name, sched_name, sched_factory):
    """The headline sweep (Issue 4 acceptance criterion).

    Every registered algorithm × every scheduler family: a 12-replica
    batch with varying sizes-agnostic seeds must match twelve
    independent reference runs field for field.
    """
    factory = ALGORITHMS[alg_name]
    n = 19
    batch_size = 12
    inputs_list = [random_distinct_ids(n, seed=seed) for seed in range(batch_size)]
    factories = [
        (lambda seed=seed: sched_factory(seed)) for seed in range(batch_size)
    ]

    batch = run_batch(
        [factory() for _ in range(batch_size)], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, f"{alg_name}/{sched_name}")
    # The sweep must exercise real executions, not vacuous ones.
    assert any(r.final_time > 0 for r in oracle)


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_batch_path_topology(alg_name):
    """Degree-1 endpoints (Path) through the batched kernels."""
    factory = ALGORITHMS[alg_name]
    n = 14
    inputs_list = [random_distinct_ids(n, seed=s) for s in range(6)]
    factories = [(lambda s=s: BernoulliScheduler(p=0.5, seed=s)) for s in range(6)]
    batch = run_batch(
        [factory() for _ in range(6)], Path(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Path(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, f"{alg_name}/path")


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_batch_mixed_schedule_types_one_batch(alg_name):
    """One batch may mix schedule classes; streams must not cross-talk."""
    factory = ALGORITHMS[alg_name]
    n = 11
    factories = [
        lambda: SynchronousScheduler(),
        lambda: BernoulliScheduler(p=0.3, seed=7),
        lambda: RoundRobinScheduler(offset=2),
        lambda: UniformSubsetScheduler(seed=3),
        lambda: BernoulliScheduler(p=0.8, seed=9),
    ]
    inputs_list = [random_distinct_ids(n, seed=40 + i) for i in range(len(factories))]
    batch = run_batch(
        [factory() for _ in factories], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, f"{alg_name}/mixed")


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_batch_crash_plans(alg_name):
    """Crashed processes stop mid-batch without disturbing neighbors."""
    factory = ALGORITHMS[alg_name]
    n = 13
    factories = [
        (lambda i=i: CrashPlan(
            BernoulliScheduler(p=0.5, seed=100 + i),
            crash_times={0: 3, 5: 1 + i % 3},
        ))
        for i in range(5)
    ]
    inputs_list = [random_distinct_ids(n, seed=60 + i) for i in range(5)]
    batch = run_batch(
        [factory() for _ in factories], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, f"{alg_name}/crash")


def test_batch_ragged_termination_and_exhaustion():
    """Replicas retire at different lockstep rows; some exhaust max_time.

    A tight ``max_time`` leaves slow (low-p Bernoulli) replicas
    unterminated while synchronous ones finish — the per-replica
    retirement accounting must match the oracle in both regimes.
    """
    for alg_name, factory in sorted(ALGORITHMS.items()):
        n = 9
        factories = [
            lambda: SynchronousScheduler(),
            lambda: BernoulliScheduler(p=0.05, seed=1),
            lambda: BernoulliScheduler(p=0.9, seed=2),
            lambda: FiniteSchedule([list(range(n))] * 4),
        ]
        inputs_list = [random_distinct_ids(n, seed=80 + i) for i in range(len(factories))]
        batch = run_batch(
            [factory() for _ in factories], Cycle(n),
            inputs_list, [make() for make in factories], max_time=7,
        )
        oracle = reference_results(
            factory, Cycle(n), inputs_list, factories, max_time=7
        )
        assert_replicas_identical(batch, oracle, f"{alg_name}/ragged")
        # The shape must actually be ragged: a mix of exhausted and done.
        assert any(r.time_exhausted for r in oracle)
        assert any(not r.time_exhausted for r in oracle)


def test_batch_declines_mixed_algorithm_types():
    """Heterogeneous algorithm types have no common kernel: return None."""
    names = sorted(ALGORITHMS)
    algs = [ALGORITHMS[names[0]](), ALGORITHMS[names[1]]()]
    inputs_list = [random_distinct_ids(7, seed=s) for s in range(2)]
    scheds = [SynchronousScheduler(), SynchronousScheduler()]
    assert run_batch(algs, Cycle(7), inputs_list, scheds) is None


def test_batch_declines_unregistered_algorithm():
    """Subclasses fall outside exact-type dispatch, like the fast path."""
    from repro.core.fast_coloring5 import FastFiveColoring

    class Subclassed(FastFiveColoring):
        pass

    assert run_batch(
        [Subclassed(), Subclassed()], Cycle(7),
        [random_distinct_ids(7, seed=s) for s in range(2)],
        [SynchronousScheduler(), SynchronousScheduler()],
    ) is None


def test_run_single_batch_matches_run_execution():
    """The B=1 wrapper behind ``run_execution(engine="batch")``."""
    for alg_name, factory in sorted(ALGORITHMS.items()):
        ids = random_distinct_ids(10, seed=5)
        got = run_single_batch(
            factory(), Cycle(10), ids, BernoulliScheduler(p=0.4, seed=5),
            max_time=20_000,
        )
        want = run_execution(
            factory(), Cycle(10), ids, BernoulliScheduler(p=0.4, seed=5),
            max_time=20_000, engine="reference",
        )
        assert got == want, f"{alg_name}: single-batch diverged"


def test_engine_batch_falls_back_for_unpackable_runs():
    """``run_execution(engine="batch")`` still answers when batch declines."""
    from repro.core.fast_coloring5 import FastFiveColoring

    class Subclassed(FastFiveColoring):
        pass

    ids = random_distinct_ids(8, seed=2)
    got = run_execution(
        Subclassed(), Cycle(8), ids, SynchronousScheduler(),
        max_time=20_000, engine="batch",
    )
    want = run_execution(
        Subclassed(), Cycle(8), ids, SynchronousScheduler(),
        max_time=20_000, engine="reference",
    )
    assert got == want


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_pure_python_tier_bit_identical(alg_name, monkeypatch):
    """With numpy disabled the pure tier must produce the same results."""
    monkeypatch.setenv(NUMPY_ENV_FLAG, "1")
    assert not numpy_accelerated()
    factory = ALGORITHMS[alg_name]
    n = 11
    factories = [
        lambda: SynchronousScheduler(),
        lambda: BernoulliScheduler(p=0.4, seed=11),
        lambda: RoundRobinScheduler(offset=1),
    ]
    inputs_list = [random_distinct_ids(n, seed=20 + i) for i in range(len(factories))]
    batch = run_batch(
        [factory() for _ in factories], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, f"{alg_name}/pure")


def test_pure_tier_handles_huge_ids(monkeypatch):
    """Ids ≥ 2**53 exceed the packed int64 layout; the pure tier covers
    them (the numpy tier declines to pack and the driver falls back)."""
    monkeypatch.setenv(NUMPY_ENV_FLAG, "1")
    factory = ALGORITHMS[sorted(ALGORITHMS)[0]]
    n = 7
    base = 2**60
    inputs_list = [
        [base + 3 * i + j * 17 for i in range(n)] for j in range(3)
    ]
    factories = [(lambda s=s: BernoulliScheduler(p=0.5, seed=s)) for s in range(3)]
    batch = run_batch(
        [factory() for _ in range(3)], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, "huge-ids/pure")


def test_numpy_tier_huge_ids_fall_back_to_pure():
    """Same huge-id batch with numpy available: results still identical
    (the packed layout is gated on ids < 2**53)."""
    if not numpy_accelerated():
        pytest.skip("numpy unavailable")
    factory = ALGORITHMS[sorted(ALGORITHMS)[0]]
    n = 7
    base = 2**60
    inputs_list = [[base + 5 * i + j * 13 for i in range(n)] for j in range(3)]
    factories = [(lambda s=s: BernoulliScheduler(p=0.5, seed=s)) for s in range(3)]
    batch = run_batch(
        [factory() for _ in range(3)], Cycle(n),
        inputs_list, [make() for make in factories], max_time=20_000,
    )
    oracle = reference_results(factory, Cycle(n), inputs_list, factories)
    assert_replicas_identical(batch, oracle, "huge-ids/numpy-gate")


def test_mtbatch_streams_match_cpython_random():
    """MTBatch banks must replay exactly what ``random.Random(seed)``
    would draw — this is what makes batched Bernoulli schedules
    bit-identical to their per-run counterparts."""
    np = load_numpy()
    if np is None:
        pytest.skip("numpy unavailable")
    seeds = [0, 1, 7, 123456]
    bank = MTBatch(seeds, np=np)
    oracles = [random.Random(s) for s in seeds]
    for _ in range(3):
        for i, oracle in enumerate(oracles):
            draws = bank.take([i], 20)[0]
            assert [float(d) for d in draws] == [oracle.random() for _ in range(20)]
    # Retiring a stream must not disturb the survivors.
    bank.retire(1)
    draws = bank.take([0], 5)[0]
    assert [float(d) for d in draws] == [oracles[0].random() for _ in range(5)]


def test_batched_steps_matches_per_schedule_streams():
    """The merged lockstep row generator equals per-schedule iteration."""
    n = 9
    schedules = [
        BernoulliScheduler(p=0.35, seed=4),
        SynchronousScheduler(),
        RoundRobinScheduler(offset=3),
    ]
    mirrors = [
        BernoulliScheduler(p=0.35, seed=4),
        SynchronousScheduler(),
        RoundRobinScheduler(offset=3),
    ]
    flags = [True] * len(schedules)
    merged = batched_steps(schedules, n, flags)
    singles = [iter(m.steps(n)) for m in mirrors]
    for _ in range(50):
        rows = next(merged)
        for mine, single in zip(rows, singles):
            assert mine is not None
            # Rows may arrive as id sequences or as bool activation
            # masks — both spell the same activation set.
            assert sorted(int(p) for p in _row_to_ids(mine)) == sorted(
                next(single)
            )


def test_lazy_mapping_equality_both_directions():
    """_LazyMapping must compare equal to plain dicts from either side
    (dataclass ``__eq__`` puts it on the left; user code on the right)."""
    lazy = _LazyMapping(lambda: {1: "a", 2: "b"})
    assert lazy == {1: "a", 2: "b"}
    assert {1: "a", 2: "b"} == lazy
    assert lazy != {1: "a"}
    assert {1: "a"} != lazy
    assert len(lazy) == 2 and lazy[1] == "a" and 2 in lazy
    assert sorted(lazy) == [1, 2]
