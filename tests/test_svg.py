"""Tests for SVG rendering."""

import xml.etree.ElementTree as ET

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler
from repro.svg import save_execution_svgs, svg_ring, svg_timeline


def _traced():
    return run_execution(
        FiveColoring(), Cycle(5), [9, 2, 14, 6, 11],
        FiniteSchedule([[0, 2], [1, 3, 4], [0, 1, 2, 3, 4]] * 20),
        record_trace=True,
    )


class TestSvgWellFormed:
    def test_timeline_parses_as_xml(self):
        result = _traced()
        document = svg_timeline(result.trace, 5)
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_ring_parses_as_xml(self):
        result = _traced()
        document = svg_ring([9, 2, 14, 6, 11], result.outputs)
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_pending_nodes_drawn_hollow(self):
        document = svg_ring([1, 2, 3], {0: 1})  # 1, 2 pending
        assert document.count("stroke-dasharray") == 2

    def test_timeline_truncates(self):
        result = _traced()
        short = svg_timeline(result.trace, 5, max_steps=2)
        long = svg_timeline(result.trace, 5, max_steps=100)
        assert len(short) < len(long)


class TestSaveHelper:
    def test_writes_both_files(self, tmp_path):
        result = _traced()
        written = save_execution_svgs(
            result, [9, 2, 14, 6, 11], str(tmp_path / "run"),
        )
        assert len(written) == 2
        for path in written:
            content = open(path).read()
            ET.fromstring(content)

    def test_ring_only_without_trace(self, tmp_path):
        result = run_execution(
            SixColoring(), Cycle(4), [4, 1, 7, 2], SynchronousScheduler(),
        )
        written = save_execution_svgs(
            result, [4, 1, 7, 2], str(tmp_path / "run"),
        )
        assert len(written) == 1
        assert written[0].endswith("_ring.svg")
