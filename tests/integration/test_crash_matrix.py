"""Integration: crash-pattern sweep (experiment E8's test-side twin).

For the exhaustively-verified wait-free algorithms (Algorithm 1 and the
FastSix repair), survivors must terminate and be properly colored for
every crash pattern; for Algorithms 2–3 safety must hold even when the
E13b livelock starves survivors.
"""

import random

import pytest

from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.model.execution import run_execution
from repro.model.faults import CrashPlan
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler


def crash_patterns(n, seed):
    rng = random.Random(seed)
    yield {p: 1 for p in rng.sample(range(n), n // 4)}            # never wake
    yield {p: rng.randint(2, 12) for p in rng.sample(range(n), n // 3)}
    yield {p: 2 for p in range(0, n, 2)}                           # half crash early
    yield {p: 5 for p in range(n - 3, n)}                          # a crashed arc


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize(
    "algorithm_factory,palette",
    [(SixColoring, list(SIX_PALETTE)), (FastSixColoring, list(FAST_SIX_PALETTE))],
)
def test_waitfree_algorithms_survivors_always_finish(seed, algorithm_factory, palette):
    n = 16
    for crash_times in crash_patterns(n, seed):
        for schedule in (SynchronousScheduler(), BernoulliScheduler(p=0.5, seed=seed)):
            plan = CrashPlan(schedule, crash_times=crash_times)
            result = run_execution(
                algorithm_factory(), Cycle(n), list(range(n)), plan,
                max_time=50_000,
            )
            verdict = verify_execution(Cycle(n), result, palette=palette)
            assert verdict.ok
            survivors = set(range(n)) - set(crash_times)
            assert survivors <= result.terminated, (seed, crash_times)


@pytest.mark.parametrize("seed", range(4))
def test_fast_five_safety_under_crashes(seed):
    """Algorithms 2-3: survivors may starve (E13b), never err."""
    n = 16
    for crash_times in crash_patterns(n, seed):
        plan = CrashPlan(SynchronousScheduler(), crash_times=crash_times)
        result = run_execution(
            FastFiveColoring(), Cycle(n), list(range(n)), plan, max_time=3_000,
        )
        verdict = verify_execution(Cycle(n), result, palette=range(5))
        assert verdict.ok, (seed, crash_times, verdict)
