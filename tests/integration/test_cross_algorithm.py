"""Integration: every algorithm × scheduler × input family, verified.

The cross-product safety net: any regression in the engine, a
scheduler, an input generator, or an algorithm shows up here first.
"""

import pytest

from repro.analysis.verify import verify_execution
from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.core.general import GeneralGraphColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from tests.conftest import INPUT_FAMILIES, SCHEDULER_FACTORIES

ALGORITHMS = {
    "alg1": (SixColoring, list(SIX_PALETTE)),
    "alg2": (FiveColoring, list(range(5))),
    "fast5": (FastFiveColoring, list(range(5))),
    "fast6": (FastSixColoring, list(FAST_SIX_PALETTE)),
    "alg4-on-cycle": (GeneralGraphColoring, list(SIX_PALETTE)),
}


@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("inputs_name", sorted(INPUT_FAMILIES))
@pytest.mark.parametrize("n", [3, 6, 11, 24])
def test_cross_product(algorithm_name, inputs_name, n):
    factory, palette = ALGORITHMS[algorithm_name]
    inputs = INPUT_FAMILIES[inputs_name](n)
    for sched_name, sched_factory in SCHEDULER_FACTORIES.items():
        result = run_execution(
            factory(), Cycle(n), inputs, sched_factory(), max_time=100_000,
        )
        assert result.all_terminated, (algorithm_name, inputs_name, sched_name, n)
        verdict = verify_execution(Cycle(n), result, palette=palette)
        assert verdict.ok, (algorithm_name, inputs_name, sched_name, n, verdict)


@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
def test_determinism(algorithm_name):
    """Same (algorithm, inputs, schedule) -> identical results."""
    from repro.schedulers import BernoulliScheduler

    factory, _ = ALGORITHMS[algorithm_name]
    n = 10
    inputs = INPUT_FAMILIES["random"](n)
    first = run_execution(
        factory(), Cycle(n), inputs, BernoulliScheduler(p=0.5, seed=9),
    )
    second = run_execution(
        factory(), Cycle(n), inputs, BernoulliScheduler(p=0.5, seed=9),
    )
    assert first.outputs == second.outputs
    assert first.activations == second.activations
    assert first.return_times == second.return_times
