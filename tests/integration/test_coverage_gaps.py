"""Coverage for the less-traveled public paths."""

import pytest

from repro.analysis.experiments import run_trial
from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import ReproError
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import (
    BurstScheduler,
    ConcatScheduler,
    GeometricRateScheduler,
    InterleaveScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)


class TestSchedulersDriveRealExecutions:
    def test_geometric_rate_execution(self):
        n = 20
        result = run_execution(
            FastFiveColoring(), Cycle(n), list(range(n)),
            GeometricRateScheduler(slow_fraction=0.3, seed=4), max_time=50_000,
        )
        assert result.all_terminated
        assert verify_execution(Cycle(n), result, palette=range(5)).ok

    def test_burst_execution(self):
        n = 9
        result = run_execution(
            SixColoring(), Cycle(n), [5 * i for i in range(n)],
            BurstScheduler(burst=3), max_time=50_000,
        )
        assert result.all_terminated
        assert verify_execution(Cycle(n), result, palette=SIX_PALETTE).ok

    def test_interleave_execution(self):
        n = 8
        schedule = InterleaveScheduler(
            RoundRobinScheduler(horizon=500), SynchronousScheduler(horizon=500),
        )
        result = run_execution(
            FastFiveColoring(), Cycle(n), list(range(n)), schedule,
            max_time=50_000,
        )
        assert result.all_terminated

    def test_concat_with_unbounded_tail(self):
        n = 6
        schedule = ConcatScheduler([
            (RoundRobinScheduler(), 5),
            (SynchronousScheduler(), None),
        ])
        result = run_execution(
            FastFiveColoring(), Cycle(n), list(range(n)), schedule,
            max_time=50_000,
        )
        assert result.all_terminated


class TestTrialEdgeCases:
    def test_improper_inputs_rejected_by_default(self):
        with pytest.raises(ReproError):
            run_trial(
                FastFiveColoring(), Cycle(4), [1, 1, 2, 2],
                SynchronousScheduler(),
            )

    def test_improper_inputs_run_when_disabled(self):
        """With the precondition check off, the engine still runs; the
        verdict honestly reports whatever came out."""
        record = run_trial(
            FastFiveColoring(), Cycle(4), [1, 1, 2, 2],
            SynchronousScheduler(), require_proper_inputs=False,
            max_time=2_000,
        )
        assert record.n == 4  # ran without crashing; verdict is data


class TestShuffledNeighborsEverywhere:
    """No shipped cycle algorithm may depend on neighbor order."""

    @pytest.mark.parametrize("seed", range(3))
    def test_fast_five(self, seed):
        import random

        n = 10
        topo = Cycle(n).with_shuffled_neighbors(random.Random(seed))
        result = run_execution(
            FastFiveColoring(), topo, list(range(n)), SynchronousScheduler(),
            max_time=20_000,
        )
        assert result.all_terminated
        assert verify_execution(topo, result, palette=range(5)).ok
