"""The chaos harness as a test: invariants hold across seeds.

This is the headline check of the chaos layer (and what the CI
``chaos-smoke`` job runs): for several fault-plan seeds, a fault-
injected server under retrying load must terminate every request with
a definite status, serve only reference-engine-identical payloads with
intact digests, and keep pool respawns bounded.  A second run of the
same seed must see the identical fault sequence.
"""

import pytest

from repro.chaos.harness import default_plan, run_service_chaos

SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
def test_service_invariants_hold_under_injected_faults(seed):
    report = run_service_chaos(seed, requests=40, concurrency=4, n=16)
    assert report["violations"] == []
    assert report["ok"] is True
    # Every request got a definite final status, none errored out.
    assert sum(report["statuses"].values()) == report["requests"]
    assert report["outcomes"]["errors"] == 0
    # The plan actually did something: faults fired and were counted.
    assert report["chaos_faults_injected"] > 0
    # Eventually-successful responses were re-verified bit-for-bit
    # against the reference engine (the harness raises violations
    # otherwise; this pins that the check was not vacuous).
    assert report["verified_unique_configs"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_the_same_fault_sequence(seed):
    a, b = default_plan(seed, pool=True), default_plan(seed, pool=True)
    assert a.plan_hash == b.plan_hash
    for site in a.rules:
        assert a.sequence(site, 200) == b.sequence(site, 200)
        # And the scoped worker streams replay too.
        assert (
            a.scoped("worker:1").sequence(site, 200)
            == b.scoped("worker:1").sequence(site, 200)
        )


def test_seeds_are_actually_different():
    flat = {
        seed: tuple(
            tuple(default_plan(seed).sequence(site, 100))
            for site in sorted(default_plan(seed).rules)
        )
        for seed in SEEDS
    }
    assert len(set(flat.values())) == len(SEEDS)


@pytest.mark.slow
def test_pool_invariants_hold_under_worker_faults():
    report = run_service_chaos(
        3, requests=40, concurrency=4, n=16, pool_workers=2
    )
    assert report["violations"] == []
    assert report["ok"] is True
    assert report["pool"] is not None
    # The storm-brake bound the harness asserts internally, restated:
    assert report["pool"]["restarts"] <= 2 + 8
    assert report["outcomes"]["errors"] == 0


@pytest.mark.slow
def test_chaos_cli_exits_zero_on_clean_invariants(capsys):
    from repro.cli import main

    code = main(
        [
            "chaos",
            "--seeds", "0,1",
            "--requests", "30",
            "--n", "16",
            "--json",
        ]
    )
    assert code == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert len(payload["runs"]) == 2
    assert [r["seed"] for r in payload["runs"]] == [0, 1]
