"""Generality: the algorithms beyond the cycle.

The paper states the model "can directly be extended to any network";
the pair-based algorithms (1 and 4) only use neighbor views, so they
run unchanged on paths and arbitrary graphs.  These tests pin that
generality (and that the cycle-specific ones degrade gracefully).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import coloring_violations, verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.general import GeneralGraphColoring
from repro.model.execution import run_execution
from repro.model.topology import GeneralGraph, Path
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)


class TestPaths:
    """Paths: degree <= 2, endpoints have a single neighbor."""

    @pytest.mark.parametrize("n", [2, 3, 5, 12])
    def test_algorithm1_on_paths(self, n):
        inputs = [7 * i + 1 for i in range(n)]
        for factory in (SynchronousScheduler, RoundRobinScheduler,
                        lambda: BernoulliScheduler(p=0.5, seed=n)):
            result = run_execution(
                SixColoring(), Path(n), inputs, factory(), max_time=50_000,
            )
            assert result.all_terminated
            assert verify_execution(Path(n), result, palette=SIX_PALETTE).ok

    def test_endpoint_sees_single_view(self):
        result = run_execution(
            SixColoring(), Path(2), [5, 9], SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.outputs[0] != result.outputs[1]

    def test_algorithm4_on_paths_matches_algorithm1(self):
        n = 8
        inputs = [3 * i for i in range(n)]
        r1 = run_execution(SixColoring(), Path(n), inputs, SynchronousScheduler())
        r4 = run_execution(
            GeneralGraphColoring(), Path(n), inputs, SynchronousScheduler(),
        )
        assert r1.outputs == r4.outputs


class TestRandomGraphsProperty:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_algorithm4_property(self, data):
        """Random graphs, random distinct ids, random schedule prefix:
        Algorithm 4 terminates within palette, properly."""
        n = data.draw(st.integers(3, 10))
        edge_pool = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = data.draw(
            st.lists(st.sampled_from(edge_pool), min_size=1, max_size=len(edge_pool),
                     unique=True)
        )
        topo = GeneralGraph(n, edges)
        ids = data.draw(
            st.lists(st.integers(0, 500), min_size=n, max_size=n, unique=True)
        )
        seed = data.draw(st.integers(0, 1000))
        result = run_execution(
            GeneralGraphColoring(), topo, ids,
            BernoulliScheduler(p=0.6, seed=seed), max_time=50_000,
        )
        assert result.all_terminated
        palette = GeneralGraphColoring.palette(max(topo.max_degree(), 1))
        assert verify_execution(topo, result, palette=palette).ok

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_isolated_vertices_terminate_alone(self, seed):
        """A graph with isolated vertices: they color themselves (0,0)
        immediately; the rest proceed normally."""
        topo = GeneralGraph(5, [(0, 1), (1, 2)])  # 3, 4 isolated
        result = run_execution(
            GeneralGraphColoring(), topo, [9, 4, 11, 2, 7],
            BernoulliScheduler(p=0.5, seed=seed), max_time=20_000,
        )
        assert result.all_terminated
        assert result.outputs[3] == (0, 0)
        assert result.outputs[4] == (0, 0)
        assert not coloring_violations(topo, result.outputs)
