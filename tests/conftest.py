"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.inputs import monotone_ids, random_distinct_ids, zigzag_ids
from repro.model.topology import Cycle
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BlockRoundRobinScheduler,
    RoundRobinScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

#: The scheduler cross-section most correctness tests run against.
#: Each entry is a zero-argument factory so tests get fresh objects.
SCHEDULER_FACTORIES = {
    "synchronous": lambda: SynchronousScheduler(),
    "round-robin": lambda: RoundRobinScheduler(),
    "block-rr": lambda: BlockRoundRobinScheduler(3),
    "alternating": lambda: AlternatingScheduler(),
    "staggered": lambda: StaggeredScheduler(stagger=2),
    "bernoulli-0": lambda: BernoulliScheduler(p=0.4, seed=0),
    "bernoulli-1": lambda: BernoulliScheduler(p=0.7, seed=1),
    "subset-2": lambda: UniformSubsetScheduler(seed=2),
}

#: Identifier families keyed by label.
INPUT_FAMILIES = {
    "random": lambda n: random_distinct_ids(n, seed=42),
    "monotone": monotone_ids,
    "zigzag": zigzag_ids,
}


@pytest.fixture(params=sorted(SCHEDULER_FACTORIES))
def scheduler_name(request):
    """Parametrize a test over the scheduler cross-section."""
    return request.param


@pytest.fixture
def make_scheduler(scheduler_name):
    """Factory for the scheduler selected by ``scheduler_name``."""
    return SCHEDULER_FACTORIES[scheduler_name]


@pytest.fixture(params=[3, 4, 5, 8, 13])
def small_cycle(request):
    """A small cycle topology."""
    return Cycle(request.param)
