"""Tests for ensemble statistics (repro.analysis.ensembles)."""

import pytest

from repro.analysis.ensembles import Distribution, EnsembleReport, run_ensemble
from repro.analysis.inputs import monotone_ids, random_distinct_ids, zigzag_ids
from repro.core.fast_coloring5 import FastFiveColoring
from repro.model.topology import Cycle
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)


class TestDistribution:
    def test_of_sample(self):
        dist = Distribution.of([3, 1, 4, 1, 5, 9, 2, 6])
        assert dist.count == 8
        assert dist.minimum == 1
        assert dist.maximum == 9
        assert dist.p50 == 3
        assert dist.mean == pytest.approx(31 / 8)

    def test_singleton(self):
        dist = Distribution.of([7])
        assert dist.minimum == dist.maximum == dist.p50 == dist.p95 == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.of([])

    def test_str(self):
        assert "p95" in str(Distribution.of([1, 2]))


class TestRunEnsemble:
    def _report(self) -> EnsembleReport:
        n = 12
        return run_ensemble(
            FastFiveColoring,
            Cycle(n),
            [monotone_ids(n), zigzag_ids(n), random_distinct_ids(n, seed=1)],
            [
                ("sync", SynchronousScheduler()),
                ("rr", RoundRobinScheduler()),
                ("bern", BernoulliScheduler(p=0.5, seed=0)),
            ],
            palette=range(5),
        )

    def test_grid_size(self):
        report = self._report()
        assert report.runs == 9

    def test_all_verified(self):
        report = self._report()
        assert report.all_ok
        assert report.terminated_runs == report.proper_runs == 9

    def test_distributions_consistent(self):
        report = self._report()
        assert report.max_activations.maximum >= report.mean_activations.maximum
        assert report.max_activations.minimum >= 1

    def test_colors_within_palette(self):
        report = self._report()
        assert set(report.colors_used) <= set(range(5))
        assert sum(report.colors_used.values()) == 9 * 12

    def test_histogram_totals(self):
        report = self._report()
        assert sum(report.activation_histogram.values()) == 9 * 12

    def test_str_summary(self):
        assert "runs=9" in str(self._report())


class OneShotSchedule(SynchronousScheduler):
    """A deliberately *stateful* schedule: only its first ``steps()``
    call yields anything.

    Violates the ``Schedule`` contract on purpose — any run after the
    first sees an empty schedule and starves every process.  Used to
    pin down that ``run_ensemble`` gives every run a fresh instance.
    """

    def __init__(self):
        super().__init__()
        self.used = False

    def steps(self, n: int):
        if self.used:
            return
        self.used = True
        yield from super().steps(n)


class TestScheduleReuse:
    """Regression: (label, schedule) pairs are replayed across every
    input vector; a stateful schedule must not leak state between runs."""

    N = 8
    INPUTS = [monotone_ids(8), zigzag_ids(8), random_distinct_ids(8, seed=1)]

    def test_stateful_schedule_reset_per_run(self):
        report = run_ensemble(
            FastFiveColoring,
            Cycle(self.N),
            self.INPUTS,
            [("one-shot", OneShotSchedule())],
            palette=range(5),
        )
        # Without per-run re-instantiation only the first run would see
        # any activations at all — runs 2 and 3 would starve.
        assert report.runs == 3
        assert report.terminated_runs == 3
        assert report.all_ok

    def test_schedule_factories_accepted(self):
        report = run_ensemble(
            FastFiveColoring,
            Cycle(self.N),
            self.INPUTS,
            [("fresh", OneShotSchedule)],
            palette=range(5),
        )
        assert report.terminated_runs == 3

    def test_original_schedule_object_untouched(self):
        schedule = OneShotSchedule()
        run_ensemble(
            FastFiveColoring, Cycle(self.N), self.INPUTS,
            [("one-shot", schedule)], palette=range(5),
        )
        assert schedule.used is False

    def test_bad_schedule_entry_rejected(self):
        with pytest.raises(TypeError, match="Schedule"):
            run_ensemble(
                FastFiveColoring, Cycle(self.N), self.INPUTS,
                [("bogus", object())], palette=range(5),
            )


class TestFreshScheduleDedupe:
    """``reusable`` schedules are shared across the grid; everything
    else still gets a private instance (the PR-1 fresh-instance fix)."""

    def test_reusable_schedule_shared(self):
        from repro.analysis.ensembles import _fresh_schedule

        schedule = BernoulliScheduler(p=0.4, seed=1)
        assert _fresh_schedule(schedule) is schedule

    def test_crash_plan_delegates_to_inner(self):
        from repro.analysis.ensembles import _fresh_schedule
        from repro.model.faults import CrashPlan

        plan = CrashPlan(SynchronousScheduler(), crash_times={0: 2})
        assert _fresh_schedule(plan) is plan

    def test_inherited_reusable_not_trusted(self):
        """A subclass may add mutable state its base never had, so
        ``reusable = True`` is honored only when declared on the exact
        class — ``OneShotSchedule`` inherits it yet must be copied."""
        from repro.analysis.ensembles import _fresh_schedule

        schedule = OneShotSchedule()
        fresh = _fresh_schedule(schedule)
        assert fresh is not schedule

    def test_stateful_non_reusable_copied(self):
        from repro.analysis.ensembles import _fresh_schedule
        from repro.model.schedule import Schedule

        class Stateful(Schedule):
            def steps(self, n):
                yield range(n)

        schedule = Stateful()
        assert Stateful.reusable is False
        assert _fresh_schedule(schedule) is not schedule


class TestBatchEngineEnsemble:
    """``engine="batch"`` packs the grid into one lockstep run and must
    reproduce the per-run engines' report exactly."""

    N = 12
    INPUTS = [
        monotone_ids(12), zigzag_ids(12), random_distinct_ids(12, seed=1)
    ]
    SCHEDULES = [
        ("sync", SynchronousScheduler()),
        ("rr", RoundRobinScheduler()),
        ("bern", BernoulliScheduler(p=0.5, seed=0)),
    ]

    def _report(self, engine):
        return run_ensemble(
            FastFiveColoring, Cycle(self.N), self.INPUTS, self.SCHEDULES,
            palette=range(5), engine=engine,
        )

    def test_batch_report_equals_per_run_engines(self):
        reference = self._report("reference")
        fast = self._report("fast")
        batch = self._report("batch")
        assert batch == fast == reference

    def test_batch_report_falls_back_for_unpackable(self):
        """Subclassed algorithms have no batched kernel; the ensemble
        must fall back to per-run execution, not fail or mis-aggregate."""

        class Subclassed(FastFiveColoring):
            pass

        batch = run_ensemble(
            Subclassed, Cycle(self.N), self.INPUTS, self.SCHEDULES,
            palette=range(5), engine="batch",
        )
        fast = run_ensemble(
            Subclassed, Cycle(self.N), self.INPUTS, self.SCHEDULES,
            palette=range(5), engine="fast",
        )
        assert batch == fast
        assert batch.runs == 9 and batch.all_ok
