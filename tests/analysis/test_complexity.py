"""Unit tests for complexity accounting (repro.analysis.complexity)."""

import pytest

from repro.analysis.complexity import (
    fit_against,
    fit_linear,
    fit_logstar,
    lemma_3_9_bound,
    lemma_3_14_bound,
    logstar_budget,
    summarize_activations,
    theorem_3_1_bound,
    theorem_3_11_bound,
)
from repro.core.coin_tossing import log_star


class TestBoundFunctions:
    @pytest.mark.parametrize("n,expected", [(3, 8), (4, 10), (10, 19), (100, 154)])
    def test_theorem_3_1(self, n, expected):
        assert theorem_3_1_bound(n) == expected

    def test_lemma_3_9_extrema(self):
        assert lemma_3_9_bound(0, 5) == 4
        assert lemma_3_9_bound(5, 0) == 4

    def test_lemma_3_9_general(self):
        assert lemma_3_9_bound(2, 10) == min(6, 30, 12) + 4

    def test_lemma_3_14(self):
        assert lemma_3_14_bound(7) == 25

    def test_theorem_3_11(self):
        assert theorem_3_11_bound(10) == 38

    def test_logstar_budget_monotone(self):
        assert logstar_budget(4) <= logstar_budget(4096) <= logstar_budget(2 ** 64)


class TestSummarize:
    def test_summary(self):
        from repro.core.coloring5 import FiveColoring
        from repro.model.execution import run_execution
        from repro.model.topology import Cycle
        from repro.schedulers import SynchronousScheduler

        result = run_execution(
            FiveColoring(), Cycle(6), [3, 8, 1, 9, 2, 7], SynchronousScheduler(),
        )
        summary = summarize_activations(result)
        assert summary.n == 6
        assert summary.terminated == 6
        assert summary.max == result.round_complexity
        assert 0 < summary.mean <= summary.max
        assert "max=" in str(summary)


class TestFits:
    def test_exact_linear(self):
        slope, intercept = fit_against([1, 2, 3, 4], [3, 5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_fit_linear_recovers_linear_data(self):
        ns = [16, 32, 64, 128]
        slope, _ = fit_linear(ns, [3 * n + 8 for n in ns])
        assert slope == pytest.approx(3.0)

    def test_fit_logstar_recovers_logstar_data(self):
        ns = [4, 16, 64, 4096, 2 ** 17]
        slope, intercept = fit_logstar(ns, [7 * log_star(n) + 2 for n in ns])
        assert slope == pytest.approx(7.0)
        assert intercept == pytest.approx(2.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            fit_against([1], [2])
        with pytest.raises(ValueError):
            fit_against([2, 2], [1, 3])
