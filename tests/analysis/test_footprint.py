"""Tests for register-footprint accounting (the §2.1 bits claim)."""

import math

import pytest

from repro.analysis.footprint import FootprintReport, measure_footprint, payload_bits
from repro.analysis.inputs import huge_ids, monotone_ids
from repro.core.fast_coloring5 import FastFiveColoring, FastRegister
from repro.core.coloring5 import FiveColoring
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler
from repro.types import BOTTOM


class TestPayloadBits:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (7, 3), (8, 4), (1023, 10)],
    )
    def test_integers(self, value, expected):
        assert payload_bits(value) == expected

    def test_infinity_is_one_flag_bit(self):
        assert payload_bits(math.inf) == 1

    def test_bottom_free(self):
        assert payload_bits(BOTTOM) == 0

    def test_tuples_sum(self):
        assert payload_bits((7, 1)) == 3 + 1

    def test_named_tuples(self):
        reg = FastRegister(x=1000, r=2, a=0, b=4)
        assert payload_bits(reg) == 10 + 2 + 1 + 3

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_bits({"a": 1})


class TestMeasureFootprint:
    def _run(self, algorithm, ids):
        return run_execution(
            algorithm, Cycle(len(ids)), ids, SynchronousScheduler(),
            record_registers=True,
        )

    def test_logarithmic_in_id_magnitude(self):
        """Footprint tracks O(log max_id): doubling the bit width of
        the identifiers roughly doubles the footprint, independent of n."""
        n = 32
        small = measure_footprint(
            self._run(FastFiveColoring(), huge_ids(n, bits=32, seed=1)).trace, n,
        )
        large = measure_footprint(
            self._run(FastFiveColoring(), huge_ids(n, bits=256, seed=1)).trace, n,
        )
        assert small.max_bits <= 32 + 16
        assert large.max_bits <= 256 + 16
        assert large.max_bits > 4 * small.max_bits

    def test_reduction_shrinks_registers(self):
        """Algorithm 3's identifier reduction shows up as a shrinking
        *typical* register (local maxima keep their ids — Lemma 4.6 —
        so the max footprint stays put)."""
        n = 64
        ids = [10 ** 9 + i for i in range(n)]
        result = self._run(FastFiveColoring(), ids)
        report = measure_footprint(result.trace, n)
        assert report.shrank
        assert report.median_bits_last_write < report.median_bits_first_write
        assert report.shrunk_fraction > 0.5

    def test_static_ids_do_not_shrink(self):
        """Algorithm 2 never rewrites identifiers: footprint constant."""
        n = 16
        result = self._run(FiveColoring(), monotone_ids(n))
        report = measure_footprint(result.trace, n)
        assert report.max_bits_first_write <= report.max_bits + 3

    def test_empty_trace(self):
        from repro.model.trace import Trace

        report = measure_footprint(Trace(), 3)
        assert report.max_bits == 0
        assert report.shrunk_fraction == 0.0
        assert isinstance(report, FootprintReport)
