"""Unit tests for the experiment harness (repro.analysis.experiments)."""

import pytest

from repro.analysis.experiments import (
    TrialRecord,
    format_table,
    run_trial,
    scheduler_suite,
    sweep,
)
from repro.core.coloring5 import FiveColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.analysis.inputs import monotone_ids
from repro.errors import ReproError
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler


class TestRunTrial:
    def test_records_verified_trial(self):
        record = run_trial(
            FiveColoring(), Cycle(6), [5, 2, 9, 1, 7, 3],
            SynchronousScheduler(), palette=range(5), inputs_label="custom6",
        )
        assert record.all_terminated
        assert record.verdict.ok
        assert record.n == 6
        assert record.inputs_label == "custom6"
        assert record.max_activations >= 1

    def test_rejects_improper_inputs(self):
        with pytest.raises(ReproError):
            run_trial(
                FiveColoring(), Cycle(3), [1, 1, 2], SynchronousScheduler(),
            )

    def test_improper_inputs_allowed_when_disabled(self):
        record = run_trial(
            FiveColoring(), Cycle(4), [0, 1, 0, 1], SynchronousScheduler(),
            require_proper_inputs=True,
        )
        assert record.all_terminated  # [0,1,0,1] is proper (not unique)

    def test_as_row_flattens(self):
        record = run_trial(
            FiveColoring(), Cycle(4), [4, 1, 3, 0], SynchronousScheduler(),
            palette=range(5),
        )
        row = record.as_row()
        assert row["n"] == 4
        assert row["proper"] is True


class TestSweep:
    def test_sweep_shapes(self):
        records = sweep(
            FastFiveColoring,
            [4, 8, 16],
            monotone_ids,
            lambda n: SynchronousScheduler(),
            palette=range(5),
            inputs_label="monotone",
        )
        assert [r.n for r in records] == [4, 8, 16]
        assert all(r.verdict.ok and r.all_terminated for r in records)


class TestSchedulerSuite:
    def test_contains_core_adversaries(self):
        suite = scheduler_suite(12)
        assert "synchronous" in suite
        assert "slow-chain" in suite
        assert any(k.startswith("bernoulli") for k in suite)

    def test_all_usable(self):
        for name, schedule in scheduler_suite(6, seeds=(0,)).items():
            record = run_trial(
                FastFiveColoring(), Cycle(6), [9, 4, 11, 2, 8, 5], schedule,
                palette=range(5), inputs_label=name, max_time=50_000,
            )
            assert record.all_terminated, name


class TestFormatTable:
    def test_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
