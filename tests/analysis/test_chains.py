"""Unit tests for monotone-chain analysis (repro.analysis.chains)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chains import (
    chain_profile,
    is_local_extremum,
    is_local_max,
    is_local_min,
    local_maxima,
    local_minima,
    longest_monotone_run,
    monotone_distance_to_max,
    monotone_distance_to_min,
)


class TestExtrema:
    def test_simple_ring(self):
        ids = [5, 1, 9, 3]  # maxima at 0? 5 vs (3,1): yes; 9 vs (1,3): yes
        assert is_local_max(ids, 0)
        assert is_local_max(ids, 2)
        assert is_local_min(ids, 1)
        assert is_local_min(ids, 3)
        assert all(is_local_extremum(ids, i) for i in range(4))

    def test_monotone_ring(self):
        ids = list(range(6))
        assert local_maxima(ids) == [5]
        assert local_minima(ids) == [0]
        assert not is_local_extremum(ids, 3)

    def test_counts_balance(self):
        """A ring always has equally many maxima and minima."""
        for seed in range(10):
            from repro.analysis.inputs import random_distinct_ids

            ids = random_distinct_ids(12, seed=seed)
            assert len(local_maxima(ids)) == len(local_minima(ids)) >= 1


class TestMonotoneDistances:
    def test_monotone_ring_distances(self):
        ids = list(range(8))
        # position i climbs to the max (7) in 7-i steps (going up),
        # except position 0, which is the minimum itself.
        assert monotone_distance_to_max(ids, 3) == 4
        assert monotone_distance_to_max(ids, 7) == 0
        assert monotone_distance_to_min(ids, 3) == 3
        assert monotone_distance_to_min(ids, 0) == 0

    def test_local_min_takes_shorter_ascent(self):
        ids = [0, 5, 9, 4, 8, 2]  # min at 0: ascents 0-5-9 (2) and 0-2-8 (2)
        assert monotone_distance_to_max(ids, 0) == 2

    def test_extremum_distance_zero(self):
        ids = [3, 7, 1, 9, 0, 5]
        for i in local_maxima(ids):
            assert monotone_distance_to_max(ids, i) == 0
        for i in local_minima(ids):
            assert monotone_distance_to_min(ids, i) == 0


class TestLongestRun:
    def test_monotone_is_n(self):
        assert longest_monotone_run(list(range(10))) == 10

    def test_zigzag_is_two(self):
        from repro.analysis.inputs import zigzag_ids

        assert longest_monotone_run(zigzag_ids(10)) == 2

    def test_sawtooth_run_length(self):
        from repro.analysis.inputs import sawtooth_ids

        ids = sawtooth_ids(20, run=5)
        assert 5 <= longest_monotone_run(ids) <= 7

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_run_at_least_two(self, seed):
        from repro.analysis.inputs import random_distinct_ids

        ids = random_distinct_ids(9, seed=seed)
        assert 2 <= longest_monotone_run(ids) <= 9


class TestChainProfile:
    def test_profile_consistency(self):
        ids = list(range(7))
        profile = chain_profile(ids)
        assert profile.n == 7
        assert profile.num_maxima == profile.num_minima == 1
        assert profile.longest_run == 7
        assert profile.distances_to_max == [
            monotone_distance_to_max(ids, i) for i in range(7)
        ]

    def test_alg1_bound_extrema(self):
        profile = chain_profile([1, 5, 2, 9, 0, 4])
        for i in range(6):
            if profile.distances_to_max[i] == 0 or profile.distances_to_min[i] == 0:
                assert profile.alg1_bound(i) == 4

    def test_alg1_bound_formula(self):
        profile = chain_profile(list(range(10)))
        i = 4  # distances 5 (to max) and 4 (to min)
        assert profile.alg1_bound(i) == min(15, 12, 9) + 4

    def test_worst_bounds_dominate(self):
        profile = chain_profile(list(range(12)))
        assert profile.worst_alg1_bound == max(
            profile.alg1_bound(i) for i in range(12)
        )
        assert profile.worst_alg2_bound >= profile.worst_alg1_bound - 8
