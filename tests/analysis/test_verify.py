"""Unit tests for verification predicates (repro.analysis.verify)."""

import pytest

from repro.analysis.verify import (
    assert_palette,
    assert_proper_coloring,
    coloring_violations,
    identifiers_always_proper,
    inputs_properly_color,
    palette_violations,
    published_identifier_violations,
    verify_execution,
)
from repro.errors import ColoringViolation, PaletteViolation
from repro.model.topology import Cycle


class TestColoringViolations:
    def test_clean(self):
        assert not coloring_violations(Cycle(4), {0: 0, 1: 1, 2: 0, 3: 1})

    def test_detects_monochromatic_edge(self):
        bad = coloring_violations(Cycle(4), {0: 1, 1: 1})
        assert bad == [(0, 1)]

    def test_ignores_pending_endpoints(self):
        # only edges inside the terminated set count
        assert not coloring_violations(Cycle(4), {0: 1, 2: 1})

    def test_wraparound_edge(self):
        bad = coloring_violations(Cycle(3), {0: 2, 2: 2})
        assert bad == [(0, 2)]

    def test_assert_raises(self):
        with pytest.raises(ColoringViolation):
            assert_proper_coloring(Cycle(3), {0: 1, 1: 1})


class TestPaletteViolations:
    def test_clean(self):
        assert not palette_violations({0: 2, 1: 4}, range(5))

    def test_detects(self):
        assert palette_violations({0: 5}, range(5)) == {0: 5}

    def test_pairs(self):
        from repro.core.palette import TriangularPalette

        pal = TriangularPalette(2)
        assert not palette_violations({0: (1, 1)}, pal)
        assert palette_violations({0: (2, 1)}, pal)

    def test_assert_raises(self):
        with pytest.raises(PaletteViolation):
            assert_palette({0: 9}, range(5))


class TestInputsProperlyColor:
    def test_unique_ids(self):
        assert inputs_properly_color(Cycle(4), [3, 1, 4, 2])

    def test_adjacent_equal_rejected(self):
        assert not inputs_properly_color(Cycle(3), [1, 1, 2])

    def test_nonadjacent_equal_allowed(self):
        assert inputs_properly_color(Cycle(4), [0, 1, 0, 1])


class TestVerifyExecution:
    def test_verdict_fields(self):
        from repro.core.coloring5 import FiveColoring
        from repro.model.execution import run_execution
        from repro.schedulers import SynchronousScheduler

        result = run_execution(
            FiveColoring(), Cycle(5), [4, 9, 1, 7, 3], SynchronousScheduler(),
        )
        verdict = verify_execution(Cycle(5), result, palette=range(5))
        assert verdict.ok and verdict.all_terminated
        assert verdict.terminated_count == 5
        assert verdict.round_complexity == result.round_complexity

    def test_verdict_without_palette(self):
        from repro.core.coloring6 import SixColoring
        from repro.model.execution import run_execution
        from repro.schedulers import SynchronousScheduler

        result = run_execution(
            SixColoring(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
        )
        verdict = verify_execution(Cycle(3), result)
        assert verdict.palette_ok  # vacuous without a palette


class TestIdentifierInvariant:
    def _trace(self, algorithm):
        from repro.model.execution import run_execution
        from repro.schedulers import BernoulliScheduler

        return run_execution(
            algorithm, Cycle(8), list(range(8)),
            BernoulliScheduler(p=0.5, seed=3), record_registers=True,
        )

    def test_clean_for_paper_algorithm(self):
        from repro.core.fast_coloring5 import FastFiveColoring

        result = self._trace(FastFiveColoring())
        assert identifiers_always_proper(Cycle(8), result.trace)
        assert not published_identifier_violations(Cycle(8), result.trace)

    def test_violation_reports_time_and_edge(self):
        # Construct a fake trace with a collision.
        from repro.core.fast_coloring5 import FastRegister
        from repro.model.trace import StepEvent, Trace
        from repro.types import BOTTOM

        trace = Trace()
        regs = tuple(
            FastRegister(x=7, r=0, a=0, b=0) if p in (0, 1) else BOTTOM
            for p in range(8)
        )
        trace.append(StepEvent(5, frozenset({0, 1}), {}, {}, regs))
        violations = published_identifier_violations(Cycle(8), trace)
        assert violations == [(5, 0, 1, 7)]
