"""Unit tests for identifier generators (repro.analysis.inputs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chains import longest_monotone_run
from repro.analysis.inputs import (
    huge_ids,
    monotone_ids,
    proper_coloring_inputs,
    random_distinct_ids,
    sawtooth_ids,
    zigzag_ids,
)
from repro.analysis.verify import inputs_properly_color
from repro.model.topology import Cycle


def ring_proper(ids):
    return inputs_properly_color(Cycle(len(ids)), ids)


class TestMonotone:
    def test_values(self):
        assert monotone_ids(5) == [0, 1, 2, 3, 4]

    def test_chain_is_n(self):
        assert longest_monotone_run(monotone_ids(20)) == 20


class TestZigzag:
    @pytest.mark.parametrize("n", [3, 4, 5, 10, 17, 100])
    def test_proper_and_distinct(self, n):
        ids = zigzag_ids(n)
        assert len(set(ids)) == n
        assert ring_proper(ids)

    @pytest.mark.parametrize("n", [4, 10, 64])
    def test_even_chain_length_two(self, n):
        assert longest_monotone_run(zigzag_ids(n)) == 2

    def test_odd_chain_at_most_three(self):
        assert longest_monotone_run(zigzag_ids(11)) <= 3


class TestSawtooth:
    @pytest.mark.parametrize("n,run", [(10, 3), (20, 5), (21, 4), (50, 10)])
    def test_proper_and_distinct(self, n, run):
        ids = sawtooth_ids(n, run)
        assert len(ids) == n
        assert len(set(ids)) == n
        assert ring_proper(ids)

    @pytest.mark.parametrize("run", [2, 4, 8])
    def test_controls_chain_length(self, run):
        ids = sawtooth_ids(64, run)
        assert run <= longest_monotone_run(ids) <= run + 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            sawtooth_ids(10, 1)


class TestRandomDistinct:
    def test_distinct_and_in_space(self):
        ids = random_distinct_ids(50, seed=1)
        assert len(set(ids)) == 50
        assert all(0 <= x < 50 ** 3 for x in ids)

    def test_seeded(self):
        assert random_distinct_ids(10, seed=5) == random_distinct_ids(10, seed=5)
        assert random_distinct_ids(10, seed=5) != random_distinct_ids(10, seed=6)

    def test_custom_space(self):
        ids = random_distinct_ids(4, seed=0, id_space=10)
        assert all(0 <= x < 10 for x in ids)

    def test_space_too_small(self):
        with pytest.raises(ValueError):
            random_distinct_ids(10, id_space=5)


class TestHugeIds:
    def test_bit_width(self):
        ids = huge_ids(8, bits=128, seed=0)
        assert len(set(ids)) == 8
        assert all(x.bit_length() == 128 for x in ids)

    def test_minimum_bits(self):
        with pytest.raises(ValueError):
            huge_ids(3, bits=4)


class TestProperColoringInputs:
    @pytest.mark.parametrize("n", [4, 5, 9, 16])
    def test_proper(self, n):
        assert ring_proper(proper_coloring_inputs(n))

    def test_small_value_range(self):
        assert set(proper_coloring_inputs(8)) == {0, 1}
        assert set(proper_coloring_inputs(9)) == {0, 1, 2}

    def test_odd_needs_three_colors(self):
        with pytest.raises(ValueError):
            proper_coloring_inputs(9, k=2)

    @given(n=st.integers(3, 60))
    @settings(max_examples=30, deadline=None)
    def test_property_always_proper(self, n):
        assert ring_proper(proper_coloring_inputs(n))
