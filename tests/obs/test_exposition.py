"""Exposition-format edge cases: label escaping and snapshot stability.

The Prometheus text format requires ``\\``, ``"`` and newline inside a
label value to be escaped (backslash first — escaping in the other
order would corrupt pre-existing backslashes), and the JSON artifact's
``deterministic_snapshot`` must be insensitive to the *order* in which
series were touched, since the differential harness compares artifacts
produced by engines that interleave their updates differently.
"""

from repro.obs.exposition import render_json, render_prometheus
from repro.obs.metrics import MetricsRegistry


def line_for(text, needle):
    matches = [
        line
        for line in text.splitlines()
        if needle in line and not line.startswith("#")
    ]
    assert matches, f"no exposition sample line contains {needle!r}"
    return matches[0]


class TestLabelEscaping:
    def test_backslash_is_escaped(self):
        registry = MetricsRegistry()
        registry.inc("paths_total", path="C:\\temp\\run")
        line = line_for(render_prometheus(registry), "paths_total")
        assert 'path="C:\\\\temp\\\\run"' in line

    def test_double_quote_is_escaped(self):
        registry = MetricsRegistry()
        registry.inc("queries_total", q='say "hi"')
        line = line_for(render_prometheus(registry), "queries_total")
        assert 'q="say \\"hi\\""' in line

    def test_newline_is_escaped(self):
        registry = MetricsRegistry()
        registry.inc("notes_total", note="line1\nline2")
        text = render_prometheus(registry)
        line = line_for(text, "notes_total")
        assert 'note="line1\\nline2"' in line
        # The rendered document must stay one-sample-per-line: a raw
        # newline inside a label value would split the series line.
        sample_lines = [
            ln for ln in text.splitlines() if ln.startswith("notes_total")
        ]
        assert len(sample_lines) == 1

    def test_backslash_escaped_before_quote_and_newline(self):
        # A value that already contains the two-character sequences
        # \" and \n: escaping must not double-process its own output.
        registry = MetricsRegistry()
        registry.inc("tricky_total", v='a\\"b\\nc')
        line = line_for(render_prometheus(registry), "tricky_total")
        assert 'v="a\\\\\\"b\\\\nc"' in line

    def test_all_specials_combined(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1, label='\\ then " then \n end')
        line = line_for(render_prometheus(registry), "g{")
        assert 'label="\\\\ then \\" then \\n end"' in line
        # Escaped value must survive a reverse mapping back to the
        # original (the decode Prometheus scrapers apply).
        inner = line.split('label="', 1)[1].rsplit('"', 1)[0]
        decoded = (
            inner.replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        assert decoded == '\\ then " then \n end'


class TestDeterministicSnapshotStability:
    def interleave_a(self, registry):
        registry.inc("runs_total", engine="fast")
        registry.inc("steps_total", engine="fast", phase="scan")
        registry.inc("runs_total", engine="reference")
        registry.inc("steps_total", 2, engine="fast", phase="scan")
        registry.inc("runs_total", engine="fast")

    def interleave_b(self, registry):
        # Same terminal values, different update order and grouping.
        registry.inc("steps_total", 3, engine="fast", phase="scan")
        registry.inc("runs_total", engine="reference")
        registry.inc("runs_total", 2, engine="fast")

    def test_update_order_is_invisible(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self.interleave_a(a)
        self.interleave_b(b)
        assert a.deterministic_snapshot() == b.deterministic_snapshot()

    def test_rendered_artifacts_are_byte_identical(self):
        import json

        a, b = MetricsRegistry(), MetricsRegistry()
        self.interleave_a(a)
        self.interleave_b(b)
        dump_a = json.dumps(
            render_json(a.deterministic_snapshot()), sort_keys=True
        )
        dump_b = json.dumps(
            render_json(b.deterministic_snapshot()), sort_keys=True
        )
        assert dump_a == dump_b
        assert render_prometheus(a.deterministic_snapshot()) == (
            render_prometheus(b.deterministic_snapshot())
        )

    def test_nondeterministic_metrics_are_dropped(self):
        registry = MetricsRegistry()
        registry.inc("runs_total")
        registry.set_gauge("campaign_queue_depth", 7, backend="pool")
        registry.observe("engine_run_seconds", 0.5, engine="fast")
        snapshot = registry.deterministic_snapshot()
        assert "runs_total" in snapshot
        assert "campaign_queue_depth" not in snapshot
        assert "engine_run_seconds" not in snapshot

    def test_ignore_labels_merges_engines(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", engine="fast")
        snapshot = registry.deterministic_snapshot(ignore_labels=("engine",))
        (sample,) = snapshot["runs_total"]["samples"]
        assert sample["labels"] == {}
