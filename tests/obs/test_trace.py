"""Unit tests of the tracing layer: contexts, recorder, hooks, exporters.

The end-to-end propagation paths (HTTP header → coalescer → pool
worker) live in ``tests/service/test_trace_e2e.py``; this file pins
down the building blocks in isolation — the header codec's strictness,
the ring bound, parent/child linkage of nested spans, remote-span
merging, and the two export formats.
"""

import json

import pytest

from repro.obs.trace import (
    TRACE_HEADER,
    FlightRecorder,
    SpanRecord,
    TraceContext,
    active_recorder,
    current_context,
    deterministic_context,
    is_recording,
    record_complete,
    record_event,
    record_remote_spans,
    record_timed,
    render_chrome_json,
    render_jsonl,
    start_span,
    to_chrome_trace,
    tracing,
    use_context,
    write_trace_artifact,
)


class TestTraceContext:
    def test_new_root_ids_are_well_formed(self):
        ctx = TraceContext.new_root()
        assert len(ctx.trace_id) == 32
        assert int(ctx.trace_id, 16) >= 0
        assert ctx.span_id == ""
        assert ctx.parent_id is None
        assert ctx.sampled

    def test_child_keeps_trace_and_links_parent(self):
        root = TraceContext.new_root()
        first = root.child()
        second = first.child()
        assert first.trace_id == root.trace_id == second.trace_id
        assert first.parent_id is None  # root had no span yet
        assert second.parent_id == first.span_id
        assert first.span_id != second.span_id

    def test_header_roundtrip(self):
        ctx = TraceContext.new_root().child()
        parsed = TraceContext.from_header(ctx.to_header())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled

    def test_unsampled_flag_roundtrip(self):
        ctx = TraceContext.new_root(sampled=False).child()
        header = ctx.to_header()
        assert header.endswith("-00")
        parsed = TraceContext.from_header(header)
        assert parsed is not None and not parsed.sampled

    def test_header_is_case_insensitive(self):
        ctx = TraceContext.new_root().child()
        parsed = TraceContext.from_header(ctx.to_header().upper())
        assert parsed is not None and parsed.trace_id == ctx.trace_id

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "not-a-trace",
            "xyz",
            "00" * 16,  # no separators
            f"{'0' * 31}-{'1' * 16}-01",  # short trace id
            f"{'0' * 32}-{'1' * 15}-01",  # short span id
            f"{'0' * 32}-{'1' * 16}-0g",  # non-hex flags
            f"{'g' * 32}-{'1' * 16}-01",  # non-hex trace id
            f"{'0' * 32}-{'1' * 16}",  # missing flags
            f"{'0' * 32}-{'1' * 16}-01-extra",
        ],
    )
    def test_malformed_headers_parse_to_none(self, bad):
        assert TraceContext.from_header(bad) is None

    def test_dict_roundtrip(self):
        ctx = TraceContext.new_root().child().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_header_name_is_stable(self):
        # The wire contract of the service layer; changing it breaks
        # deployed clients.
        assert TRACE_HEADER == "X-Repro-Trace-Id"


class TestDeterministicContext:
    def test_same_key_same_ids(self):
        a = deterministic_context("3f2a9bc04d17e658")
        b = deterministic_context("3f2a9bc04d17e658")
        assert a == b
        assert len(a.trace_id) == 32 and len(a.span_id) == 16

    def test_different_keys_differ(self):
        a = deterministic_context("3f2a9bc04d17e658")
        b = deterministic_context("3f2a9bc04d17e659")
        assert a.trace_id != b.trace_id

    def test_degenerate_keys_still_yield_valid_ids(self):
        for key in ("", "zzz", "A"):
            ctx = deterministic_context(key)
            assert len(ctx.trace_id) == 32
            assert len(ctx.span_id) == 16


class TestFlightRecorder:
    def span(self, i):
        return SpanRecord(
            name=f"s{i}", trace_id="t", span_id=str(i),
            parent_id=None, start=float(i), duration=0.1,
        )

    def test_ring_bound_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record(self.span(i))
        names = [s.name for s in recorder.snapshot()]
        assert names == ["s2", "s3", "s4"]
        assert recorder.recorded == 5
        assert recorder.dropped == 2
        assert recorder.stats() == {
            "capacity": 3, "spans": 3, "recorded": 5, "dropped": 2,
        }

    def test_clear_resets_counters(self):
        recorder = FlightRecorder(capacity=2)
        recorder.extend(self.span(i) for i in range(4))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.recorded == 0 and recorder.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSpanHooks:
    def test_disabled_hooks_are_noops(self):
        assert active_recorder() is None
        assert not is_recording()
        span = start_span("nothing", attr=1)
        with span as s:
            s.set_attribute("still", "nothing")
        record_timed("nothing", 0.0, 1.0)
        record_event("nothing")
        assert active_recorder() is None

    def test_no_context_means_no_recording(self):
        with tracing() as recorder:
            assert current_context() is None
            assert not is_recording()
            with start_span("orphan"):
                pass
            record_timed("orphan", 0.0, 1.0)
        assert recorder.snapshot() == []

    def test_nested_spans_link_parents(self):
        with tracing() as recorder:
            with use_context(TraceContext.new_root()):
                with start_span("outer", layer=1) as outer:
                    with start_span("inner") as inner:
                        pass
        spans = {s.name: s for s in recorder.snapshot()}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"].parent_id == outer.context.span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].attributes == {"layer": 1}
        assert inner.context.parent_id == outer.context.span_id

    def test_record_timed_leaf_parents_under_current_span(self):
        with tracing() as recorder:
            with use_context(TraceContext.new_root()):
                with start_span("parent") as parent:
                    record_timed("leaf", 12.0, 0.25, {"k": "v"})
        leaf = next(s for s in recorder.snapshot() if s.name == "leaf")
        assert leaf.parent_id == parent.context.span_id
        assert leaf.start == 12.0 and leaf.duration == 0.25
        assert leaf.attributes == {"k": "v"}

    def test_exception_marks_error_attribute(self):
        with tracing() as recorder:
            with use_context(TraceContext.new_root()):
                with pytest.raises(RuntimeError):
                    with start_span("doomed"):
                        raise RuntimeError("boom")
        (span,) = recorder.snapshot()
        assert span.attributes["error"] == "RuntimeError"

    def test_unsampled_context_records_nothing(self):
        with tracing() as recorder:
            with use_context(TraceContext.new_root(sampled=False)):
                assert not is_recording()
                with start_span("invisible"):
                    record_timed("invisible", 0.0, 1.0)
                    record_event("invisible")
        assert recorder.snapshot() == []

    def test_use_context_restores_previous(self):
        a = TraceContext.new_root()
        b = TraceContext.new_root()
        with use_context(a):
            with use_context(b):
                assert current_context() is b
            assert current_context() is a
        assert current_context() is None

    def test_record_complete_uses_identity_verbatim(self):
        root = deterministic_context("abcdef0123456789")
        with tracing() as recorder:
            record_complete(
                "campaign.task", root, 5.0, 2.0, status="ok"
            )
        (span,) = recorder.snapshot()
        assert span.span_id == root.span_id
        assert span.trace_id == root.trace_id
        assert span.parent_id is None
        assert span.attributes == {"status": "ok"}

    def test_record_remote_spans_merges_and_skips_malformed(self):
        good = SpanRecord(
            name="pool.task", trace_id="t" * 32, span_id="s" * 16,
            parent_id="p" * 16, start=1.0, duration=0.5, pid=999,
        ).to_dict()
        with tracing() as recorder:
            kept = record_remote_spans(
                [good, {"name": "missing-fields"}, "not-a-dict"]
            )
        assert kept == 1
        (span,) = recorder.snapshot()
        assert span.name == "pool.task" and span.pid == 999
        assert span.parent_id == "p" * 16

    def test_record_remote_spans_disabled_returns_zero(self):
        assert record_remote_spans([{"name": "x"}]) == 0

    def test_tracing_restores_previous_recorder(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        assert active_recorder() is None


class TestExporters:
    def recorded(self):
        with tracing() as recorder:
            with use_context(TraceContext.new_root()):
                with start_span("request", route="/v1/color"):
                    with start_span("engine_run"):
                        pass
        return recorder.snapshot()

    def test_chrome_trace_shape(self):
        spans = self.recorded()
        doc = to_chrome_trace(spans, metadata={"source": "test"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"source": "test"}
        assert len(doc["traceEvents"]) == 2
        for event, span in zip(doc["traceEvents"], spans):
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["name"] == span.name
            assert event["ts"] == span.start * 1e6
            assert event["dur"] == span.duration * 1e6
            assert event["args"]["trace_id"] == span.trace_id
            assert event["args"]["span_id"] == span.span_id
            assert event["args"]["parent_id"] == span.parent_id
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_render_chrome_json_parses(self):
        doc = json.loads(render_chrome_json(self.recorded()))
        assert {e["name"] for e in doc["traceEvents"]} == {
            "request", "engine_run",
        }

    def test_render_jsonl_roundtrips(self):
        spans = self.recorded()
        lines = render_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        parsed = [SpanRecord.from_dict(json.loads(line)) for line in lines]
        assert [p.span_id for p in parsed] == [s.span_id for s in spans]

    def test_write_trace_artifact_both_formats(self, tmp_path):
        spans = self.recorded()
        chrome = write_trace_artifact(tmp_path / "t.json", spans)
        jsonl = write_trace_artifact(
            tmp_path / "t.jsonl", spans, fmt="jsonl"
        )
        assert json.loads(chrome.read_text())["traceEvents"]
        assert len(jsonl.read_text().splitlines()) == len(spans)
        with pytest.raises(ValueError):
            write_trace_artifact(tmp_path / "t.x", spans, fmt="protobuf")

    def test_empty_exports(self):
        assert json.loads(render_chrome_json([]))["traceEvents"] == []
        assert render_jsonl([]) == ""
