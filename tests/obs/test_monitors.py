"""Unit tests for repro.obs.monitors (bound monitors)."""

import pytest

from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.errors import (
    ColoringViolation,
    PaletteViolation,
    WaitFreedomViolation,
)
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.obs.metrics import collecting
from repro.obs.monitors import (
    BOUND_CATALOG,
    ActivationBudgetMonitor,
    BoundMonitor,
    PaletteGaugeMonitor,
    ProperColoringMonitor,
    budget_for,
    default_monitors,
)
from repro.campaign.registry import ALGORITHMS
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    SynchronousScheduler,
)


def run_monitored(alg_name, n, schedule, monitors, *, engine="fast",
                  inputs=None, max_time=100_000):
    return run_execution(
        ALGORITHMS[alg_name](), Cycle(n),
        inputs if inputs is not None else random_distinct_ids(n, seed=0),
        schedule, engine=engine, monitors=monitors, max_time=max_time,
    )


class TestActivationBudgetMonitor:
    def test_paper_bound_holds_on_alg1(self):
        n = 24
        monitor = ActivationBudgetMonitor(theorem_3_1_bound)
        run_monitored("alg1", n, RoundRobinScheduler(), [monitor])
        assert monitor.ok
        assert monitor.max_observed <= theorem_3_1_bound(n)

    def test_tightened_budget_flags_with_step_context(self):
        """A deliberately too-small budget proves detection fires, and
        the violation carries step-level context (acceptance criterion)."""
        n = 16
        monitor = ActivationBudgetMonitor(1)
        result = run_monitored(
            "alg1", n, SynchronousScheduler(), [monitor],
            inputs=monotone_ids(n),
        )
        assert not monitor.ok
        v = monitor.violations[0]
        assert v.monitor == monitor.name
        assert v.observed == 2 and v.budget == 1
        assert v.time >= 1 and v.process in range(n)
        assert result.activations[v.process] >= v.observed
        assert str(v.process) in v.message and f"t={v.time}" in v.message
        # Each process is flagged at most once (first violating step).
        assert len({w.process for w in monitor.violations}) == len(
            monitor.violations
        )

    def test_strict_mode_raises(self):
        monitor = ActivationBudgetMonitor(1, strict=True)
        with pytest.raises(WaitFreedomViolation):
            run_monitored(
                "alg1", 12, SynchronousScheduler(), [monitor],
                inputs=monotone_ids(12),
            )

    def test_per_process_mapping_budget(self):
        n = 8
        monitor = ActivationBudgetMonitor({p: 1 for p in range(1, n)})
        run_monitored(
            "alg1", n, SynchronousScheduler(), [monitor],
            inputs=monotone_ids(n),
        )
        # Process 0 has no budget entry, so it is never flagged.
        assert all(v.process != 0 for v in monitor.violations)
        assert not monitor.ok

    def test_returned_process_not_flagged(self):
        """Returning at exactly the budget is within the bound."""
        n = 12
        budget = theorem_3_1_bound(n)
        monitor = ActivationBudgetMonitor(budget)
        result = run_monitored("alg1", n, SynchronousScheduler(), [monitor])
        assert result.all_terminated
        assert monitor.ok

    def test_report_and_margin_gauge(self):
        n = 16
        monitor = ActivationBudgetMonitor(theorem_3_1_bound, name="t3.1")
        with collecting() as registry:
            run_monitored("alg1", n, RoundRobinScheduler(), [monitor])
        report = monitor.report()
        assert report["monitor"] == "t3.1"
        assert report["ok"] is True
        assert report["max_observed"] == monitor.max_observed
        margin = registry.value("bound_margin", monitor="t3.1")
        assert margin == theorem_3_1_bound(n) - monitor.max_observed
        assert registry.value("bound_violations_total", monitor="t3.1") is None

    def test_violations_counter_increments(self):
        with collecting() as registry:
            monitor = ActivationBudgetMonitor(1)
            run_monitored(
                "alg1", 8, SynchronousScheduler(), [monitor],
                inputs=monotone_ids(8),
            )
        assert registry.value(
            "bound_violations_total", monitor=monitor.name
        ) == len(monitor.violations)


class TestPaletteMonitor:
    def test_in_palette_run_is_clean(self):
        from repro.campaign.registry import resolve_palette

        palette = resolve_palette("alg1")
        monitor = PaletteGaugeMonitor(palette)
        run_monitored("alg1", 10, SynchronousScheduler(), [monitor])
        assert monitor.ok
        assert monitor.colors <= set(palette)
        assert monitor.report()["palette_size"] == len(monitor.colors)

    def test_out_of_palette_flagged(self):
        monitor = PaletteGaugeMonitor(palette=[(0, 0)])
        result = run_monitored("alg1", 10, SynchronousScheduler(), [monitor])
        assert not monitor.ok
        assert any(v.observed in result.outputs.values()
                   for v in monitor.violations)

    def test_strict_mode_raises(self):
        with pytest.raises(PaletteViolation):
            run_monitored(
                "alg1", 10, SynchronousScheduler(),
                [PaletteGaugeMonitor(palette=[(0, 0)], strict=True)],
            )

    def test_palette_size_gauge(self):
        with collecting() as registry:
            monitor = PaletteGaugeMonitor()
            run_monitored("alg1", 12, SynchronousScheduler(), [monitor])
        assert registry.value(
            "palette_size", monitor=monitor.name
        ) == len(monitor.colors)


class TestProperColoringMonitor:
    def test_clean_on_correct_algorithm(self):
        monitor = ProperColoringMonitor()
        run_monitored("fast5", 14, BernoulliScheduler(p=0.4, seed=2),
                      [monitor])
        assert monitor.ok

    def test_flags_monochromatic_edge(self):
        from repro.core.algorithm import Algorithm, StepOutcome

        class ConstantColor(Algorithm):
            name = "constant"

            def initial_state(self, x_input):
                return x_input

            def register_value(self, state):
                return state

            def step(self, state, views):
                return StepOutcome.ret(state, 0)  # everyone returns 0

        monitor = ProperColoringMonitor()
        run_execution(
            ConstantColor(), Cycle(5), [1, 2, 3, 4, 5],
            SynchronousScheduler(), monitors=[monitor],
        )
        assert not monitor.ok
        v = monitor.violations[0]
        assert v.observed == 0 and "monochromatic" in v.message

        with pytest.raises(ColoringViolation):
            run_execution(
                ConstantColor(), Cycle(5), [1, 2, 3, 4, 5],
                SynchronousScheduler(),
                monitors=[ProperColoringMonitor(strict=True)],
            )


class TestCatalog:
    def test_catalog_covers_registered_algorithms(self):
        assert set(BOUND_CATALOG) <= set(ALGORITHMS)
        for name in ("alg1", "alg2", "fast5", "fast6"):
            assert name in BOUND_CATALOG

    def test_budget_for_alg1_matches_theorem(self):
        label, budget = budget_for("alg1", 64)
        assert label == "theorem-3.1"
        assert budget == 3 * 64 // 2 + 4

    def test_budget_scale_tightens(self):
        _, full = budget_for("alg1", 64)
        _, half = budget_for("alg1", 64, scale=0.5)
        assert half == full // 2

    def test_budget_for_unknown_raises(self):
        with pytest.raises(KeyError):
            budget_for("nope", 8)

    @pytest.mark.parametrize("alg_name", sorted(BOUND_CATALOG))
    def test_default_monitors_clean_on_shipped_algorithms(self, alg_name):
        n = 16
        monitors = default_monitors(alg_name, n)
        kinds = {type(m) for m in monitors}
        assert ActivationBudgetMonitor in kinds
        assert PaletteGaugeMonitor in kinds
        assert ProperColoringMonitor in kinds
        result = run_monitored(
            alg_name, n, BernoulliScheduler(p=0.5, seed=1), monitors
        )
        assert result.all_terminated
        assert all(m.ok for m in monitors), [m.report() for m in monitors]


class TestEngineNeutrality:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_same_verdicts_on_both_engines(self, engine):
        n = 12
        monitors = default_monitors("alg1", n)
        run_monitored(
            "alg1", n, SlowChainScheduler(slow=[0], slowdown=5),
            monitors, engine=engine,
        )
        assert all(m.ok for m in monitors)

    def test_monitored_fast_run_falls_back_to_generic(self):
        """Kernels cannot drive monitors, so a monitored fast run must
        still produce correct verdicts (via the generic path)."""
        from repro.model.fastpath import FastExecutor

        n = 10
        executor = FastExecutor(
            Cycle(n), ALGORITHMS["alg1"](), monotone_ids(n)
        )
        assert executor._kernel is not None  # kernel exists...
        monitor = ActivationBudgetMonitor(1)
        executor.run(SynchronousScheduler(), monitors=[monitor])
        assert not monitor.ok  # ...but the monitor still saw every step

    def test_base_monitor_hooks_are_noops(self):
        monitor = BoundMonitor()
        run_monitored("alg1", 6, SynchronousScheduler(), [monitor])
        assert monitor.ok
