"""Integration tests: instrumentation wired through engines and campaigns.

Covers the observability-PR acceptance criteria that span layers:

* both engines emit the *same* metric names with bit-identical
  deterministic values on equal workloads;
* the Theorem 3.1 bound monitor confirms, live, that every Algorithm 1
  process on ``C_n`` returns within ``⌊3n/2⌋ + 4`` activations under
  synchronous and adversarial schedules for several ``n``;
* ``max_time`` exhaustion is diagnosable (``TimeExhaustedError`` with
  partial state) on both engines;
* campaigns report task/retry/journal metrics and per-shard
  percentiles into ``CampaignSummary``.
"""

import pytest

from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.campaign.registry import ALGORITHMS
from repro.errors import TimeExhaustedError
from repro.model.execution import run_execution, time_exhausted_error
from repro.model.topology import Cycle
from repro.obs.metrics import collecting
from repro.obs.monitors import ActivationBudgetMonitor, default_monitors
from repro.schedulers import (
    BernoulliScheduler,
    LateWakeupScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

ENGINE_METRICS = [
    "engine_runs_total",
    "engine_steps_total",
    "engine_activations_total",
    "engine_returns_total",
    "engine_time_exhausted_total",
    "engine_last_round_complexity",
]


class TestCrossEngineMetricEquality:
    @pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
    def test_engines_emit_identical_deterministic_metrics(self, alg_name):
        """Metric values are a pure function of the (bit-identical)
        results, so the two engines' emissions must diff clean."""
        snapshots = {}
        for engine in ("reference", "fast"):
            with collecting() as registry:
                for seed in range(5):
                    n = 6 + seed
                    run_execution(
                        ALGORITHMS[alg_name](), Cycle(n),
                        random_distinct_ids(n, seed=seed),
                        BernoulliScheduler(p=0.4, seed=seed),
                        engine=engine, max_time=20_000,
                    )
            snapshots[engine] = registry.deterministic_snapshot(
                ignore_labels=("engine",)
            )
        assert snapshots["reference"] == snapshots["fast"]
        for name in ENGINE_METRICS:
            assert name in snapshots["fast"], f"{name} never emitted"

    def test_both_engines_emit_same_metric_names(self):
        names = {}
        for engine in ("reference", "fast"):
            with collecting() as registry:
                run_execution(
                    ALGORITHMS["fast5"](), Cycle(8),
                    random_distinct_ids(8, seed=0),
                    SynchronousScheduler(), engine=engine,
                )
            names[engine] = {
                n for n in registry.names()
                if not n.endswith("_seconds")
                and n != "engine_kernel_builds_total"
            }
        assert names["reference"] == names["fast"]

    def test_disabled_collection_emits_nothing(self):
        with collecting() as registry:
            pass  # enabled but unused
        run_execution(
            ALGORITHMS["fast5"](), Cycle(6), random_distinct_ids(6, seed=0),
            SynchronousScheduler(),
        )
        assert registry.names() == []


class TestTheorem31LiveBound:
    """The headline acceptance check: Algorithm 1 on C_n stays within
    ``⌊3n/2⌋ + 4`` activations per process, confirmed *live*."""

    SCHEDULES = [
        ("sync", lambda seed: SynchronousScheduler()),
        ("round-robin", lambda seed: RoundRobinScheduler()),
        ("bernoulli", lambda seed: BernoulliScheduler(p=0.35, seed=seed)),
        ("uniform-subset", lambda seed: UniformSubsetScheduler(seed=seed)),
        ("slow-chain", lambda seed: SlowChainScheduler(slow=[0], slowdown=7)),
        ("late-wakeup", lambda seed: LateWakeupScheduler(
            sleepers=[1], wake_time=30)),
    ]

    @pytest.mark.parametrize("n", [8, 16, 33, 64])
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_zero_violations_across_schedules(self, n, engine):
        for name, factory in self.SCHEDULES:
            for seed in range(3):
                monitors = default_monitors("alg1", n)
                result = run_execution(
                    ALGORITHMS["alg1"](), Cycle(n),
                    random_distinct_ids(n, seed=seed),
                    factory(seed), engine=engine, monitors=monitors,
                    max_time=200_000,
                )
                assert result.all_terminated, (name, n, seed)
                assert all(m.ok for m in monitors), (
                    name, n, seed, [m.report() for m in monitors]
                )
                assert result.round_complexity <= theorem_3_1_bound(n)

    def test_monotone_worst_case_within_bound(self):
        """Monotone identifiers maximize chain propagation — the
        paper's worst case still sits inside the Theorem 3.1 budget."""
        for n in (16, 48):
            monitor = ActivationBudgetMonitor(theorem_3_1_bound)
            result = run_execution(
                ALGORITHMS["alg1"](), Cycle(n), monotone_ids(n),
                RoundRobinScheduler(), monitors=[monitor],
            )
            assert result.all_terminated
            assert monitor.ok
            assert monitor.max_observed <= theorem_3_1_bound(n)


class TestTimeExhaustedDiagnostics:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_raise_on_exhaustion_carries_partial_state(self, engine):
        n = 12
        with pytest.raises(TimeExhaustedError) as excinfo:
            run_execution(
                ALGORITHMS["alg1"](), Cycle(n), monotone_ids(n),
                SynchronousScheduler(), engine=engine,
                max_time=2, raise_on_exhaustion=True,
            )
        err = excinfo.value
        assert err.final_time == 2
        assert err.pending == sorted(err.pending) and err.pending
        assert set(err.activations) == set(range(n))
        assert err.partial_result is not None
        assert err.partial_result.time_exhausted
        assert err.partial_result.final_time == 2
        assert "unreturned" in str(err)

    def test_default_behavior_unchanged(self):
        result = run_execution(
            ALGORITHMS["alg1"](), Cycle(12), monotone_ids(12),
            SynchronousScheduler(), max_time=2,
        )
        assert result.time_exhausted  # returned, not raised

    def test_no_raise_when_run_completes(self):
        result = run_execution(
            ALGORITHMS["fast5"](), Cycle(8), random_distinct_ids(8, seed=0),
            SynchronousScheduler(), raise_on_exhaustion=True,
        )
        assert result.all_terminated

    def test_error_message_samples_pending_processes(self):
        n = 30
        result = run_execution(
            ALGORITHMS["alg1"](), Cycle(n), monotone_ids(n),
            SynchronousScheduler(), max_time=1,
        )
        err = time_exhausted_error(result)
        assert "+" in str(err) and "more" in str(err)  # sampled, not dumped
        assert len(err.pending) == len(result.pending)


class TestCampaignMetrics:
    def _spec(self):
        from repro.campaign.spec import CampaignSpec

        return CampaignSpec.build(
            algorithms=["fast5"], ns=[8], input_families=["random"],
            schedules=["sync", "round-robin"], seeds=range(2),
        )

    def test_campaign_counters_and_summary_metrics(self, tmp_path):
        from repro.campaign.runner import run_campaign

        journal = tmp_path / "journal.jsonl"
        with collecting() as registry:
            outcome = run_campaign(self._spec(), journal_path=journal)
        total = outcome.summary.executed
        assert registry.value("campaign_tasks_total", status="ok") == total
        assert registry.value("campaign_task_seconds")["count"] == total
        assert registry.value("campaign_retries_total") == 0
        assert registry.value("campaign_timeouts_total") == 0
        assert registry.value("campaign_crashes_total") == 0
        # Header + one line per record went through the journal span.
        assert registry.value("campaign_journal_appends_total") == total + 1
        stats = registry.value("campaign_journal_append_seconds")
        assert stats["count"] == total + 1
        # The summary embeds the snapshot when collecting.
        assert outcome.summary.metrics is not None
        assert "campaign_tasks_total" in outcome.summary.to_dict()["metrics"]
        # Queue depth gauge drained to zero.
        assert registry.value(
            "campaign_queue_depth", backend="sequential"
        ) == 0

    def test_campaign_without_collection_has_no_metrics(self, tmp_path):
        from repro.campaign.runner import run_campaign

        outcome = run_campaign(
            self._spec(), journal_path=tmp_path / "journal.jsonl"
        )
        assert outcome.summary.metrics is None
        assert "metrics" not in outcome.summary.to_dict()

    def test_per_shard_percentiles_and_throughput(self, tmp_path):
        from repro.campaign.runner import run_campaign

        outcome = run_campaign(
            self._spec(), journal_path=tmp_path / "journal.jsonl"
        )
        shards = outcome.summary.to_dict()["per_shard_latency"]
        assert shards
        for shard in shards.values():
            assert {"count", "min", "mean", "p50", "p95", "p99", "max",
                    "wall", "tasks_per_sec"} <= set(shard)
            assert shard["p95"] <= shard["p99"] <= shard["max"]
            assert shard["wall"] == pytest.approx(
                shard["mean"] * shard["count"]
            )
            if shard["wall"] > 0:
                assert shard["tasks_per_sec"] == pytest.approx(
                    shard["count"] / shard["wall"]
                )
