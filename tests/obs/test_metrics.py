"""Unit tests for repro.obs.metrics and repro.obs.exposition."""

import json

import pytest

from repro.obs.exposition import (
    render_json,
    render_prometheus,
    write_json_artifact,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NONDETERMINISTIC_METRICS,
    active_registry,
    collecting,
    disable_metrics,
    enable_metrics,
)
from repro.obs.spans import Stopwatch, span


class TestRegistry:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.inc("hits_total", 1, route="a")
        r.inc("hits_total", 2, route="a")
        r.inc("hits_total", 5, route="b")
        assert r.value("hits_total", route="a") == 3
        assert r.value("hits_total", route="b") == 5

    def test_counter_rejects_decrease(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            r.inc("hits_total", -1)

    def test_gauge_last_write_wins(self):
        r = MetricsRegistry()
        r.set_gauge("depth", 7)
        r.set_gauge("depth", 3)
        assert r.value("depth") == 3

    def test_histogram_stats(self):
        r = MetricsRegistry()
        for v in [1, 2, 3, 4, 100]:
            r.observe("latency", v)
        stats = r.value("latency")
        assert stats["count"] == 5
        assert stats["sum"] == 110
        assert stats["min"] == 1
        assert stats["max"] == 100
        assert stats["mean"] == 22
        assert stats["p50"] == 3

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.inc("x_total")
        with pytest.raises(ValueError, match="is a counter"):
            r.set_gauge("x_total", 1)

    def test_label_order_is_canonical(self):
        r = MetricsRegistry()
        r.inc("t", 1, a=1, b=2)
        r.inc("t", 1, b=2, a=1)
        assert r.value("t", b=2, a=1) == 2

    def test_missing_series_is_none(self):
        r = MetricsRegistry()
        assert r.value("never") is None
        r.inc("t", 1, a=1)
        assert r.value("t", a=2) is None

    def test_snapshot_shape_and_determinism(self):
        def fill(r):
            r.inc("runs_total", 1, engine="fast")
            r.set_gauge("depth", 4)
            r.observe("latency", 0.5)

        a, b = MetricsRegistry(), MetricsRegistry()
        fill(a)
        fill(b)
        assert a.snapshot() == b.snapshot()
        snap = a.snapshot()
        assert snap["runs_total"]["kind"] == "counter"
        assert snap["runs_total"]["samples"][0]["labels"] == {"engine": "fast"}
        assert snap["depth"]["samples"][0]["value"] == 4
        # The snapshot must round-trip through JSON (artifact format).
        assert json.loads(json.dumps(snap)) == snap

    def test_deterministic_snapshot_filters(self):
        r = MetricsRegistry()
        r.inc("engine_runs_total", 1, engine="fast")
        r.observe("engine_run_seconds", 0.2, engine="fast")
        for name in NONDETERMINISTIC_METRICS:
            r.inc(name, 1) if name.endswith("_total") else r.set_gauge(name, 1)
        det = r.deterministic_snapshot(ignore_labels=("engine",))
        assert set(det) == {"engine_runs_total"}
        assert det["engine_runs_total"]["samples"][0]["labels"] == {}

    def test_names_sorted(self):
        r = MetricsRegistry()
        r.inc("b_total")
        r.inc("a_total")
        assert r.names() == ["a_total", "b_total"]


class TestCollectionSwitch:
    def test_disabled_by_default(self):
        assert active_registry() is None

    def test_collecting_restores_previous(self):
        outer = MetricsRegistry()
        with collecting(outer):
            assert active_registry() is outer
            with collecting() as inner:
                assert active_registry() is inner
                assert inner is not outer
            assert active_registry() is outer
        assert active_registry() is None

    def test_enable_disable(self):
        try:
            registry = enable_metrics()
            assert active_registry() is registry
        finally:
            disable_metrics()
        assert active_registry() is None


class TestSpans:
    def test_span_noop_when_disabled(self):
        s = span("anything")
        with s:
            pass
        assert s.elapsed is None

    def test_span_observes_when_enabled(self):
        with collecting() as r:
            with span("build", algorithm="alg1"):
                pass
        stats = r.value("build_seconds", algorithm="alg1")
        assert stats["count"] == 1
        assert stats["sum"] >= 0

    def test_stopwatch_accumulates_slices(self):
        r = MetricsRegistry()
        watch = Stopwatch()
        for _ in range(3):
            watch.tick()
            watch.tock()
        watch.flush("phase", r, phase="write")
        stats = r.value("phase_seconds", phase="write")
        assert stats["count"] == 1
        assert stats["sum"] == watch.total


class TestExposition:
    def _registry(self):
        r = MetricsRegistry()
        r.inc("runs_total", 2, engine="fast")
        r.set_gauge("depth", 3)
        r.observe("latency", 1.0)
        r.observe("latency", 3.0)
        return r

    def test_render_json_versioned(self):
        payload = render_json(self._registry(), extra={"ok": True})
        assert payload["artifact"] == "repro-metrics"
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert "runs_total" in payload["metrics"]

    def test_write_json_artifact(self, tmp_path):
        path = write_json_artifact(self._registry(), tmp_path / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["depth"]["samples"][0]["value"] == 3

    def test_prometheus_text(self):
        text = render_prometheus(self._registry())
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{engine="fast"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text
        # Histograms render as summaries.
        assert "# TYPE latency summary" in text
        assert 'latency{quantile="0.5"} 1' in text
        assert "latency_sum 4" in text
        assert "latency_count 2" in text

    def test_prometheus_escapes_labels(self):
        r = MetricsRegistry()
        r.inc("t", 1, msg='say "hi"\n')
        text = render_prometheus(r)
        assert r'msg="say \"hi\"\n"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
