"""Unit tests for the algorithm interface helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.algorithm import StepOutcome, active_views, mex
from repro.types import BOTTOM


class TestMex:
    @pytest.mark.parametrize(
        "taken,expected",
        [([], 0), ([0], 1), ([1, 2], 0), ([0, 1, 2], 3), ([0, 0, 2], 1)],
    )
    def test_examples(self, taken, expected):
        assert mex(taken) == expected

    @given(st.sets(st.integers(min_value=0, max_value=50)))
    def test_mex_is_excluded_minimum(self, taken):
        value = mex(taken)
        assert value not in taken
        assert all(v in taken for v in range(value))

    def test_accepts_generator(self):
        assert mex(v for v in (0, 1)) == 2


class TestActiveViews:
    def test_filters_bottom(self):
        assert active_views(("a", BOTTOM, "b")) == ("a", "b")

    def test_all_bottom(self):
        assert active_views((BOTTOM, BOTTOM)) == ()

    def test_preserves_order(self):
        assert active_views((1, 2, 3)) == (1, 2, 3)


class TestStepOutcome:
    def test_cont(self):
        outcome = StepOutcome.cont("s")
        assert not outcome.returned
        assert outcome.state == "s"
        assert outcome.output is None

    def test_ret(self):
        outcome = StepOutcome.ret("s", 3)
        assert outcome.returned
        assert outcome.output == 3

    def test_frozen(self):
        with pytest.raises(Exception):
            StepOutcome.cont("s").returned = True
