"""Tests for Algorithm 4 (Appendix A: O(Δ²)-coloring general graphs)."""

import pytest

from repro.analysis.verify import verify_execution
from repro.core.general import GeneralGraphColoring
from repro.model.execution import run_execution
from repro.model.topology import CompleteGraph, Cycle, GeneralGraph, Star, Torus
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)

TOPOLOGIES = {
    "cycle": lambda: Cycle(12),
    "torus": lambda: Torus(4, 5),
    "star": lambda: Star(7),
    "complete": lambda: CompleteGraph(6),
    "irregular": lambda: GeneralGraph(
        7, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6), (6, 4)],
    ),
}


class TestAppendixA:
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize(
        "schedule_factory",
        [
            SynchronousScheduler,
            RoundRobinScheduler,
            lambda: BernoulliScheduler(p=0.5, seed=4),
        ],
    )
    def test_guarantees(self, topo_name, schedule_factory):
        topo = TOPOLOGIES[topo_name]()
        inputs = [(7 * i + 3) % (topo.n * 5) for i in range(topo.n)]
        # Make inputs distinct (proper-coloring precondition).
        inputs = list(range(0, 3 * topo.n, 3))
        result = run_execution(
            GeneralGraphColoring(), topo, inputs, schedule_factory(),
            max_time=50_000,
        )
        assert result.all_terminated, topo_name
        palette = GeneralGraphColoring.palette(topo.max_degree())
        verdict = verify_execution(topo, result, palette=palette)
        assert verdict.ok, (topo_name, verdict)

    def test_palette_size_is_quadratic(self):
        for delta in (2, 4, 8, 12):
            palette = GeneralGraphColoring.palette(delta)
            assert palette.size == (delta + 1) * (delta + 2) // 2

    def test_matches_algorithm1_on_cycles(self):
        """On a cycle, Algorithm 4 is Algorithm 1: same outputs under
        the same deterministic schedule."""
        from repro.core.coloring6 import SixColoring

        n = 10
        inputs = list(range(0, 30, 3))
        r4 = run_execution(
            GeneralGraphColoring(), Cycle(n), inputs, SynchronousScheduler(),
        )
        r1 = run_execution(
            SixColoring(), Cycle(n), inputs, SynchronousScheduler(),
        )
        assert r4.outputs == r1.outputs
        assert r4.activations == r1.activations

    def test_random_graphs_with_networkx(self):
        nx = pytest.importorskip("networkx")
        for seed in range(3):
            g = nx.gnp_random_graph(24, 0.18, seed=seed)
            topo = GeneralGraph.from_networkx(g, name=f"gnp-{seed}")
            inputs = [13 * i + 5 for i in range(topo.n)]
            result = run_execution(
                GeneralGraphColoring(), topo, inputs,
                BernoulliScheduler(p=0.6, seed=seed), max_time=50_000,
            )
            assert result.all_terminated
            palette = GeneralGraphColoring.palette(max(topo.max_degree(), 1))
            assert verify_execution(topo, result, palette=palette).ok

    def test_crashes_on_torus(self):
        from repro.model.faults import crash_after_time

        topo = Torus(4, 4)
        inputs = [5 * i for i in range(topo.n)]
        plan = crash_after_time(SynchronousScheduler(), {0: 1, 5: 2, 10: 3})
        result = run_execution(GeneralGraphColoring(), topo, inputs, plan)
        palette = GeneralGraphColoring.palette(4)
        assert verify_execution(topo, result, palette=palette).ok
        assert (set(range(topo.n)) - {0, 5, 10}) <= result.terminated
