"""Tests for the identifier-reduction function f (paper §4.1).

Lemmas 4.1–4.3 are checked exhaustively over small inputs and
property-based over large (multi-hundred-bit) ones.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coin_tossing import (
    REDUCTION_PLATEAU,
    bit,
    bit_length,
    bound_function,
    iterate_bound,
    iterations_until_below,
    log_star,
    reduce_identifier,
)

big_naturals = st.integers(min_value=0, max_value=2 ** 512)


class TestBitHelpers:
    @pytest.mark.parametrize(
        "z,expected", [(0, 0), (1, 1), (2, 2), (3, 2), (7, 3), (8, 4), (255, 8)]
    )
    def test_bit_length_matches_definition(self, z, expected):
        # |Z| = ceil(log2(Z+1))
        assert bit_length(z) == expected
        assert bit_length(z) == math.ceil(math.log2(z + 1)) if z else True

    def test_bit_extraction(self):
        assert [bit(0b1011, k) for k in range(5)] == [1, 1, 0, 1, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length(-1)
        with pytest.raises(ValueError):
            bit(-1, 0)
        with pytest.raises(ValueError):
            bit(1, -1)


class TestReduceIdentifier:
    def test_worked_example(self):
        # X=1011, Y=1001 differ first at bit 1; X_1 = 1 -> f = 2*1+1 = 3.
        assert reduce_identifier(0b1011, 0b1001) == 3

    def test_equal_inputs_use_common_length(self):
        # diff empty: i = |X| = |Y|; f = 2|X| + X_{|X|} = 2|X| + 0.
        assert reduce_identifier(5, 5) == 2 * bit_length(5)

    def test_length_cap(self):
        # X=8 (1000), Y=0 (length 0): i = min(4, 0) = 0, X_0 = 0.
        assert reduce_identifier(8, 0) == 0

    def test_output_bound(self):
        # f(x, y) <= 2|x| + 1 (used by Lemma 4.1's bound function F).
        for x in range(1, 200):
            for y in range(0, 200, 7):
                assert reduce_identifier(x, y) <= 2 * bit_length(x) + 1

    def test_lemma_4_2_exhaustive(self):
        """x > y >= 10 => f(x, y) < y (small range, exhaustive)."""
        for y in range(10, 300):
            for x in range(y + 1, y + 300):
                assert reduce_identifier(x, y) < y, (x, y)

    def test_lemma_4_3_exhaustive(self):
        """x > y > z => f(x, y) != f(y, z) (small range, exhaustive)."""
        for z in range(0, 40):
            for y in range(z + 1, 42):
                for x in range(y + 1, 44):
                    assert reduce_identifier(x, y) != reduce_identifier(y, z), (x, y, z)

    @given(x=big_naturals, y=big_naturals)
    @settings(max_examples=300, deadline=None)
    def test_lemma_4_2_property(self, x, y):
        x, y = max(x, y), min(x, y)
        if x > y >= REDUCTION_PLATEAU:
            assert reduce_identifier(x, y) < y

    @given(values=st.lists(big_naturals, min_size=3, max_size=3, unique=True))
    @settings(max_examples=300, deadline=None)
    def test_lemma_4_3_property(self, values):
        x, y, z = sorted(values, reverse=True)
        assert reduce_identifier(x, y) != reduce_identifier(y, z)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            reduce_identifier(-1, 2)


class TestBoundFunction:
    def test_fixed_points(self):
        assert bound_function(7) == 7
        assert bound_function(9) == 9

    def test_dominates_f(self):
        for x in range(1, 500):
            assert bound_function(x) >= max(
                reduce_identifier(x, y) for y in range(x)
            )

    def test_orbit_shape(self):
        orbit = iterate_bound(10 ** 9, 5)
        assert orbit[0] == 10 ** 9
        assert orbit[1] == 2 * 30 + 1  # 2*ceil(log2(1e9+1))+1
        assert orbit[-1] < 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bound_function(-1)


class TestIterationsUntilBelow:
    def test_already_below(self):
        assert iterations_until_below(5) == 0

    @pytest.mark.parametrize(
        "exponent,maximum",
        [(4, 2), (16, 4), (64, 5), (1024, 6), (2 ** 14, 7)],
    )
    def test_log_star_like_growth(self, exponent, maximum):
        assert iterations_until_below(2 ** exponent) <= maximum

    def test_lemma_4_1_constant(self):
        """There is a constant alpha with iterations <= alpha*log*(x)."""
        for exponent in (4, 16, 64, 256, 4096):
            x = 2 ** exponent
            assert iterations_until_below(x) <= 3 * log_star(x) + 3

    def test_unreachable_threshold_raises(self):
        with pytest.raises(ValueError):
            iterations_until_below(100, threshold=7)  # F has fixed point 7


class TestLogStar:
    @pytest.mark.parametrize(
        "exponent,expected",
        [(0, 0), (1, 1), (2, 2), (4, 3), (16, 4), (65536, 5)],
    )
    def test_tower_values(self, exponent, expected):
        assert log_star(2 ** exponent) == expected

    def test_monotone(self):
        values = [log_star(x) for x in range(1, 2000)]
        assert values == sorted(values)

    def test_domain(self):
        with pytest.raises(ValueError):
            log_star(0)

    def test_huge_int_stability(self):
        # bit-length based path for astronomically large ints
        assert log_star(2 ** (2 ** 20)) == 6
