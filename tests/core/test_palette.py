"""Unit tests for repro.core.palette."""

import pytest

from repro.core.palette import SCALAR_FIVE, TriangularPalette, scalar_palette
from repro.errors import PaletteViolation


class TestTriangularPalette:
    def test_algorithm1_palette_size(self):
        assert TriangularPalette(2).size == 6

    @pytest.mark.parametrize("bound,size", [(0, 1), (1, 3), (3, 10), (10, 66)])
    def test_size_formula(self, bound, size):
        assert TriangularPalette(bound).size == (bound + 1) * (bound + 2) // 2
        assert TriangularPalette(bound).size == size

    def test_membership(self):
        p = TriangularPalette(2)
        assert (0, 0) in p
        assert (2, 0) in p
        assert (1, 2) not in p
        assert "nope" not in p

    def test_encode_decode_roundtrip(self):
        p = TriangularPalette(4)
        for pair in p:
            assert p.decode(p.encode(pair)) == pair

    def test_encode_is_bijective(self):
        p = TriangularPalette(3)
        codes = {p.encode(pair) for pair in p}
        assert codes == set(range(p.size))

    def test_canonical_order_by_diagonal(self):
        p = TriangularPalette(2)
        assert list(p)[:3] == [(0, 0), (0, 1), (1, 0)]

    def test_encode_rejects_foreign_pair(self):
        with pytest.raises(PaletteViolation):
            TriangularPalette(2).encode((3, 0))

    def test_decode_rejects_bad_index(self):
        with pytest.raises(PaletteViolation):
            TriangularPalette(2).decode(6)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            TriangularPalette(-1)


class TestScalarPalette:
    def test_five(self):
        assert list(SCALAR_FIVE) == [0, 1, 2, 3, 4]

    def test_scalar_palette(self):
        assert list(scalar_palette(3)) == [0, 1, 2]
