"""Tests for Algorithm 1 (Theorem 3.1 and Lemma 3.9)."""

import random

import pytest

from repro.analysis.chains import chain_profile
from repro.analysis.complexity import theorem_3_1_bound
from repro.analysis.inputs import (
    monotone_ids,
    proper_coloring_inputs,
    random_distinct_ids,
    zigzag_ids,
)
from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring, SixState
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.schedulers import SoloScheduler, SynchronousScheduler
from tests.conftest import INPUT_FAMILIES, SCHEDULER_FACTORIES


class TestTheorem31:
    """Termination / palette / correctness across the scheduler zoo."""

    @pytest.mark.parametrize("inputs_name", sorted(INPUT_FAMILIES))
    @pytest.mark.parametrize("n", [3, 4, 7, 16, 33])
    def test_guarantees_across_schedulers(self, n, inputs_name):
        inputs = INPUT_FAMILIES[inputs_name](n)
        bound = theorem_3_1_bound(n)
        for sched_name, factory in SCHEDULER_FACTORIES.items():
            result = run_execution(
                SixColoring(), Cycle(n), inputs, factory(), max_time=100_000,
            )
            assert result.all_terminated, (sched_name, inputs_name, n)
            verdict = verify_execution(Cycle(n), result, palette=SIX_PALETTE)
            assert verdict.ok, (sched_name, inputs_name, n, verdict)
            assert result.round_complexity <= bound, (sched_name, inputs_name)

    def test_solo_process_terminates(self):
        """Wait-freedom: a solo process returns within 4 activations."""
        result = run_execution(
            SixColoring(), Cycle(5), monotone_ids(5), SoloScheduler(2, solo_steps=50),
            max_time=200,
        )
        assert 2 in result.outputs
        assert result.activations[2] <= 4

    def test_output_type_is_pair(self):
        result = run_execution(
            SixColoring(), Cycle(3), [4, 9, 2], SynchronousScheduler(),
        )
        for color in result.outputs.values():
            assert isinstance(color, tuple) and len(color) == 2
            assert color[0] + color[1] <= 2


class TestLemma39:
    """Per-process bound min{3l, 3l', l+l'} + 4 by monotone distances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_per_process_bound(self, seed):
        n = 24
        inputs = random_distinct_ids(n, seed=seed)
        profile = chain_profile(inputs)
        # A randomized (but seeded) asynchronous schedule.
        from repro.schedulers import BernoulliScheduler

        result = run_execution(
            SixColoring(), Cycle(n), inputs, BernoulliScheduler(p=0.5, seed=seed),
        )
        assert result.all_terminated
        for p in range(n):
            assert result.activations[p] <= profile.alg1_bound(p), (
                seed, p, result.activations[p], profile.alg1_bound(p),
            )

    def test_extrema_return_within_four(self):
        n = 10
        inputs = random_distinct_ids(n, seed=3)
        profile = chain_profile(inputs)
        result = run_execution(
            SixColoring(), Cycle(n), inputs, SynchronousScheduler(),
        )
        for p in range(n):
            if profile.distances_to_max[p] == 0 or profile.distances_to_min[p] == 0:
                assert result.activations[p] <= 4


class TestRemark310:
    """Inputs need only be a proper coloring, not unique ids."""

    @pytest.mark.parametrize("n", [4, 6, 9, 20])
    def test_proper_coloring_inputs(self, n):
        inputs = proper_coloring_inputs(n)
        result = run_execution(
            SixColoring(), Cycle(n), inputs, SynchronousScheduler(),
        )
        assert result.all_terminated
        assert verify_execution(Cycle(n), result, palette=SIX_PALETTE).ok
        # With k=3 initial colors, chains have length <= 3: convergence O(1).
        assert result.round_complexity <= 3 * 3 + 4

    def test_zigzag_is_constant_time(self):
        result = run_execution(
            SixColoring(), Cycle(40), zigzag_ids(40), SynchronousScheduler(),
        )
        assert result.round_complexity <= 10


class TestNeighborOrderIndependence:
    """The paper gives no left/right orientation; shuffling neighbor
    order must not change any guarantee."""

    def test_shuffled_neighbors(self):
        n = 12
        topo = Cycle(n).with_shuffled_neighbors(random.Random(9))
        result = run_execution(
            SixColoring(), topo, random_distinct_ids(n, seed=1),
            SynchronousScheduler(),
        )
        assert result.all_terminated
        assert verify_execution(topo, result, palette=SIX_PALETTE).ok


class TestStepMechanics:
    def test_returns_current_color_on_no_conflict(self):
        alg = SixColoring()
        state = SixState(x=5, a=1, b=0)
        from repro.core.coloring6 import SixRegister

        outcome = alg.step(state, (SixRegister(7, (0, 0)), SixRegister(3, (0, 1))))
        assert outcome.returned and outcome.output == (1, 0)

    def test_updates_on_conflict(self):
        alg = SixColoring()
        state = SixState(x=5, a=0, b=0)
        from repro.core.coloring6 import SixRegister

        outcome = alg.step(state, (SixRegister(7, (0, 0)), SixRegister(3, (1, 1))))
        assert not outcome.returned
        # a avoids higher neighbor (x=7, a=0) -> 1; b avoids lower (b=1) -> 0
        assert outcome.state == SixState(x=5, a=1, b=0)

    def test_sleeping_neighbors_ignored(self):
        from repro.types import BOTTOM

        alg = SixColoring()
        outcome = alg.step(SixState(x=5, a=0, b=0), (BOTTOM, BOTTOM))
        assert outcome.returned and outcome.output == (0, 0)
