"""Tests for Algorithm 3 (Theorem 4.4 empirics + Lemma 4.5 invariant)."""

import pytest

from repro.analysis.complexity import logstar_budget
from repro.analysis.inputs import huge_ids, monotone_ids, random_distinct_ids
from repro.analysis.verify import (
    identifiers_always_proper,
    published_identifier_violations,
    verify_execution,
)
from repro.core.coin_tossing import log_star
from repro.core.fast_coloring5 import (
    INFINITE_ROUND,
    FastFiveColoring,
    FastRegister,
    FastState,
)
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import (
    BernoulliScheduler,
    SlowChainScheduler,
    SoloScheduler,
    SynchronousScheduler,
)
from tests.conftest import INPUT_FAMILIES, SCHEDULER_FACTORIES


class TestTheorem44:
    @pytest.mark.parametrize("inputs_name", sorted(INPUT_FAMILIES))
    @pytest.mark.parametrize("n", [3, 4, 7, 16, 33])
    def test_guarantees_across_schedulers(self, n, inputs_name):
        inputs = INPUT_FAMILIES[inputs_name](n)
        for sched_name, factory in SCHEDULER_FACTORIES.items():
            result = run_execution(
                FastFiveColoring(), Cycle(n), inputs, factory(), max_time=100_000,
            )
            assert result.all_terminated, (sched_name, inputs_name, n)
            verdict = verify_execution(Cycle(n), result, palette=range(5))
            assert verdict.ok, (sched_name, inputs_name, n, verdict)

    @pytest.mark.parametrize("n", [8, 64, 512, 4096])
    def test_logstar_scaling_on_worst_case_inputs(self, n):
        """Monotone ids (Algorithm 2's Θ(n) case) stay within an
        O(log* n) activation budget."""
        result = run_execution(
            FastFiveColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.round_complexity <= logstar_budget(n)

    def test_huge_identifiers_converge_fast(self):
        """512-bit ids: the reduction's log* dependence on magnitude."""
        n = 64
        result = run_execution(
            FastFiveColoring(), Cycle(n), huge_ids(n, bits=512, seed=1),
            SynchronousScheduler(),
        )
        assert result.all_terminated
        assert result.round_complexity <= logstar_budget(2 ** 512)

    def test_flat_across_two_orders_of_magnitude(self):
        rounds = {}
        for n in (32, 512, 8192):
            result = run_execution(
                FastFiveColoring(), Cycle(n), monotone_ids(n),
                SynchronousScheduler(),
            )
            rounds[n] = result.round_complexity
        # log*(8192) == log*(32) + 1 at most: near-constant.
        assert rounds[8192] <= rounds[32] + 6

    def test_solo_process_terminates(self):
        result = run_execution(
            FastFiveColoring(), Cycle(5), monotone_ids(5),
            SoloScheduler(1, solo_steps=20), max_time=100,
        )
        assert 1 in result.outputs


class TestLemma45Invariant:
    """Published identifiers always properly color the cycle."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules(self, seed):
        n = 20
        result = run_execution(
            FastFiveColoring(), Cycle(n), monotone_ids(n),
            BernoulliScheduler(p=0.4, seed=seed), record_registers=True,
        )
        assert identifiers_always_proper(Cycle(n), result.trace)

    def test_slow_chain_schedule(self):
        n = 18
        result = run_execution(
            FastFiveColoring(), Cycle(n), monotone_ids(n),
            SlowChainScheduler(slow=range(9), slowdown=7),
            record_registers=True,
        )
        assert identifiers_always_proper(Cycle(n), result.trace)

    def test_ablation_unguarded_adoption_breaks_invariant(self):
        """A2: dropping the Y < min guard lets published ids collide."""
        broken = False
        for seed in range(60):
            n = 10
            result = run_execution(
                FastFiveColoring(guarded_adoption=False), Cycle(n),
                random_distinct_ids(n, seed=seed + 700),
                BernoulliScheduler(p=0.5, seed=seed),
                record_registers=True,
            )
            if published_identifier_violations(Cycle(n), result.trace):
                broken = True
                break
        assert broken, "A2 ablation unexpectedly preserved Lemma 4.5"


class TestIdentifierReduction:
    def test_identifiers_shrink_to_plateau(self):
        n = 32
        result = run_execution(
            FastFiveColoring(), Cycle(n), [10 ** 6 + i for i in range(n)],
            SynchronousScheduler(), record_registers=True,
        )
        final = result.trace.final_registers()
        # After convergence, ids sit at/below the plateau or are local
        # maxima that never reduced; most must have collapsed.
        small = sum(1 for reg in final if reg.x <= 10)
        assert small >= n // 2

    def test_blocked_without_both_neighbors(self):
        """A process whose neighbor never woke keeps its identifier."""
        alg = FastFiveColoring()
        from repro.types import BOTTOM

        state = FastState(x=1000, r=0, a=0, b=0)
        views = (FastRegister(5, 0, 0, 0), BOTTOM)
        outcome = alg.step(state, views)
        assert outcome.state.x == 1000
        assert outcome.state.r == 0

    def test_local_extremum_sets_r_infinite(self):
        alg = FastFiveColoring()
        state = FastState(x=100, r=0, a=0, b=0)
        views = (FastRegister(5, 0, 0, 0), FastRegister(7, 0, 0, 0))
        outcome = alg.step(state, views)
        assert outcome.state.r == INFINITE_ROUND
        assert outcome.state.x == 100  # maxima never reduce

    def test_local_minimum_reduces_once(self):
        alg = FastFiveColoring()
        state = FastState(x=100, r=0, a=0, b=0)
        views = (FastRegister(500, 0, 0, 0), FastRegister(700, 0, 0, 0))
        outcome = alg.step(state, views)
        assert outcome.state.r == INFINITE_ROUND
        assert outcome.state.x <= 2  # mex of two f-values

    def test_green_light_blocks_when_behind(self):
        """r_p > min(r_q, r_q') means no identifier update."""
        alg = FastFiveColoring()
        state = FastState(x=50, r=3, a=0, b=0)
        views = (FastRegister(5, 1, 0, 0), FastRegister(70, 9, 0, 0))
        outcome = alg.step(state, views)
        assert outcome.state.x == 50
        assert outcome.state.r == 3

    def test_strictly_between_increments_r(self):
        alg = FastFiveColoring()
        state = FastState(x=50, r=2, a=0, b=0)
        views = (FastRegister(20, 2, 0, 0), FastRegister(90, 5, 0, 0))
        outcome = alg.step(state, views)
        assert outcome.state.r == 3
