"""Tests for Algorithm 2 (Theorem 3.11), including the E13 caveat."""

import pytest

from repro.analysis.chains import chain_profile
from repro.analysis.complexity import theorem_3_11_bound
from repro.analysis.inputs import monotone_ids, random_distinct_ids
from repro.analysis.verify import verify_execution
from repro.core.coloring5 import FiveColoring, FiveRegister, FiveState
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    SynchronousScheduler,
)
from tests.conftest import INPUT_FAMILIES, SCHEDULER_FACTORIES


class TestTheorem311:
    """Safety always holds; termination holds for the scheduler zoo
    (the phase-locked counterexample lives in extensions/livelock)."""

    @pytest.mark.parametrize("inputs_name", sorted(INPUT_FAMILIES))
    @pytest.mark.parametrize("n", [3, 4, 7, 16, 33])
    def test_guarantees_across_schedulers(self, n, inputs_name):
        inputs = INPUT_FAMILIES[inputs_name](n)
        for sched_name, factory in SCHEDULER_FACTORIES.items():
            result = run_execution(
                FiveColoring(), Cycle(n), inputs, factory(), max_time=100_000,
            )
            assert result.all_terminated, (sched_name, inputs_name, n)
            verdict = verify_execution(Cycle(n), result, palette=range(5))
            assert verdict.ok, (sched_name, inputs_name, n, verdict)
            assert result.round_complexity <= theorem_3_11_bound(n)

    def test_five_colors_only(self):
        result = run_execution(
            FiveColoring(), Cycle(9), random_distinct_ids(9, seed=0),
            SynchronousScheduler(),
        )
        assert set(result.outputs.values()) <= set(range(5))

    def test_solo_process_terminates_immediately(self):
        result = run_execution(
            FiveColoring(), Cycle(5), monotone_ids(5), SoloScheduler(3, solo_steps=10),
            max_time=100,
        )
        assert 3 in result.outputs
        assert result.activations[3] == 1  # a=0 unopposed on first look


class TestLinearInChainLength:
    """The running time tracks the monotone-chain structure (§3.2)."""

    def test_monotone_ids_are_linear(self):
        rounds = {}
        for n in (16, 32, 64, 128):
            result = run_execution(
                FiveColoring(), Cycle(n), monotone_ids(n), SynchronousScheduler(),
            )
            rounds[n] = result.round_complexity
        # Doubling n should roughly double the rounds on the monotone chain.
        assert rounds[128] >= 3 * rounds[16]
        assert rounds[128] >= 100

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma_3_14_bound_nonminima(self, seed):
        n = 20
        inputs = random_distinct_ids(n, seed=seed)
        profile = chain_profile(inputs)
        result = run_execution(
            FiveColoring(), Cycle(n), inputs, BernoulliScheduler(p=0.6, seed=seed),
        )
        assert result.all_terminated
        for p in range(n):
            assert result.activations[p] <= profile.alg2_bound(p), (seed, p)


class TestInvariants:
    def test_b_at_least_a(self):
        """C+ ⊆ C implies b_p >= a_p at all times (used by Lemma 3.13)."""
        n = 12
        result = run_execution(
            FiveColoring(), Cycle(n), monotone_ids(n),
            RoundRobinScheduler(), record_registers=True,
        )
        from repro.types import BOTTOM

        for event in result.trace:
            for reg in event.registers:
                if reg is not BOTTOM:
                    assert reg.b >= reg.a

    def test_fresh_b_avoids_c(self):
        """Lemma 3.12: the freshly computed b_p is outside C."""
        alg = FiveColoring()
        views = (FiveRegister(9, 0, 1), FiveRegister(2, 2, 3))
        outcome = alg.step(FiveState(x=5, a=0, b=1), views)
        assert not outcome.returned
        assert outcome.state.b not in {0, 1, 2, 3}
        assert outcome.state.b == 4  # mex{0,1,2,3}

    def test_return_prefers_a(self):
        alg = FiveColoring()
        views = (FiveRegister(9, 1, 2), FiveRegister(2, 3, 4))
        outcome = alg.step(FiveState(x=5, a=0, b=0), views)
        assert outcome.returned and outcome.output == 0
