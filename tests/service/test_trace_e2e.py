"""End-to-end tracing through the service: server → coalescer → pool.

The acceptance test of the tracing tentpole: a pool-mode request
traced through a real :class:`ColorServer` must yield a *single* trace
in ``/debug/trace`` whose parent/child span ids join up across the
process boundary — request (serving process) → coalesce.batch (event
loop) → pool.task (worker process) → engine phases — and the exported
document must be valid Chrome trace-event JSON.
"""

import os

from repro.obs.trace import TRACE_HEADER, TraceContext, active_recorder
from repro.service.client import ServiceClient
from repro.service.schema import ColorRequest
from repro.service.server import ServerThread


def request_of(seed, *, algorithm="fast5", n=24, max_time=200_000):
    return ColorRequest.build(
        algorithm, n, schedule="bernoulli", seed=seed, max_time=max_time
    )


def spans_by_name(doc):
    index = {}
    for event in doc["traceEvents"]:
        index.setdefault(event["name"], []).append(event)
    return index


class TestPoolModeEndToEnd:
    def test_single_trace_spans_server_to_worker(self):
        with ServerThread(
            pool_workers=1, trace="on", coalesce_window=0.005
        ) as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(20)
                reply = client.color(request_of(1))
                assert reply.status == 200
                trace_id = reply.trace_id
                assert len(trace_id) == 32
                doc = client.debug_trace()

        # The artifact is valid Chrome trace-event JSON.
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)

        # One trace covers the whole path: every span of this request
        # carries the id the response header advertised.
        mine = [
            e for e in doc["traceEvents"]
            if e["args"]["trace_id"] == trace_id
        ]
        names = {e["name"] for e in mine}
        assert {"request", "coalesce.batch", "pool.task"} <= names

        index = spans_by_name(doc)
        (request,) = [
            e for e in index["request"]
            if e["args"]["trace_id"] == trace_id
        ]
        (batch,) = [
            e for e in index["coalesce.batch"]
            if e["args"]["trace_id"] == trace_id
        ]
        (pool_task,) = [
            e for e in index["pool.task"]
            if e["args"]["trace_id"] == trace_id
        ]

        # Parent/child ids join up across the layers...
        assert batch["args"]["parent_id"] == request["args"]["span_id"]
        assert pool_task["args"]["parent_id"] == batch["args"]["span_id"]
        # ...and across the process boundary: the worker span recorded
        # its own pid, distinct from the serving process.
        assert request["pid"] == os.getpid()
        assert pool_task["pid"] != request["pid"]
        assert pool_task["args"]["worker"] == 0
        assert pool_task["args"]["attempt"] == 1

        # The engine spans the worker shipped back are part of the same
        # trace, beneath the pool.task span.
        engine_runs = [
            e for e in mine if e["name"] == "engine_run"
        ]
        assert engine_runs
        assert all(e["pid"] == pool_task["pid"] for e in engine_runs)

        # Every span of the trace reaches the request root by walking
        # parent links — a single connected tree, no orphans.
        by_id = {e["args"]["span_id"]: e for e in mine}
        root_id = request["args"]["span_id"]
        for event in mine:
            seen = set()
            node = event
            while node["args"]["span_id"] != root_id:
                parent = node["args"]["parent_id"]
                assert parent is not None, f"orphan span {node['name']}"
                assert parent not in seen, "parent cycle"
                seen.add(parent)
                node = by_id[parent]

    def test_thread_mode_traces_execute_span(self):
        # Same tree shape minus the process hop: the executor-thread
        # path wraps execution in service.execute instead of pool.task.
        with ServerThread(trace="on", coalesce_window=0.005) as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(request_of(2))
                assert reply.status == 200
                doc = client.debug_trace()
        mine = [
            e for e in doc["traceEvents"]
            if e["args"]["trace_id"] == reply.trace_id
        ]
        names = {e["name"] for e in mine}
        assert {"request", "coalesce.batch", "service.execute"} <= names
        index = {e["name"]: e for e in mine}
        assert (
            index["service.execute"]["args"]["parent_id"]
            == index["coalesce.batch"]["args"]["span_id"]
        )
        assert index["service.execute"]["args"]["engine"] in (
            "fast", "batch"
        )


class TestHeaderPropagation:
    def test_client_supplied_context_is_honored(self):
        caller = TraceContext.new_root().child()
        with ServerThread(trace="on") as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(
                    request_of(3), trace_header=caller.to_header()
                )
                assert reply.status == 200
                assert reply.trace_id == caller.trace_id
                doc = client.debug_trace()
        requests = [
            e for e in doc["traceEvents"] if e["name"] == "request"
        ]
        (mine,) = [
            e for e in requests
            if e["args"]["trace_id"] == caller.trace_id
        ]
        # The server's request span is a child of the caller's span.
        assert mine["args"]["parent_id"] == caller.span_id

    def test_malformed_header_never_fails_the_request(self):
        with ServerThread(trace="on") as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(
                    request_of(4), trace_header="not-a-trace-id"
                )
                assert reply.status == 200
                # A fresh server-minted id, not the garbage echoed back.
                assert len(reply.trace_id) == 32

    def test_header_echoed_on_error_responses(self):
        with ServerThread(trace="on", queue_limit=0) as server:
            with ServiceClient(port=server.port) as client:
                shed = client.color(request_of(5))
                assert shed.status == 429
                assert len(shed.trace_id) == 32
                assert shed.body["trace_id"] == shed.trace_id

                bad = client._request(
                    "POST", "/v1/color", b"{not json",
                    extra_headers={"Content-Type": "application/json"},
                )
                assert bad.status == 400
                assert TRACE_HEADER.lower() in bad.headers

    def test_timeout_body_carries_trace_id(self):
        slow = request_of(0, n=32_768, max_time=200_000)
        with ServerThread(
            trace="on", request_timeout=0.01, drain_timeout=60.0
        ) as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(slow)
                assert reply.status == 504
                assert reply.body["trace_id"] == reply.trace_id
                assert len(reply.body["trace_id"]) == 32


class TestSamplingAndLifecycle:
    def test_sample_mode_traces_every_kth_request(self):
        with ServerThread(trace="sample=2", coalesce_window=0.005) as server:
            with ServiceClient(port=server.port) as client:
                first = client.color(request_of(10))
                second = client.color(request_of(11))
                assert first.status == second.status == 200
                # Both echo a header; only the sampled one records.
                header_1 = first.headers[TRACE_HEADER.lower()]
                header_2 = second.headers[TRACE_HEADER.lower()]
                assert header_1.endswith("-00")
                assert header_2.endswith("-01")
                doc = client.debug_trace()
        traced = {
            e["args"]["trace_id"] for e in doc["traceEvents"]
            if e["name"] == "request"
        }
        assert second.trace_id in traced
        assert first.trace_id not in traced

    def test_trace_off_by_default(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(request_of(20))
                assert reply.status == 200
                assert TRACE_HEADER.lower() not in reply.headers
                assert client._request("GET", "/debug/trace").status == 404

    def test_recorder_detached_after_shutdown(self):
        with ServerThread(trace="on") as server:
            with ServiceClient(port=server.port) as client:
                assert client.color(request_of(21)).status == 200
                assert active_recorder() is server.recorder
                health = client.healthz().body
                assert health["trace"]["capacity"] == 4096
                assert health["trace"]["spans"] >= 1
        assert active_recorder() is None

    def test_flight_recorder_ring_is_bounded(self):
        with ServerThread(trace="on", trace_buffer=4) as server:
            with ServiceClient(port=server.port) as client:
                for seed in range(30, 34):
                    assert client.color(request_of(seed)).status == 200
                doc = client.debug_trace()
        assert len(doc["traceEvents"]) <= 4
        assert doc["otherData"]["capacity"] == 4
        assert doc["otherData"]["dropped"] >= 1
