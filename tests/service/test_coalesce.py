"""The coalescing pipeline: dedup, backpressure, batch equivalence.

The headline guarantee (Issue 6 acceptance): a response computed as
part of a coalesced lockstep batch is *bit-identical*, in every
deterministic section, to the response a solo reference-engine run
would produce — for every registered algorithm.  This reuses the
differential discipline of ``tests/model/test_batch_equivalence.py``
one layer up, at the service boundary.
"""

import asyncio

import pytest

from repro.campaign.registry import (
    ALGORITHMS,
    resolve_algorithm,
    resolve_inputs,
)
from repro.errors import BackpressureError
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import BernoulliScheduler
from repro.service.coalesce import Coalescer, execute_requests
from repro.service.schema import ColorRequest, ColorResponse

SEEDS = range(4)


def bernoulli_request(algorithm, seed, n=16, max_time=50_000):
    return ColorRequest.build(
        algorithm, n, schedule="bernoulli", seed=seed, max_time=max_time
    )


def reference_response(request):
    """The oracle: a solo run on the straight-from-the-paper engine."""
    result = run_execution(
        resolve_algorithm(request.algorithm)(),
        Cycle(request.n),
        resolve_inputs(request.inputs, request.n, request.seed),
        BernoulliScheduler(p=0.4, seed=request.seed),
        max_time=request.max_time,
        engine="reference",
    )
    return ColorResponse.from_execution(request, result, engine="reference")


class TestBatchEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_coalesced_responses_match_reference_engine(self, algorithm):
        requests = [bernoulli_request(algorithm, seed) for seed in SEEDS]

        async def scenario():
            # A wide window so every submit lands in one batch.
            async with Coalescer(
                queue_limit=32, max_batch=32, coalesce_window=0.2
            ) as coalescer:
                return await asyncio.gather(
                    *(coalescer.submit(r) for r in requests)
                )

        responses = asyncio.run(scenario())
        assert all(r.batch_size == len(requests) for r in responses)
        for request, response in zip(requests, responses):
            want = reference_response(request)
            assert response.deterministic_dict() == want.deterministic_dict()

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_execute_requests_group_matches_reference(self, algorithm):
        """The synchronous execution helper alone: batch vs reference."""
        requests = [bernoulli_request(algorithm, seed) for seed in SEEDS]
        results, engine = execute_requests(list(requests))
        assert engine in ("batch", "fast")
        for request, result in zip(requests, results):
            got = ColorResponse.from_execution(request, result, engine=engine)
            want = reference_response(request)
            assert got.deterministic_dict() == want.deterministic_dict()

    def test_mixed_group_keys_split_into_separate_batches(self):
        requests = [bernoulli_request("fast5", s) for s in range(3)] + [
            bernoulli_request("alg1", s) for s in range(2)
        ]

        async def scenario():
            async with Coalescer(
                queue_limit=32, max_batch=32, coalesce_window=0.2
            ) as coalescer:
                return await asyncio.gather(
                    *(coalescer.submit(r) for r in requests)
                )

        responses = asyncio.run(scenario())
        assert [r.batch_size for r in responses] == [3, 3, 3, 2, 2]


@pytest.fixture(scope="module")
def warm_pool():
    """One warm 2-worker pool shared by the pool-path tests."""
    from repro.pool import WorkerPool

    pool = WorkerPool(2)
    yield pool
    pool.shutdown(wait=False)


class TestPoolPathEquivalence:
    """Issue 7 acceptance: routing execution to warm worker processes
    must be invisible in the payload — pool-executed responses are
    bit-identical to the solo reference-engine oracle for every
    registered algorithm, exactly like the thread-executor path."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_pool_responses_match_reference_engine(
        self, algorithm, warm_pool
    ):
        requests = [bernoulli_request(algorithm, seed) for seed in SEEDS]

        async def scenario():
            async with Coalescer(
                queue_limit=32,
                max_batch=32,
                coalesce_window=0.2,
                pool=warm_pool,
            ) as coalescer:
                return await asyncio.gather(
                    *(coalescer.submit(r) for r in requests)
                )

        responses = asyncio.run(scenario())
        assert all(r.batch_size == len(requests) for r in responses)
        for request, response in zip(requests, responses):
            want = reference_response(request)
            assert response.deterministic_dict() == want.deterministic_dict()

    def test_pool_solo_request_matches_reference(self, warm_pool):
        """A singleton group through the pool (fast-path fallback)."""
        request = bernoulli_request("fast5", 7)

        async def scenario():
            async with Coalescer(
                queue_limit=8, coalesce_window=0.0, pool=warm_pool
            ) as coalescer:
                return await coalescer.submit(request)

        response = asyncio.run(scenario())
        assert response.batch_size == 1
        assert response.cached is False
        want = reference_response(request)
        assert response.deterministic_dict() == want.deterministic_dict()

    def test_pool_result_lands_in_cache(self, warm_pool):
        request = bernoulli_request("fast6", 1)

        async def scenario():
            async with Coalescer(
                queue_limit=8, coalesce_window=0.0, pool=warm_pool
            ) as coalescer:
                first = await coalescer.submit(request)
                second = await coalescer.submit(request)
                return first, second

        first, second = asyncio.run(scenario())
        assert first.cached is False
        assert second.cached is True
        assert first.deterministic_dict() == second.deterministic_dict()


class TestIdleFlush:
    def test_lone_request_does_not_wait_for_the_window(self):
        """Issue 7 satellite: with nothing else admitted, the batch
        flushes immediately — a 5 s window must not cost 5 s.  The
        2 s wait_for is the proof: the pre-fix pipeline always held
        the full window and would blow it."""

        async def scenario():
            async with Coalescer(queue_limit=8, coalesce_window=5.0) as co:
                return await asyncio.wait_for(
                    co.submit(bernoulli_request("fast5", 0)), 2.0
                )

        response = asyncio.run(scenario())
        assert response.verdict["ok"] is True
        assert response.batch_size == 1

    def test_sequential_requests_each_flush_immediately(self):
        async def scenario():
            async with Coalescer(queue_limit=8, coalesce_window=5.0) as co:
                responses = []
                for seed in range(3):
                    responses.append(
                        await asyncio.wait_for(
                            co.submit(bernoulli_request("fast5", seed)), 2.0
                        )
                    )
                return responses

        responses = asyncio.run(scenario())
        assert [r.batch_size for r in responses] == [1, 1, 1]
        assert all(r.verdict["ok"] for r in responses)

    def test_concurrent_burst_still_coalesces(self):
        """Idle-flush must not break coalescing when company exists:
        a synchronous burst still forms one full batch."""
        requests = [bernoulli_request("fast5", seed) for seed in SEEDS]

        async def scenario():
            async with Coalescer(
                queue_limit=32, max_batch=32, coalesce_window=0.2
            ) as co:
                return await asyncio.gather(
                    *(co.submit(r) for r in requests)
                )

        responses = asyncio.run(scenario())
        assert all(r.batch_size == len(requests) for r in responses)


class TestSingleFlightDedup:
    def test_concurrent_identical_requests_compute_once(self, monkeypatch):
        calls = []
        real = execute_requests

        def counting(requests):
            calls.append(len(requests))
            return real(requests)

        monkeypatch.setattr(
            "repro.service.coalesce.execute_requests", counting
        )
        request = bernoulli_request("fast5", 0)

        async def scenario():
            async with Coalescer(queue_limit=8, coalesce_window=0.05) as co:
                responses = await asyncio.gather(
                    *(co.submit(request) for _ in range(10))
                )
                # The result is now cached: an eleventh request is a
                # pure cache hit, no new claim, no new execution.
                eleventh = await co.submit(request)
                return responses, eleventh, co.flight.joins, co.cache.hits

        responses, eleventh, joins, hits = asyncio.run(scenario())
        # One execution of one request served all ten concurrent callers.
        assert calls == [1]
        assert joins == 9
        # Leader's response is fresh; followers are flagged as shared.
        assert [r.cached for r in responses] == [False] + [True] * 9
        assert len({r.verdict["ok"] for r in responses}) == 1
        assert eleventh.cached is True
        assert hits == 1


class TestBackpressure:
    def test_zero_queue_limit_sheds_everything(self):
        async def scenario():
            async with Coalescer(queue_limit=0) as coalescer:
                with pytest.raises(BackpressureError):
                    await coalescer.submit(bernoulli_request("fast5", 0))

        asyncio.run(scenario())

    def test_overflow_sheds_with_retry_after(self):
        async def scenario():
            async with Coalescer(
                queue_limit=1, coalesce_window=0.2
            ) as coalescer:
                first = asyncio.ensure_future(
                    coalescer.submit(bernoulli_request("fast5", 0))
                )
                await asyncio.sleep(0)  # let the first request enqueue
                assert coalescer.depth == 1
                with pytest.raises(BackpressureError) as excinfo:
                    await coalescer.submit(bernoulli_request("fast5", 1))
                assert excinfo.value.retry_after >= 1.0
                # The admitted request still completes normally.
                response = await first
                assert response.verdict["ok"] is True
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.depth == 0

    def test_shed_request_can_be_retried(self):
        """Shedding must clear the single-flight claim, or the retry
        would join a future nobody will ever resolve."""

        async def scenario():
            async with Coalescer(queue_limit=0) as shedder:
                request = bernoulli_request("fast5", 2)
                with pytest.raises(BackpressureError):
                    await shedder.submit(request)
                assert len(shedder.flight) == 0
            async with Coalescer(queue_limit=8) as ok:
                response = await ok.submit(request)
                assert response.verdict["ok"] is True

        asyncio.run(scenario())


class TestDrain:
    def test_drain_waits_for_inflight_work(self):
        async def scenario():
            async with Coalescer(queue_limit=8, coalesce_window=0.05) as co:
                futures = [
                    asyncio.ensure_future(
                        co.submit(bernoulli_request("fast5", seed))
                    )
                    for seed in range(3)
                ]
                await asyncio.sleep(0)
                assert co.depth == 3
                assert await co.drain(10.0)
                assert co.depth == 0
                for future in futures:
                    assert (await future).verdict["ok"] is True

        asyncio.run(scenario())
