"""Cache semantics: LRU eviction order, single-flight dedup."""

import asyncio

import pytest

from repro.service.cache import LRUCache, SingleFlight


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats() == {
            "entries": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_eviction_order_is_lru(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.put("d", "d")  # evicts a — the least recently used
        assert cache.get("a") is None
        assert cache.keys() == ("b", "c", "d")
        assert cache.evictions == 1

    def test_get_promotes_to_most_recently_used(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        assert cache.get("a") == "a"  # a is now MRU
        cache.put("d", "d")  # evicts b, not a
        assert cache.keys() == ("c", "a", "d")
        assert cache.get("a") == "a"  # promoted again
        assert cache.get("b") is None
        assert cache.keys() == ("c", "d", "a")

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert cache.evictions == 0
        cache.put("c", 3)  # evicts b — a was refreshed more recently
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_capacity_zero_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestSingleFlight:
    def test_leader_then_followers(self):
        async def scenario():
            flight = SingleFlight()
            future, leader = flight.claim("k")
            assert leader
            same, second = flight.claim("k")
            assert same is future and not second
            assert flight.joins == 1

            waiters = [
                asyncio.ensure_future(flight.wait(future)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            flight.resolve("k", 42)
            assert await asyncio.gather(*waiters) == [42, 42, 42]
            assert "k" not in flight
            # The key is free again: a new claim is a new leader.
            _, leader_again = flight.claim("k")
            assert leader_again

        asyncio.run(scenario())

    def test_reject_fails_all_waiters(self):
        async def scenario():
            flight = SingleFlight()
            future, _ = flight.claim("k")
            waiter = asyncio.ensure_future(flight.wait(future))
            await asyncio.sleep(0)
            flight.reject("k", RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await waiter
            assert "k" not in flight

        asyncio.run(scenario())

    def test_wait_shields_computation_from_cancelled_waiter(self):
        async def scenario():
            flight = SingleFlight()
            future, _ = flight.claim("k")
            impatient = asyncio.ensure_future(flight.wait(future))
            patient = asyncio.ensure_future(flight.wait(future))
            await asyncio.sleep(0)
            impatient.cancel()
            await asyncio.sleep(0)
            # One waiter timing out must not cancel the shared future.
            assert not future.cancelled()
            flight.resolve("k", "done")
            assert await patient == "done"

        asyncio.run(scenario())
