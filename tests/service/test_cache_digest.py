"""Content-digest seal tests: corruption detection end to end.

The ``cache.bitflip`` fault site corrupts the *stored* copy of a
response at cache-put time while handing the in-flight waiters the
genuine object — so the corruption is only observable on the next
cache hit, exactly where the digest check sits.
"""

import pytest

from repro.chaos.plan import FaultPlan, FaultRule
from repro.service.cache import LRUCache
from repro.service.client import ServiceClient
from repro.service.schema import ColorRequest, ColorResponse
from repro.service.server import ServerThread


def request_of(seed, *, n=16):
    return ColorRequest.build(
        "fast5", n, schedule="bernoulli", seed=seed, max_time=200_000
    )


class TestDigestSeal:
    def test_digest_round_trips_and_validates(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                body = client.color(request_of(1)).body
        response = ColorResponse.from_dict(body)
        assert response.content_digest
        assert response.digest_ok
        assert response.content_digest == response.compute_digest()

    def test_tampering_breaks_the_seal(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                body = dict(client.color(request_of(1)).body)
        body["colors_used"] = list(body["colors_used"]) + ["tampered"]
        assert not ColorResponse.from_dict(body).digest_ok

    def test_empty_digest_is_vacuously_ok(self):
        """Back-compat: pre-digest payloads (no seal) still load."""
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                body = dict(client.color(request_of(1)).body)
        body["content_digest"] = ""
        assert ColorResponse.from_dict(body).digest_ok


class TestLRUCacheInvalidate:
    def test_invalidate_removes_without_counting_eviction(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        assert cache.invalidate("k") is True
        assert cache.get("k") is None
        assert cache.invalidate("k") is False
        assert cache.stats()["evictions"] == 0


class TestBitflipDetection:
    def test_corrupted_cache_entry_detected_and_recomputed(self):
        # Exactly one bit flip: the first cache put stores a corrupted
        # copy.  The first reply (the in-flight waiter) is genuine; the
        # second request hits the poisoned entry, the digest check
        # rejects it, and the service recomputes instead of serving it.
        plan = FaultPlan(
            0, [FaultRule("cache.bitflip", rate=1.0, max_faults=1)]
        )
        with ServerThread(chaos=plan, coalesce_window=0.01) as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                first = client.color(request_of(3))
                assert first.status == 200
                genuine = ColorResponse.from_dict(first.body)
                assert genuine.digest_ok

                second = client.color(request_of(3))
                assert second.status == 200
                recomputed = ColorResponse.from_dict(second.body)
                assert recomputed.digest_ok
                assert second.body["cached"] is False  # hit was rejected
                assert (
                    recomputed.deterministic_dict()
                    == genuine.deterministic_dict()
                )

                # Third time: the re-put entry is clean (max_faults=1),
                # so the cache serves it and the digest holds.
                third = client.color(request_of(3))
                assert third.status == 200
                assert third.body["cached"] is True
                assert ColorResponse.from_dict(third.body).digest_ok

            assert (
                server.registry.value("service_cache_digest_failures_total")
                == 1
            )
            metrics_site = server.registry.value(
                "chaos_faults_injected_total", site="cache.bitflip"
            )
            assert metrics_site == 1
