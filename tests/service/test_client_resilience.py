"""ServiceClient resilience tests: timeout semantics, retries, breaker.

The timeout test pins the satellite fix: after a socket timeout the
client must *not* transparently re-send (the server may still be
processing the original), it must drop the connection and raise
:class:`~repro.errors.ServiceTimeout`.
"""

import threading
import time

import pytest

from repro.chaos.plan import FaultPlan, FaultRule
from repro.chaos.resilience import BackoffPolicy, CircuitBreaker
from repro.errors import ServiceError, ServiceTimeout
from repro.service.client import ServiceClient
from repro.service.schema import ColorRequest
from repro.service.server import ServerThread


def request_of(seed, *, n=16, max_time=200_000):
    return ColorRequest.build(
        "fast5", n, schedule="bernoulli", seed=seed, max_time=max_time
    )


class RecordingSleeper:
    def __init__(self):
        self.delays = []

    def __call__(self, delay):
        self.delays.append(delay)  # never actually sleeps


class TestTimeoutSemantics:
    def test_socket_timeout_raises_not_retries(self):
        # A slow handler (injected dispatch latency far beyond the
        # client timeout) must surface as ServiceTimeout.  Were the old
        # behavior still in place — socket.timeout swallowed by the
        # OSError reconnect arm — the client would silently re-send and
        # this would either succeed or raise ServiceError instead.
        plan = FaultPlan(
            0, [FaultRule("service.dispatch.latency", rate=1.0, param=5.0)]
        )
        with ServerThread(chaos=plan) as server:
            with ServiceClient(port=server.port, timeout=0.5) as client:
                assert client.wait_ready(10)
                started = time.monotonic()
                with pytest.raises(ServiceTimeout) as info:
                    client.color(request_of(1))
                elapsed = time.monotonic() - started
                # One timeout's worth of waiting, not two (no re-send).
                assert 0.4 <= elapsed < 2.0
                assert info.value.elapsed >= 0.4
                # The mid-exchange connection was dropped, and the next
                # call gets a fresh one that works once chaos is spent.
                assert client._conn is None

    def test_dead_server_still_raises_service_error(self):
        with ServerThread() as server:
            port = server.port
        with ServiceClient(port=port, timeout=2.0) as client:
            with pytest.raises(ServiceError):
                client.healthz()


class TestRetryLoop:
    def test_retries_injected_500s_to_success(self):
        plan = FaultPlan(
            0, [FaultRule("service.dispatch.error", rate=1.0, max_faults=2)]
        )
        sleeper = RecordingSleeper()
        policy = BackoffPolicy(base=0.01, jitter=0.0, seed=0, max_retries=4)
        with ServerThread(chaos=plan) as server:
            with ServiceClient(
                port=server.port, resilience=policy, sleeper=sleeper
            ) as client:
                assert client.wait_ready(10)
                reply = client.color(request_of(2))
        assert reply.status == 200
        assert reply.attempts == 3  # two injected 500s, then success
        assert sleeper.delays == [0.01, 0.02]  # deterministic schedule

    def test_retry_budget_exhausts_and_returns_last_reply(self):
        plan = FaultPlan(
            0, [FaultRule("service.dispatch.error", rate=1.0)]
        )
        sleeper = RecordingSleeper()
        policy = BackoffPolicy(base=0.01, jitter=0.0, max_retries=2)
        with ServerThread(chaos=plan) as server:
            with ServiceClient(
                port=server.port, resilience=policy, sleeper=sleeper
            ) as client:
                assert client.wait_ready(10)
                reply = client.color(request_of(3))
        assert reply.status == 500
        assert reply.body.get("injected") is True
        assert reply.attempts == 3  # initial + max_retries
        assert len(sleeper.delays) == 2

    def test_429_honors_retry_after(self):
        plan = FaultPlan(
            0,
            [
                FaultRule(
                    "service.queue.saturate", rate=1.0, max_faults=1,
                    param=0.8,
                )
            ],
        )
        sleeper = RecordingSleeper()
        policy = BackoffPolicy(base=0.01, cap=2.0, jitter=0.0, max_retries=3)
        with ServerThread(chaos=plan) as server:
            with ServiceClient(
                port=server.port, resilience=policy, sleeper=sleeper
            ) as client:
                assert client.wait_ready(10)
                reply = client.color(request_of(4))
        assert reply.status == 200
        assert reply.attempts == 2
        # The injected Retry-After (0.8s) overrides the 0.01s schedule.
        assert sleeper.delays == [0.8]

    def test_deadline_caps_the_retry_loop(self):
        # A real sleeper here: the deadline is a wall-clock budget, so
        # the backoff sleeps must actually consume it.
        plan = FaultPlan(0, [FaultRule("service.dispatch.error", rate=1.0)])
        slept = []

        def sleeper(delay):
            slept.append(delay)
            time.sleep(delay)

        policy = BackoffPolicy(base=10.0, cap=10.0, jitter=0.0, max_retries=8)
        with ServerThread(chaos=plan) as server:
            with ServiceClient(
                port=server.port, resilience=policy,
                deadline=0.4, sleeper=sleeper,
            ) as client:
                assert client.wait_ready(10)
                started = time.monotonic()
                reply = client.color(request_of(5))
                elapsed = time.monotonic() - started
        assert reply.status == 500
        # The 10s backoff was clamped into the 0.4s budget: one clamped
        # sleep spends it, then the loop stops instead of using all 8.
        assert reply.attempts <= 3
        assert all(d <= 0.4 for d in slept)
        assert elapsed < 5.0

    def test_one_shot_without_policy_is_unchanged(self):
        plan = FaultPlan(
            0, [FaultRule("service.dispatch.error", rate=1.0, max_faults=1)]
        )
        with ServerThread(chaos=plan) as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                reply = client.color(request_of(6))
        assert reply.status == 500
        assert reply.attempts == 1


class TestCircuitBreaker:
    def test_breaker_fails_fast_with_synthetic_503(self):
        plan = FaultPlan(0, [FaultRule("service.dispatch.error", rate=1.0)])
        sleeper = RecordingSleeper()
        policy = BackoffPolicy(base=0.001, jitter=0.0, max_retries=6)
        breaker = CircuitBreaker(failure_threshold=3, reset_after=60.0)
        with ServerThread(chaos=plan) as server:
            with ServiceClient(
                port=server.port, resilience=policy,
                breaker=breaker, sleeper=sleeper,
            ) as client:
                assert client.wait_ready(10)
                reply = client.color(request_of(7))
        # Three real 500s trip the breaker; the remaining attempts are
        # answered locally without touching the network.
        assert reply.status == 503
        assert reply.body["circuit_open"] is True
        assert breaker.state == CircuitBreaker.OPEN

    def test_healthy_traffic_never_trips(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=60.0)
        policy = BackoffPolicy(base=0.001, max_retries=2)
        with ServerThread() as server:
            with ServiceClient(
                port=server.port, resilience=policy, breaker=breaker
            ) as client:
                assert client.wait_ready(10)
                for seed in range(3):
                    assert client.color(request_of(seed)).status == 200
        assert breaker.state == CircuitBreaker.CLOSED


class TestLoadgenRetryMode:
    def test_loadgen_retry_summary(self):
        from repro.service.loadgen import run_loadgen

        plan = FaultPlan(
            1, [FaultRule("service.dispatch.error", rate=0.3, max_faults=6)]
        )
        with ServerThread(chaos=plan, coalesce_window=0.01) as server:
            summary = run_loadgen(
                port=server.port,
                requests=24,
                concurrency=3,
                n=16,
                retry=True,
                retry_policy=BackoffPolicy(
                    base=0.01, jitter=0.5, seed=0, max_retries=6
                ),
                timeout=30.0,
            )
        assert summary["statuses"] == {"200": 24}
        assert summary["outcomes"]["errors"] == 0
        assert summary["retries"]["enabled"] is True
        assert summary["retries"]["total"] >= 1
        histogram = summary["retries"]["attempts_histogram"]
        assert sum(histogram.values()) == 24
        assert (
            sum((int(k) - 1) * v for k, v in histogram.items())
            == summary["retries"]["total"]
        )

    def test_loadgen_default_counts_429s_instead_of_retrying(self):
        from repro.service.loadgen import run_loadgen

        plan = FaultPlan(
            0, [FaultRule("service.queue.saturate", rate=1.0, param=0.01)]
        )
        with ServerThread(chaos=plan) as server:
            summary = run_loadgen(
                port=server.port, requests=6, concurrency=2, n=16,
            )
        assert summary["retries"]["enabled"] is False
        assert summary["retries"]["total"] == 0
        assert summary["shed"] == 6
        assert summary["statuses"].get("429") == 6
