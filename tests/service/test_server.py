"""End-to-end HTTP tests: routes, cache, backpressure, timeout, drain.

Each test runs a real :class:`ColorServer` on a background event-loop
thread (ephemeral port) and talks to it over actual sockets with the
stdlib client — the same path ``repro-color serve`` + ``loadgen``
exercise, minus the subprocess.
"""

import http.client
import json

import pytest

from repro.service.client import ServiceClient
from repro.service.loadgen import run_loadgen
from repro.service.schema import ColorRequest
from repro.service.server import ServerThread


def request_of(seed, *, algorithm="fast5", n=24, max_time=200_000):
    return ColorRequest.build(
        algorithm, n, schedule="bernoulli", seed=seed, max_time=max_time
    )


class TestRoutes:
    def test_color_healthz_metrics_roundtrip(self):
        with ServerThread(coalesce_window=0.01) as server:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                health = client.healthz().body
                assert health["status"] == "ok"
                assert health["queue_depth"] == 0

                reply = client.color(request_of(1))
                assert reply.status == 200
                assert reply.body["verdict"]["ok"] is True
                assert reply.body["cached"] is False
                assert reply.body["engine"] in ("fast", "batch")
                assert reply.body["request_key"] == request_of(1).request_key

                again = client.color(request_of(1))
                assert again.status == 200
                assert again.body["cached"] is True
                # Deterministic sections identical between miss and hit.
                for key in ("verdict", "activations", "colors_used"):
                    assert again.body[key] == reply.body[key]

                metrics = client.metrics_text()
                assert "service_cache_hits_total 1" in metrics
                assert "service_cache_misses_total 1" in metrics
                assert 'service_requests_total{route="/v1/color",status="200"} 2' in metrics

    def test_unknown_route_and_wrong_methods(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                assert client._request("GET", "/nope").status == 404
                assert client._request("GET", "/v1/color").status == 405
                assert client._request("POST", "/healthz").status == 405
                assert client._request("POST", "/metrics").status == 405

    def test_validation_and_parse_errors(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color({"algorithm": "nope", "n": 10})
                assert reply.status == 400
                assert "unknown algorithm" in reply.body["error"]

                reply = client.color({"algorithm": "fast5"})
                assert reply.status == 400
                assert "missing required" in reply.body["error"]

                reply = client.color({"algorithm": "fast5", "n": 8, "typo": 1})
                assert reply.status == 400

            # Raw non-JSON body, below the client abstraction.
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
            conn.request(
                "POST", "/v1/color", b"{not json",
                {"Content-Type": "application/json"},
            )
            raw = conn.getresponse()
            body = json.loads(raw.read())
            assert raw.status == 400
            assert "invalid JSON" in body["error"]
            conn.close()

    def test_oversize_body_gets_413_and_connection_close(self):
        # The unread body makes the connection unreusable: the server
        # must answer 413 *and* close, and stay healthy afterwards.
        with ServerThread() as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
            conn.request(
                "POST", "/v1/color", b"x" * 70_000,
                {"Content-Type": "application/json"},
            )
            raw = conn.getresponse()
            assert raw.status == 413
            assert raw.getheader("Connection") == "close"
            conn.close()
            with ServiceClient(port=server.port) as client:
                assert client.healthz().body["status"] == "ok"

    def test_time_exhausted_diagnostics_are_served(self):
        # Simulation-time exhaustion is a *successful* exchange (200)
        # carrying the diagnostics, mirroring TimeExhaustedError.
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(
                    ColorRequest.build("fast5", 8, schedule="sync", max_time=1)
                )
                assert reply.status == 200
                assert reply.body["verdict"]["ok"] is False
                diag = reply.body["time_exhausted"]
                assert diag["final_time"] == 1
                assert diag["pending"]


class TestBackpressure:
    def test_queue_overflow_sheds_with_429(self):
        with ServerThread(queue_limit=0) as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(request_of(0))
                assert reply.status == 429
                assert reply.retry_after is not None
                assert reply.retry_after >= 1.0
                assert "retry-after" in reply.headers
                metrics = client.metrics_text()
                assert "service_shed_total 1" in metrics
                # Health stays green: shedding is load management, not
                # failure.
                assert client.healthz().body["status"] == "ok"


class TestTimeout:
    def test_slow_request_times_out_with_504_then_lands_in_cache(self):
        # The coalescing window no longer delays a lone request (it
        # idle-flushes), so the timeout must come from the simulation
        # itself: a 32768-process run takes hundreds of milliseconds
        # on any hardware, far past the 10 ms budget.  The computation
        # is not abandoned — it finishes behind the 504 and a retry is
        # served from cache, exactly as the error message advertises.
        import time

        slow = request_of(0, n=32_768, max_time=200_000)
        with ServerThread(
            request_timeout=0.01, drain_timeout=60.0
        ) as server:
            with ServiceClient(port=server.port) as client:
                reply = client.color(slow)
                assert reply.status == 504
                assert "timeout" in reply.body["error"]
                assert reply.body["request_key"] == slow.request_key

                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    retry = client.color(slow)
                    if retry.status == 200:
                        break
                    time.sleep(0.1)
                assert retry.status == 200
                assert retry.body["cached"] is True


class TestCoalescingOverHTTP:
    def test_concurrent_unique_requests_coalesce(self):
        with ServerThread(coalesce_window=0.1, max_batch=16) as server:
            summary = run_loadgen(
                port=server.port,
                requests=8,
                concurrency=8,
                duplicates=0.0,
                n=16,
                max_time=50_000,
            )
            assert summary["statuses"] == {"200": 8}
            assert summary["outcomes"]["errors"] == 0
            # With all eight posted inside one 100 ms window, at least
            # one lockstep batch must have formed.
            assert summary["outcomes"]["coalesced"] >= 2
            occupancy = server.registry.value("service_batch_occupancy")
            assert occupancy is not None and occupancy["max"] >= 2

    def test_duplicate_burst_hits_cache(self):
        with ServerThread() as server:
            summary = run_loadgen(
                port=server.port,
                requests=30,
                concurrency=4,
                duplicates=1.0,
                working_set=2,
                n=16,
                max_time=50_000,
            )
            assert summary["statuses"] == {"200": 30}
            # Two unique configurations; everything else was served
            # from cache or joined in flight.
            assert summary["outcomes"]["cached"] >= 26
            hits = server.registry.value("service_cache_hits_total")
            assert hits is not None and hits >= 20


class TestDrain:
    def test_graceful_shutdown_completes_inflight_work(self):
        harness = ServerThread(coalesce_window=0.05)
        server = harness.__enter__()
        try:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(10)
                assert client.color(request_of(3)).status == 200
        finally:
            harness.__exit__(None, None, None)
        # After a clean exit the pipeline is empty and closed.
        assert server.coalescer.depth == 0
        assert server.draining is True

    def test_drain_records_duration_histogram(self):
        with ServerThread() as server:
            with ServiceClient(port=server.port) as client:
                assert client.color(request_of(5)).status == 200
        drain = server.registry.value("service_drain_seconds")
        assert drain is not None and drain["count"] == 1
        assert drain["max"] < 30.0


class TestPoolMode:
    """The server on warm worker processes (--pool-workers)."""

    def test_pool_server_roundtrip_and_metrics(self):
        harness = ServerThread(pool_workers=2, coalesce_window=0.01)
        server = harness.__enter__()
        try:
            with ServiceClient(port=server.port) as client:
                assert client.wait_ready(15)
                health = client.healthz().body
                # Workers are pre-spawned before the socket opens.
                assert health["pool"]["workers"] == 2
                reply = client.color(request_of(9))
                assert reply.status == 200
                assert reply.body["verdict"]["ok"] is True
                again = client.color(request_of(9))
                assert again.body["cached"] is True
                metrics = client.metrics_text()
                assert "pool_tasks_total" in metrics
                assert "pool_workers 2" in metrics
        finally:
            harness.__exit__(None, None, None)
        assert server.coalescer.depth == 0
        # The pool was reaped with the server.
        assert server._pool is None

    def test_pool_server_coalesces_bursts(self):
        with ServerThread(
            pool_workers=2, coalesce_window=0.1, max_batch=16
        ) as server:
            summary = run_loadgen(
                port=server.port,
                requests=8,
                concurrency=8,
                duplicates=0.0,
                n=16,
                max_time=50_000,
            )
            assert summary["statuses"] == {"200": 8}
            assert summary["outcomes"]["errors"] == 0
            tasks_ok = server.registry.value(
                "pool_tasks_total", kind="group", status="ok"
            )
            assert tasks_ok is not None and tasks_ok >= 1
