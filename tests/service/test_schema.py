"""Request/response schema: validation, canonical keys, hash parity."""

import pytest

from repro.errors import RequestValidationError
from repro.campaign.spec import TaskSpec
from repro.model.execution import run_execution
from repro.model.topology import Cycle
from repro.schedulers import SynchronousScheduler
from repro.service.schema import MAX_N, MAX_TIME_CAP, ColorRequest, ColorResponse
from repro.util.hashing import canonical_hash


def make(**overrides):
    payload = {"algorithm": "fast5", "n": 24}
    payload.update(overrides)
    return ColorRequest.from_json_dict(payload)


class TestValidation:
    def test_defaults(self):
        request = make()
        assert request.topology == "cycle"
        assert request.inputs == "random"
        assert request.schedule == "sync"
        assert request.seed == 0
        assert request.max_time == 200_000

    def test_body_must_be_object(self):
        with pytest.raises(RequestValidationError, match="JSON object"):
            ColorRequest.from_json_dict([1, 2])

    def test_missing_required(self):
        with pytest.raises(RequestValidationError, match="missing required"):
            ColorRequest.from_json_dict({"algorithm": "fast5"})
        with pytest.raises(RequestValidationError, match="missing required"):
            ColorRequest.from_json_dict({"n": 8})

    def test_unknown_field_rejected(self):
        # A typo'd field must not silently change the cache key.
        with pytest.raises(RequestValidationError, match="algorthm"):
            ColorRequest.from_json_dict(
                {"algorithm": "fast5", "n": 8, "algorthm": "alg1"}
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("algorithm", "nope"),
            ("topology", "torus9"),
            ("inputs", "nope"),
            ("schedule", "nope"),
        ],
    )
    def test_unknown_registry_names(self, field, value):
        with pytest.raises(RequestValidationError, match="unknown"):
            make(**{field: value})

    def test_dotted_paths_refused(self):
        # Campaign specs may import dotted paths; untrusted service
        # requests must not be able to name code to import.
        with pytest.raises(RequestValidationError):
            make(algorithm="os:system")

    @pytest.mark.parametrize("n", [2, 0, -5, MAX_N + 1])
    def test_n_bounds(self, n):
        with pytest.raises(RequestValidationError, match="n must be"):
            make(n=n)

    @pytest.mark.parametrize("max_time", [0, -1, MAX_TIME_CAP + 1])
    def test_max_time_bounds(self, max_time):
        with pytest.raises(RequestValidationError, match="max_time"):
            make(max_time=max_time)

    @pytest.mark.parametrize("field", ["n", "seed", "max_time"])
    def test_integers_required(self, field):
        with pytest.raises(RequestValidationError, match="integer"):
            make(**{field: "7"})
        with pytest.raises(RequestValidationError, match="integer"):
            make(**{field: True})

    def test_schedule_params_must_be_object_of_scalars(self):
        with pytest.raises(RequestValidationError, match="JSON object"):
            make(schedule_params=[["p", 0.5]])
        with pytest.raises(RequestValidationError, match="scalar"):
            make(schedule="bernoulli", schedule_params={"p": [0.5]})

    def test_valid_schedule_params(self):
        request = make(schedule="bernoulli", schedule_params={"p": 0.25})
        assert request.schedule_params == (("p", 0.25),)


class TestKeys:
    def test_key_is_canonical_hash_of_config(self):
        request = make(seed=3)
        assert request.request_key == canonical_hash(request.config())

    def test_key_independent_of_field_order(self):
        a = ColorRequest.from_json_dict(
            {"algorithm": "fast5", "n": 24, "seed": 1, "schedule": "bernoulli"}
        )
        b = ColorRequest.from_json_dict(
            {"schedule": "bernoulli", "seed": 1, "n": 24, "algorithm": "fast5"}
        )
        assert a.request_key == b.request_key

    def test_key_sensitive_to_every_axis(self):
        base = make(seed=0)
        for variant in (
            make(seed=1),
            make(n=25),
            make(algorithm="alg1"),
            make(schedule="bernoulli"),
            make(max_time=100),
            make(inputs="monotone"),
        ):
            assert variant.request_key != base.request_key

    def test_key_excludes_engine(self):
        # The engines are observably identical; a cached result may be
        # served whatever engine would have run.
        request = make(seed=5)
        assert "engine" not in request.config()

    def test_task_spec_hash_parity(self):
        """Service keys and TaskSpec hashes derive from one helper over
        one field vocabulary — they must agree exactly."""
        request = make(seed=7, schedule="bernoulli", schedule_params={"p": 0.4})
        for engine in ("fast", "batch", "reference"):
            spec = request.task_spec(engine)
            want = TaskSpec(
                algorithm="fast5",
                topology="cycle",
                n=24,
                inputs="random",
                schedule="bernoulli",
                schedule_params=(("p", 0.4),),
                seed=7,
                max_time=200_000,
                engine=engine,
            )
            assert spec.task_hash == want.task_hash
            # The request key is the engine-free projection of the same
            # config dict.
            config = spec.config()
            config.pop("engine")
            assert request.request_key == canonical_hash(config)


class TestResponse:
    def _run(self, request):
        from repro.campaign.registry import (
            resolve_algorithm,
            resolve_inputs,
        )

        return run_execution(
            resolve_algorithm(request.algorithm)(),
            Cycle(request.n),
            resolve_inputs(request.inputs, request.n, request.seed),
            SynchronousScheduler(),
            max_time=request.max_time,
        )

    def test_from_execution_verdict(self):
        request = ColorRequest.build("fast5", 16, schedule="sync", seed=2)
        response = ColorResponse.from_execution(
            request, self._run(request), engine="fast", elapsed=0.01
        )
        assert response.verdict["ok"] is True
        assert response.verdict["terminated"] == 16
        assert response.activations["round_complexity"] >= 1
        assert response.colors_used
        assert response.time_exhausted is None
        assert response.request_key == request.request_key
        assert response.task_hash == request.task_spec("fast").task_hash

    def test_time_exhausted_diagnostics(self):
        request = ColorRequest.build("fast5", 8, schedule="sync", max_time=1)
        response = ColorResponse.from_execution(
            request, self._run(request), engine="fast"
        )
        assert response.verdict["ok"] is False
        assert response.time_exhausted is not None
        assert response.time_exhausted["final_time"] == 1
        assert response.time_exhausted["pending"]

    def test_dict_round_trip(self):
        request = ColorRequest.build("fast5", 12, seed=4)
        response = ColorResponse.from_execution(
            request, self._run(request), engine="fast", batch_size=3
        )
        assert ColorResponse.from_dict(response.to_dict()) == response

    def test_deterministic_dict_drops_provenance(self):
        request = ColorRequest.build("fast5", 12, seed=4)
        response = ColorResponse.from_execution(
            request, self._run(request), engine="fast", batch_size=3, elapsed=1.0
        )
        det = response.deterministic_dict()
        assert "engine" not in det
        assert "batch_size" not in det
        assert "elapsed" not in det
        assert "cached" not in det
        assert det["verdict"]["ok"] is True
