"""The load generator's deterministic mix and summary arithmetic."""

import pytest

from repro.service.loadgen import build_mix, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_singleton(self):
        assert percentile([5.0], 0.5) == 5.0
        assert percentile([5.0], 0.99) == 5.0

    def test_quantiles(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 100.0
        assert percentile(data, 0.5) == 51.0  # nearest-rank on 0..99


class TestBuildMix:
    def test_deterministic(self):
        a = build_mix(50, duplicates=0.3, n=16)
        b = build_mix(50, duplicates=0.3, n=16)
        assert [r.request_key for r in a] == [r.request_key for r in b]

    def test_all_unique_when_no_duplicates(self):
        mix = build_mix(40, duplicates=0.0, n=16)
        keys = [r.request_key for r in mix]
        assert len(set(keys)) == 40

    def test_duplicate_fraction_draws_from_working_set(self):
        mix = build_mix(100, duplicates=0.5, working_set=4, n=16)
        keys = [r.request_key for r in mix]
        # 50 of 100 requests come from 4 hot configurations.
        from collections import Counter

        counts = Counter(keys)
        repeated = sum(c for c in counts.values() if c > 1)
        assert repeated == 50
        assert sum(1 for c in counts.values() if c > 1) == 4

    def test_all_duplicates(self):
        mix = build_mix(30, duplicates=1.0, working_set=2, n=16)
        assert len({r.request_key for r in mix}) == 2

    def test_duplicates_out_of_range(self):
        with pytest.raises(ValueError):
            build_mix(10, duplicates=1.5)

    def test_seed_base_shifts_the_burst(self):
        a = {r.request_key for r in build_mix(20, seed_base=0)}
        b = {r.request_key for r in build_mix(20, seed_base=1000)}
        assert not a & b
