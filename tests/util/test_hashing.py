"""The shared canonical-hash helper (repro.util.hashing).

Campaign task hashes, journal resume keys and service request keys all
derive from this one function — these tests pin the encoding so a
refactor cannot silently re-key every stored artifact.
"""

from repro.util.hashing import canonical_hash, canonical_json


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_minimal_separators(self):
        assert canonical_json({"a": [1, 2], "b": {"c": 3}}) == '{"a":[1,2],"b":{"c":3}}'


class TestCanonicalHash:
    def test_content_identity(self):
        assert canonical_hash({"x": 1, "y": [2, 3]}) == canonical_hash(
            {"y": [2, 3], "x": 1}
        )

    def test_content_sensitivity(self):
        assert canonical_hash({"x": 1}) != canonical_hash({"x": 2})

    def test_digest_chars(self):
        assert len(canonical_hash({"x": 1})) == 16
        assert len(canonical_hash({"x": 1}, digest_chars=40)) == 40
        assert canonical_hash({"x": 1}, digest_chars=40).startswith(
            canonical_hash({"x": 1})
        )

    def test_pinned_digest(self):
        # Frozen on purpose: changing the encoding re-keys every
        # journal and cache in existence.  Update only deliberately.
        assert canonical_hash({"algorithm": "fast5", "n": 24}) == "965b6031de66117d"

    def test_campaign_reexport_is_same_function(self):
        from repro.campaign.spec import canonical_hash as campaign_hash

        assert campaign_hash is canonical_hash
