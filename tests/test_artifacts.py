"""The checked-in witness artifacts stay valid.

`artifacts/` holds serialized witnesses for the reproduction findings;
these tests reload and replay them so the artifacts can never drift
from the code.
"""

import pathlib

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SixColoring
from repro.model.schedule import FiniteSchedule
from repro.model.witness import Witness

ARTIFACTS = pathlib.Path(__file__).resolve().parent.parent / "artifacts"


class TestE13WitnessArtifact:
    def _load(self) -> Witness:
        return Witness.load(ARTIFACTS / "e13_livelock_witness.json")

    def test_loads(self):
        witness = self._load()
        assert witness.topology.n == 3
        assert witness.inputs == [1, 2, 3]
        assert "E13" in witness.description

    def test_replays_to_nontermination(self):
        witness = self._load()
        # Extend the recurrent tail: activations grow without returns.
        extended = FiniteSchedule(
            list(witness.steps) + [witness.steps[-1]] * 300,
        )
        from repro.model.execution import run_execution

        result = run_execution(
            FiveColoring(), witness.topology, witness.inputs, extended,
        )
        assert result.outputs.keys() == {0}
        assert result.activations[1] >= 300

    def test_algorithm1_unaffected_by_same_artifact(self):
        witness = self._load()
        extended = FiniteSchedule(
            list(witness.steps) + [witness.steps[-1]] * 100,
        )
        from repro.model.execution import run_execution

        result = run_execution(
            SixColoring(), witness.topology, witness.inputs, extended,
        )
        assert result.all_terminated
