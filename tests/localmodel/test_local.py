"""Tests for the synchronous LOCAL substrate and its baselines."""

import pytest

from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import coloring_violations
from repro.errors import ExecutionError
from repro.localmodel import (
    ColeVishkinRing,
    IteratedColorReduction,
    LocalAlgorithm,
    LocalOutcome,
    PriorityGreedyColoring,
    cv_phase_a_rounds,
    cv_reduce,
    cv_width_schedule,
    run_local,
)
from repro.model.topology import CompleteGraph, Cycle, Star, Torus


class Counter(LocalAlgorithm):
    """Trivial LOCAL algorithm: decide after k rounds."""

    name = "counter"

    def __init__(self, k):
        self.k = k

    def initial_state(self, x_input, degree):
        return 0

    def message(self, state):
        return state

    def update(self, state, messages):
        state += 1
        if state >= self.k:
            return LocalOutcome.decide(state, state)
        return LocalOutcome.cont(state)


class TestEngine:
    def test_round_counting(self):
        result = run_local(Counter(3), Cycle(4), [0, 1, 2, 3])
        assert result.rounds == 3
        assert result.outputs == {p: 3 for p in range(4)}
        assert result.decision_rounds == {p: 3 for p in range(4)}

    def test_nondecision_raises(self):
        with pytest.raises(ExecutionError):
            run_local(Counter(10 ** 9), Cycle(3), [0, 1, 2], max_rounds=10)

    def test_input_mismatch(self):
        with pytest.raises(ExecutionError):
            run_local(Counter(1), Cycle(3), [0, 1])


class TestCvReduce:
    def test_collision_freedom_on_chains(self):
        """The classic CV property: adjacent reductions differ whenever
        the shared middle value differs from both ends."""
        for a in range(1, 64):
            for b in range(1, 64):
                if a == b:
                    continue
                for c in range(1, 64, 5):
                    if b == c:
                        continue
                    assert cv_reduce(a, b, 6) != cv_reduce(b, c, 6)

    def test_requires_distinct(self):
        with pytest.raises(ExecutionError):
            cv_reduce(5, 5, 4)

    def test_requires_width(self):
        with pytest.raises(ExecutionError):
            cv_reduce(100, 2, 4)

    def test_width_schedule_reaches_three(self):
        sched = cv_width_schedule(64)
        assert sched[0] == 64
        assert sched[-1] == 3
        assert all(a > b or a == b == 3 for a, b in zip(sched, sched[1:]))

    def test_phase_a_log_star_growth(self):
        assert cv_phase_a_rounds(8) <= cv_phase_a_rounds(64) <= cv_phase_a_rounds(2 ** 14)
        assert cv_phase_a_rounds(2 ** 14) <= 8


class TestColeVishkin:
    @pytest.mark.parametrize("n", [3, 4, 10, 101, 1000])
    def test_three_coloring(self, n):
        ids = random_distinct_ids(n, seed=n, id_space=max(n ** 2, 16))
        result = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
        assert len(result.outputs) == n
        assert not coloring_violations(Cycle(n), result.outputs)
        assert set(result.outputs.values()) <= {0, 1, 2}

    def test_round_count_is_logstar_plus_constant(self):
        ids = random_distinct_ids(500, seed=1)
        result = run_local(ColeVishkinRing(id_bits=64), Cycle(500), ids)
        assert result.rounds == cv_phase_a_rounds(64) + 3

    def test_rejects_non_ring(self):
        with pytest.raises(ExecutionError):
            run_local(ColeVishkinRing(), Star(3), [1, 2, 3, 4])

    def test_rejects_oversized_id(self):
        with pytest.raises(ExecutionError):
            run_local(ColeVishkinRing(id_bits=4), Cycle(3), [100, 1, 2])


class TestPriorityGreedy:
    @pytest.mark.parametrize(
        "topo_factory", [lambda: Cycle(11), lambda: Torus(3, 4),
                         lambda: Star(5), lambda: CompleteGraph(6)],
    )
    def test_delta_plus_one_coloring(self, topo_factory):
        topo = topo_factory()
        ids = random_distinct_ids(topo.n, seed=3)
        result = run_local(PriorityGreedyColoring(), topo, ids)
        assert not coloring_violations(topo, result.outputs)
        assert max(result.outputs.values()) <= topo.max_degree()

    def test_rounds_equal_longest_decreasing_path_on_monotone_ring(self):
        n = 9
        result = run_local(PriorityGreedyColoring(), Cycle(n), list(range(n)))
        assert result.rounds == n  # ids strictly increasing: full cascade


class TestIteratedColorReduction:
    def test_reduces_to_delta_plus_one(self):
        n = 12
        inputs = [(0, 3, 6)[i % 3] for i in range(n)]
        result = run_local(
            IteratedColorReduction(m=7, max_degree=2), Cycle(n), inputs,
        )
        assert not coloring_violations(Cycle(n), result.outputs)
        assert max(result.outputs.values()) <= 2
        assert result.rounds == 7 - 2 - 1

    def test_validates_inputs(self):
        with pytest.raises(ExecutionError):
            run_local(
                IteratedColorReduction(m=4, max_degree=2), Cycle(3), [0, 5, 1],
            )

    def test_validates_degree(self):
        with pytest.raises(ExecutionError):
            run_local(
                IteratedColorReduction(m=9, max_degree=1), Cycle(3), [0, 1, 2],
            )

    def test_m_must_exceed_palette(self):
        with pytest.raises(ExecutionError):
            IteratedColorReduction(m=3, max_degree=3)
