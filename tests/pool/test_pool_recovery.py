"""Crash/hang recovery of pool workers (Issue 7 satellite).

The pool must survive the same three failure modes the campaign
``PoolBackend`` always has — and because tasks are deterministic, a
retried task must produce a result bit-identical to an undisturbed
run.  The faulty workloads from ``tests.campaign.faulty`` are reused:
they trip exactly once per fault dir, so the first attempt fails and
the retry (on a fresh warm worker) runs the real algorithm.

Pools are created *inside* the tests, after the fault-dir env var is
set, so forked workers inherit it.
"""

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_task
from repro.errors import PoolTaskError
from repro.obs.metrics import MetricsRegistry
from repro.pool import WorkerPool


def task_dict(algorithm):
    spec = CampaignSpec.build(
        algorithms=[algorithm],
        ns=[8],
        input_families=["random"],
        schedules=["sync"],
        seeds=[0],
    )
    [task] = spec.expand()
    return task.to_dict()


def strip_elapsed(result):
    return {k: v for k, v in result.items() if k != "elapsed"}


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_FAULT_DIR", str(tmp_path))
    return tmp_path


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_task_retried(self, fault_dir):
        """A worker dying mid-task (os._exit) must cost one restart and
        zero correctness: the retry lands on a fresh warm worker and
        returns the bit-identical result."""
        registry = MetricsRegistry()
        task = task_dict("tests.campaign.faulty:crash_once")
        with WorkerPool(2, registry=registry) as pool:
            outcome = pool.submit_task(
                task, timeout=30.0, max_retries=2
            ).result(timeout=120)
            assert outcome.crashes == 1
            assert outcome.attempts == 2
            stats = pool.stats()
            assert stats["restarts"] == 1
            assert stats["workers"] == 2  # corpse replaced, pool whole
        # The crash marker is tripped, so an in-process run of the same
        # task now takes the healthy path: the oracle for bit-identity.
        want = execute_task(task).to_dict()
        assert strip_elapsed(outcome.value) == strip_elapsed(want)
        assert (
            registry.value("pool_worker_restarts_total", reason="crash") == 1
        )
        assert (
            registry.value("pool_tasks_total", kind="task", status="ok") == 1
        )

    def test_crash_does_not_disturb_other_tasks(self, fault_dir):
        crash = task_dict("tests.campaign.faulty:crash_once")
        healthy = task_dict("fast5")
        with WorkerPool(2) as pool:
            futures = [
                pool.submit_task(crash, timeout=30.0, max_retries=2),
                pool.submit_task(healthy, timeout=30.0, max_retries=2),
            ]
            outcomes = [f.result(timeout=120) for f in futures]
        assert outcomes[0].crashes == 1
        assert outcomes[1].crashes == 0
        want = execute_task(healthy).to_dict()
        assert strip_elapsed(outcomes[1].value) == strip_elapsed(want)


class TestHangRecovery:
    def test_hung_worker_is_killed_at_deadline_and_task_retried(
        self, fault_dir
    ):
        registry = MetricsRegistry()
        task = task_dict("tests.campaign.faulty:hang_once")
        with WorkerPool(2, registry=registry) as pool:
            outcome = pool.submit_task(
                task, timeout=1.0, max_retries=2
            ).result(timeout=120)
            assert outcome.timeouts == 1
            assert outcome.attempts == 2
            assert pool.stats()["restarts"] == 1
        want = execute_task(task).to_dict()
        assert strip_elapsed(outcome.value) == strip_elapsed(want)
        assert (
            registry.value("pool_worker_restarts_total", reason="timeout")
            == 1
        )


class TestRetryExhaustion:
    def test_raise_always_fails_with_supervision_metadata(self, fault_dir):
        registry = MetricsRegistry()
        task = task_dict("tests.campaign.faulty:raise_always")
        with WorkerPool(1, registry=registry) as pool:
            future = pool.submit_task(task, timeout=30.0, max_retries=1)
            with pytest.raises(PoolTaskError) as excinfo:
                future.result(timeout=120)
        assert excinfo.value.attempts == 2  # 1 try + 1 retry
        assert "injected failure" in str(excinfo.value)
        assert (
            registry.value("pool_tasks_total", kind="task", status="failed")
            == 1
        )
        # A raising task never kills its worker: no restart.
        assert registry.value("pool_worker_restarts_total", reason="crash") is None
