"""WorkerPool basics: submission, equivalence, lifecycle, sharing.

The pool is an execution *substrate*, not a semantics layer: whatever
it returns must be bit-identical to running the same work in-process.
Both task kinds are pinned here — campaign task dicts against
:func:`execute_task`, service groups against the coalescer's own
response construction — and the lifecycle contract (lazy spawn, warm
reuse, drain, idempotent shutdown, shared-pool handout) is nailed
down so the service and campaign layers can rely on it blindly.
"""

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_task
from repro.errors import PoolError, PoolTaskError
from repro.obs.metrics import MetricsRegistry
from repro.pool import PoolOutcome, WorkerPool, shared_pool, shutdown_shared_pool
from repro.service.schema import ColorRequest


def task_dict(algorithm="fast5", *, n=8, seed=0):
    spec = CampaignSpec.build(
        algorithms=[algorithm],
        ns=[n],
        input_families=["random"],
        schedules=["sync"],
        seeds=[seed],
    )
    [task] = spec.expand()
    return task.to_dict()


def strip_elapsed(result):
    """Wall time is the one legitimately nondeterministic field."""
    return {k: v for k, v in result.items() if k != "elapsed"}


@pytest.fixture
def pool():
    pool = WorkerPool(2)
    yield pool
    pool.shutdown(wait=False)


class TestTaskExecution:
    def test_task_result_is_bit_identical_to_inprocess(self, pool):
        task = task_dict()
        outcome = pool.submit_task(task).result(timeout=60)
        assert isinstance(outcome, PoolOutcome)
        assert outcome.attempts == 1
        assert outcome.timeouts == 0 and outcome.crashes == 0
        want = execute_task(task).to_dict()
        assert strip_elapsed(outcome.value) == strip_elapsed(want)

    def test_group_responses_match_inprocess_construction(self, pool):
        requests = [
            ColorRequest.build(
                "fast5", 16, schedule="bernoulli", seed=seed, max_time=50_000
            )
            for seed in range(3)
        ]
        outcome = pool.submit_group(
            [r.config() for r in requests]
        ).result(timeout=60)
        payload = outcome.value
        assert payload["engine"] in ("batch", "fast")
        assert len(payload["responses"]) == len(requests)
        from repro.service.coalesce import execute_requests
        from repro.service.schema import ColorResponse

        results, engine = execute_requests(list(requests))
        assert payload["engine"] == engine
        for request, result, got in zip(
            requests, results, payload["responses"]
        ):
            want = ColorResponse.from_execution(
                request, result, engine=engine, batch_size=len(requests)
            )
            got_response = ColorResponse.from_dict(got)
            assert (
                got_response.deterministic_dict() == want.deterministic_dict()
            )

    def test_warm_workers_are_reused_across_tasks(self, pool):
        for seed in range(3):
            pool.submit_task(task_dict(seed=seed)).result(timeout=60)
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["submitted"] == 3
        assert stats["completed"] == 3
        assert stats["restarts"] == 0

    def test_unknown_kind_fails_with_pool_task_error(self, pool):
        future = pool.submit("nope", {}, max_retries=0)
        with pytest.raises(PoolTaskError, match="unknown pool task kind"):
            future.result(timeout=60)


class TestLifecycle:
    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(1)
        pool.submit_task(task_dict()).result(timeout=60)
        pool.shutdown()
        assert pool.closed
        with pytest.raises(PoolError, match="shut down"):
            pool.submit_task(task_dict())
        with pytest.raises(PoolError, match="shut down"):
            pool.ensure_workers(2)

    def test_shutdown_is_idempotent_and_drain_on_empty_is_true(self):
        pool = WorkerPool(1)
        assert pool.drain(timeout=0.1) is True
        pool.shutdown()
        pool.shutdown()

    def test_ensure_workers_prewarms_eagerly(self):
        with WorkerPool(1) as pool:
            assert pool.stats()["workers"] == 0  # lazy until first use
            pool.ensure_workers(2)
            assert pool.stats()["workers"] == 2
            outcome = pool.submit_task(task_dict()).result(timeout=60)
            assert outcome.attempts == 1

    def test_metrics_flow_into_pinned_registry(self):
        registry = MetricsRegistry()
        with WorkerPool(1, registry=registry) as pool:
            pool.submit_task(task_dict()).result(timeout=60)
            pool.drain(timeout=10)
        assert registry.value("pool_tasks_total", kind="task", status="ok") == 1
        assert registry.value("pool_task_seconds", kind="task")["count"] == 1
        assert registry.value("pool_workers") is not None


class TestSharedPool:
    def test_shared_pool_is_a_singleton_that_grows(self):
        try:
            first = shared_pool(1)
            again = shared_pool()
            assert again is first
            grown = shared_pool(2)
            assert grown is first
            assert grown.workers >= 2
        finally:
            shutdown_shared_pool(wait=False)

    def test_shut_down_shared_pool_is_replaced(self):
        try:
            first = shared_pool(1)
            first.shutdown(wait=False)
            second = shared_pool(1)
            assert second is not first
            assert not second.closed
        finally:
            shutdown_shared_pool(wait=False)
