"""Respawn-storm protection (chaos-layer satellite).

A task that reliably kills its worker must surface as a
:class:`~repro.errors.PoolTaskError` after its retry budget — costing
exactly one restart per attempt, never an unbounded respawn loop — and
the supervisor's sliding-window storm brake must defer respawns beyond
``restart_burst`` per ``restart_window`` instead of thrashing fork.
"""

import time

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_task
from repro.errors import PoolTaskError
from repro.obs.metrics import MetricsRegistry
from repro.pool import WorkerPool


def task_dict(algorithm):
    spec = CampaignSpec.build(
        algorithms=[algorithm],
        ns=[8],
        input_families=["random"],
        schedules=["sync"],
        seeds=[0],
    )
    [task] = spec.expand()
    return task.to_dict()


def strip_elapsed(result):
    return {k: v for k, v in result.items() if k != "elapsed"}


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_FAULT_DIR", str(tmp_path))
    return tmp_path


class TestBoundedRespawns:
    def test_always_crashing_task_fails_without_storm(self, fault_dir):
        """crash_always kills every worker it touches: the pool must
        hand back PoolTaskError after retries+1 attempts, with exactly
        one restart per attempt — not a respawn-per-dispatch loop."""
        registry = MetricsRegistry()
        task = task_dict("tests.campaign.faulty:crash_always")
        retries = 2
        with WorkerPool(2, registry=registry) as pool:
            future = pool.submit_task(task, timeout=30.0, max_retries=retries)
            with pytest.raises(PoolTaskError) as excinfo:
                future.result(timeout=120)
            stats = pool.stats()
            assert stats["restarts"] == retries + 1
            assert stats["workers"] == 2  # healed, not storming
            assert stats["pending_respawns"] == 0
        assert excinfo.value.attempts == retries + 1
        assert (
            registry.value("pool_worker_restarts_total", reason="crash")
            == retries + 1
        )
        # Under the default burst budget nothing was deferred.
        assert registry.value("pool_respawns_delayed_total", reason="crash") is None

    def test_storm_brake_defers_respawns_beyond_burst(self, fault_dir):
        """With a burst budget of 1 respawn per 0.5s window, a crash
        streak must trip the brake (deferred respawns, counted in
        ``pool_respawns_delayed_total``) and still heal once the window
        slides — ending with a healthy pool that computes correctly."""
        registry = MetricsRegistry()
        crash = task_dict("tests.campaign.faulty:crash_always")
        healthy = task_dict("fast5")
        with WorkerPool(
            1, registry=registry, restart_burst=1, restart_window=0.5
        ) as pool:
            with pytest.raises(PoolTaskError):
                pool.submit_task(crash, timeout=30.0, max_retries=2).result(
                    timeout=120
                )
            # Three crashes against a 1-per-window budget: at least one
            # respawn was deferred rather than forked immediately.
            delayed = registry.value(
                "pool_respawns_delayed_total", reason="crash"
            )
            assert delayed is not None and delayed >= 1
            # The brake delays healing but never abandons it: the pool
            # must still run healthy work to completion afterwards.
            outcome = pool.submit_task(
                healthy, timeout=30.0, max_retries=2
            ).result(timeout=120)
            assert pool.stats()["workers"] == 1
        want = execute_task(healthy).to_dict()
        assert strip_elapsed(outcome.value) == strip_elapsed(want)

    def test_submissions_do_not_bypass_the_brake(self, fault_dir):
        """submit() refills missing workers up to capacity — but a
        deferred respawn must stay deferred: new submissions while the
        brake holds must not sneak extra forks past the budget."""
        registry = MetricsRegistry()
        crash = task_dict("tests.campaign.faulty:crash_always")
        healthy = task_dict("fast5")
        with WorkerPool(
            1, registry=registry, restart_burst=1, restart_window=20.0
        ) as pool:
            with pytest.raises(PoolTaskError):
                pool.submit_task(crash, timeout=30.0, max_retries=1).result(
                    timeout=120
                )
            # Two crashes, budget one: a respawn is pending and the
            # window is long, so the pool is momentarily at 0 workers.
            deadline = time.monotonic() + 10.0
            while (
                pool.stats()["pending_respawns"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert pool.stats()["pending_respawns"] >= 1
            before = pool.stats()["restarts"]
            future = pool.submit_task(healthy, timeout=30.0, max_retries=2)
            time.sleep(0.2)  # give a buggy submit() time to over-fork
            stats = pool.stats()
            assert stats["workers"] + stats["pending_respawns"] <= 1
            assert stats["restarts"] == before
            future.cancel()
