"""Tests for ASCII rendering helpers."""

from repro.core.coloring5 import FiveColoring
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.render import color_glyph, render_cycle, render_outputs, render_timeline


class TestColorGlyph:
    def test_scalar(self):
        assert color_glyph(0) == "0"
        assert color_glyph(4) == "4"

    def test_pair(self):
        assert color_glyph((1, 0)) == "(1,0)"

    def test_unknown(self):
        assert color_glyph(-3) == "?"


class TestRenderCycle:
    def test_rows_present(self):
        text = render_cycle([10, 20, 30], {0: 1, 2: 0})
        assert "pos" in text and "id" in text and "col" in text
        assert "·" in text  # pending process marker

    def test_wraps_long_cycles(self):
        text = render_cycle(list(range(100)))
        assert text.count("pos") > 1

    def test_no_color_row_without_outputs(self):
        assert "col" not in render_cycle([1, 2, 3])


class TestRenderOutputs:
    def test_mentions_every_process(self):
        result = run_execution(
            FiveColoring(), Cycle(4), [5, 2, 8, 1],
            FiniteSchedule([[0, 1, 2, 3]] * 30),
        )
        text = render_outputs(result)
        for p in range(4):
            assert f"p{p}:" in text


class TestRenderTimeline:
    def test_markers(self):
        result = run_execution(
            FiveColoring(), Cycle(4), [5, 2, 8, 1],
            FiniteSchedule([[0], [1, 2], [0, 1, 2, 3]] * 20),
            record_trace=True,
        )
        text = render_timeline(result.trace, 4)
        assert "█" in text
        assert "R" in text

    def test_truncation_note(self):
        result = run_execution(
            FiveColoring(), Cycle(6), [9, 2, 11, 4, 13, 6],
            FiniteSchedule([[0]] * 80 + [[0, 1, 2, 3, 4, 5]] * 40),
            record_trace=True,
        )
        text = render_timeline(result.trace, 6, max_steps=10)
        assert "more)" in text
