"""Tests for the DECOUPLED coloring algorithms (the §1.4 separation)."""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import coloring_violations
from repro.decoupled import (
    AnnouncementColoring,
    CVFullInfoRing,
    CVInput,
    cv_window_output,
    cv_window_radius,
    run_decoupled,
)
from repro.localmodel import ColeVishkinRing, run_local
from repro.model.faults import crash_after_time
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Star, Torus
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)


class TestAnnouncementColoring:
    @pytest.mark.parametrize("n", [3, 4, 7, 20])
    def test_three_colors_on_rings(self, n):
        """The separation: 3 colors suffice in DECOUPLED (vs >= 5 in
        the paper's fully asynchronous model)."""
        ids = random_distinct_ids(n, seed=n)
        for schedule in (
            SynchronousScheduler(),
            RoundRobinScheduler(),
            BernoulliScheduler(p=0.4, seed=n),
        ):
            result = run_decoupled(AnnouncementColoring(), Cycle(n), ids, schedule)
            assert result.all_decided
            assert not coloring_violations(Cycle(n), result.outputs)
            assert set(result.outputs.values()) <= {0, 1, 2}

    def test_wait_free_under_crashes(self):
        n = 21
        plan = crash_after_time(
            SynchronousScheduler(), {p: 2 for p in range(0, n, 3)},
        )
        result = run_decoupled(
            AnnouncementColoring(), Cycle(n), list(range(n)), plan,
        )
        survivors = set(range(n)) - set(range(0, n, 3))
        assert survivors <= set(result.outputs)
        assert not coloring_violations(Cycle(n), result.outputs)

    def test_solo_process_decides(self):
        result = run_decoupled(
            AnnouncementColoring(), Cycle(5), [9, 2, 7, 4, 11],
            FiniteSchedule([[2], [2]]),
        )
        assert result.outputs == {2: 0}
        assert result.activations[2] == 2

    def test_delta_plus_one_on_general_graphs(self):
        for topo in (Torus(3, 4), Star(6)):
            ids = random_distinct_ids(topo.n, seed=3)
            result = run_decoupled(
                AnnouncementColoring(), topo, ids,
                BernoulliScheduler(p=0.5, seed=1),
            )
            assert result.all_decided
            assert not coloring_violations(topo, result.outputs)
            assert max(result.outputs.values()) <= topo.max_degree()

    @given(data=st.data())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_random_schedules(self, data):
        n = data.draw(st.integers(3, 7))
        ids = data.draw(
            st.lists(st.integers(0, 200), min_size=n, max_size=n, unique=True)
        )
        steps = data.draw(
            st.lists(
                st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
                min_size=5, max_size=40,
            )
        )
        schedule = FiniteSchedule(
            [frozenset(s) for s in steps] + [frozenset(range(n))] * (3 * n + 10)
        )
        result = run_decoupled(AnnouncementColoring(), Cycle(n), ids, schedule)
        assert result.all_decided
        assert not coloring_violations(Cycle(n), result.outputs)
        assert set(result.outputs.values()) <= {0, 1, 2}


class TestCVFullInfo:
    @staticmethod
    def ring_inputs(ids):
        n = len(ids)
        return [
            CVInput(x=ids[i], pred=ids[(i - 1) % n], succ=ids[(i + 1) % n])
            for i in range(n)
        ]

    @pytest.mark.parametrize("n", [16, 101, 400])
    def test_matches_local_engine_exactly(self, n):
        ids = random_distinct_ids(n, seed=n)
        decoupled = run_decoupled(
            CVFullInfoRing(id_bits=64), Cycle(n), self.ring_inputs(ids),
            SynchronousScheduler(),
        )
        local = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
        assert decoupled.outputs == local.outputs

    def test_logstar_round_complexity(self):
        n = 256
        ids = random_distinct_ids(n, seed=1)
        result = run_decoupled(
            CVFullInfoRing(id_bits=64), Cycle(n), self.ring_inputs(ids),
            SynchronousScheduler(),
        )
        # decide once the radius-R window flooded: R + O(1) rounds.
        assert result.final_round <= cv_window_radius(64) + 3

    def test_small_ring_wraparound(self):
        """Windows longer than the ring wrap and stay correct."""
        ids = [40, 10, 77, 23, 58]
        result = run_decoupled(
            CVFullInfoRing(id_bits=64), Cycle(5), self.ring_inputs(ids),
            SynchronousScheduler(),
        )
        local = run_local(ColeVishkinRing(id_bits=64), Cycle(5), ids)
        assert result.outputs == local.outputs

    def test_waits_for_missing_records(self):
        """With a never-waking node inside the window, neighbors keep
        waiting (the documented non-wait-free direction of [18])."""
        n = 12
        ids = random_distinct_ids(n, seed=2)
        plan = crash_after_time(SynchronousScheduler(), {4: 1})
        result = run_decoupled(
            CVFullInfoRing(id_bits=64), Cycle(n), self.ring_inputs(ids),
            plan, max_rounds=60,
        )
        assert result.pending  # somebody's window never fills
        assert not coloring_violations(Cycle(n), result.outputs)

    def test_window_output_validates_size(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            cv_window_output([1, 2, 3], 1, id_bits=64)

    def test_rejects_plain_inputs(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            run_decoupled(
                CVFullInfoRing(), Cycle(3), [1, 2, 3], SynchronousScheduler(),
            )
