"""Unit tests for the DECOUPLED engine (message flooding semantics)."""

from typing import NamedTuple

import pytest

from repro.decoupled.engine import (
    DecoupledAlgorithm,
    DecoupledOutcome,
    Emission,
    run_decoupled,
)
from repro.errors import ExecutionError
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle, Path
from repro.schedulers import SynchronousScheduler


class _EchoState(NamedTuple):
    x: int
    emitted: bool
    seen: tuple


class Echo(DecoupledAlgorithm):
    """Emit own id once; decide after ``decide_after`` activations,
    outputting the sorted (payload, distance) pairs seen."""

    name = "echo"

    def __init__(self, decide_after=3):
        self.decide_after = decide_after

    def initial_state(self, x_input):
        return (_EchoState(x_input, False, ()), 0)

    def step(self, state, buffer, round_index):
        inner, count = state
        count += 1
        seen = tuple(sorted((e.payload, d) for e, d in buffer))
        inner = _EchoState(inner.x, True, seen)
        emit = inner.x if count == 1 else None
        if count >= self.decide_after:
            return DecoupledOutcome.decide((inner, count), seen, emit=emit)
        return DecoupledOutcome.cont((inner, count), emit=emit)


class TestFlooding:
    def test_messages_travel_one_hop_per_round(self):
        """On P_3, node 0's round-1 emission reaches node 1 at round 2
        and node 2 at round 3 — regardless of node 1's activity."""
        result = run_decoupled(
            Echo(decide_after=1), Path(3), [10, 20, 30],
            FiniteSchedule([[0], [2], [2], [2]]),
        )
        # node 2 decided at its first activation (round 2): too early.
        assert result.outputs[2] == ()
        result = run_decoupled(
            Echo(decide_after=2), Path(3), [10, 20, 30],
            FiniteSchedule([[0], [2], [2], [2]]),
        )
        # second activation of node 2 is at round 3: the message arrived
        # (alongside node 2's own round-2 emission at distance 0).
        assert result.outputs[2] == ((10, 2), (30, 0))

    def test_relay_through_sleeping_nodes(self):
        """Node 1 never wakes, yet node 0's message reaches node 2 —
        the defining DECOUPLED property."""
        result = run_decoupled(
            Echo(decide_after=2), Path(3), [10, 20, 30],
            FiniteSchedule([[0], [0], [2], [2]]),
        )
        assert (10, 2) in result.outputs[2]

    def test_late_waker_finds_buffer(self):
        result = run_decoupled(
            Echo(decide_after=1), Path(2), [10, 20],
            FiniteSchedule([[0], [], [], [], [], [1]]),
        )
        assert result.outputs[1] == ((10, 1),)

    def test_same_round_emissions_not_visible(self):
        """Co-activated processes do not see each other's current-round
        emissions (distance >= 1 means arrival next round)."""
        result = run_decoupled(
            Echo(decide_after=1), Path(2), [10, 20],
            FiniteSchedule([[0, 1]]),
        )
        assert result.outputs[0] == ()
        assert result.outputs[1] == ()

    def test_own_emissions_visible(self):
        result = run_decoupled(
            Echo(decide_after=2), Path(2), [10, 20],
            FiniteSchedule([[0], [0]]),
        )
        assert (10, 0) in result.outputs[0]


class TestAccounting:
    def test_activation_counts(self):
        result = run_decoupled(
            Echo(decide_after=3), Path(2), [1, 2],
            FiniteSchedule([[0, 1], [0], [0], [1], [1]]),
        )
        assert result.activations == {0: 3, 1: 3}
        assert result.decision_rounds == {0: 3, 1: 5}
        assert result.activation_complexity == 3

    def test_decided_processes_not_reactivated(self):
        result = run_decoupled(
            Echo(decide_after=1), Path(2), [1, 2],
            FiniteSchedule([[0], [0], [0], [1]]),
        )
        assert result.activations[0] == 1

    def test_stops_when_all_decided(self):
        result = run_decoupled(
            Echo(decide_after=1), Path(2), [1, 2], SynchronousScheduler(),
        )
        assert result.final_round == 1
        assert result.all_decided

    def test_max_rounds_cutoff(self):
        result = run_decoupled(
            Echo(decide_after=10 ** 9), Path(2), [1, 2],
            SynchronousScheduler(), max_rounds=7,
        )
        assert result.final_round == 7
        assert result.pending == {0, 1}

    def test_input_count_validated(self):
        from repro.decoupled.engine import DecoupledExecutor

        with pytest.raises(ExecutionError):
            DecoupledExecutor(Path(3), Echo(), [1, 2])

    def test_distances_on_cycle(self):
        from repro.decoupled.engine import DecoupledExecutor

        executor = DecoupledExecutor(Cycle(6), Echo(), list(range(6)))
        assert executor._distances[0][3] == 3
        assert executor._distances[0][5] == 1
