"""Unit tests for the shared-memory layer (repro.shm.layer)."""

from repro.core.algorithm import Algorithm, StepOutcome, active_views
from repro.model.topology import CompleteGraph
from repro.schedulers import RoundRobinScheduler, SynchronousScheduler
from repro.shm.layer import run_shared_memory, shared_memory_system


class SnapshotProbe(Algorithm):
    """Returns the multiset of values visible in its first snapshot."""

    name = "snapshot-probe"

    def initial_state(self, x_input):
        return x_input

    def register_value(self, state):
        return state

    def step(self, state, views):
        return StepOutcome.ret(state, tuple(sorted(active_views(views))))


class TestSharedMemorySystem:
    def test_topology_is_complete(self):
        topo = shared_memory_system(5)
        assert topo == CompleteGraph(5)

    def test_full_snapshot_visibility(self):
        """Under simultaneous activation every process sees all other
        registers — the immediate-snapshot property."""
        result = run_shared_memory(
            SnapshotProbe(), [10, 20, 30], SynchronousScheduler(),
        )
        assert result.outputs[0] == (20, 30)
        assert result.outputs[1] == (10, 30)
        assert result.outputs[2] == (10, 20)

    def test_sequential_visibility(self):
        """Round-robin: later processes see earlier writes."""
        result = run_shared_memory(
            SnapshotProbe(), [10, 20, 30], RoundRobinScheduler(),
        )
        assert result.outputs[0] == ()        # first, alone
        assert result.outputs[1] == (10,)
        assert result.outputs[2] == (10, 20)
