"""Tests for wait-free (2n−1)-renaming in shared memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.schedule import FiniteSchedule, RecordedSchedule
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)
from repro.shm import (
    RankRenaming,
    RenamingSpec,
    renaming_namespace,
    run_shared_memory,
)


class TestNamespace:
    def test_namespace_is_2n_minus_1(self):
        assert list(renaming_namespace(3)) == [0, 1, 2, 3, 4]
        assert len(renaming_namespace(8)) == 15


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_across_schedulers(self, n):
        ids = [17 * i + 3 for i in range(n)]
        for factory in (
            SynchronousScheduler,
            RoundRobinScheduler,
            lambda: BernoulliScheduler(p=0.5, seed=n),
            lambda: UniformSubsetScheduler(seed=n),
        ):
            result = run_shared_memory(RankRenaming(), ids, factory())
            assert result.all_terminated
            assert not RenamingSpec(n, 2 * n - 1).check(result.outputs)

    def test_solo_takes_name_zero(self):
        result = run_shared_memory(
            RankRenaming(), [5, 9, 2], SoloScheduler(1, solo_steps=5),
            max_time=50,
        )
        assert result.outputs[1] == 0
        assert result.activations[1] == 1

    def test_contention_on_c3_uses_at_most_five_names(self):
        """n=3: names fit in {0..4} — the Property 2.3 connection."""
        for seed in range(20):
            result = run_shared_memory(
                RankRenaming(), [3, 1, 2], BernoulliScheduler(p=0.8, seed=seed),
            )
            assert set(result.outputs.values()) <= set(range(5))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_unique_names_random_schedules(self, seed):
        n = 5
        ids = [29 * i + 11 for i in range(n)]
        recorder = RecordedSchedule(UniformSubsetScheduler(seed=seed))
        result = run_shared_memory(RankRenaming(), ids, recorder)
        assert result.all_terminated
        violations = RenamingSpec(n, 2 * n - 1).check(result.outputs)
        assert not violations, (violations, recorder.record[:30])

    def test_deterministic_replay(self):
        recorder = RecordedSchedule(UniformSubsetScheduler(seed=77))
        ids = [4, 8, 15, 16, 23]
        first = run_shared_memory(RankRenaming(), ids, recorder)
        replay = run_shared_memory(RankRenaming(), ids, recorder.replay())
        assert first.outputs == replay.outputs

    def test_crash_leaves_survivors_unique(self):
        from repro.model.faults import crash_after_activations

        ids = [10, 20, 30, 40]
        plan = crash_after_activations(SynchronousScheduler(), {0: 1, 2: 2})
        result = run_shared_memory(RankRenaming(), ids, plan)
        outputs = result.outputs
        assert not RenamingSpec(4, 7).check(outputs)
        assert {1, 3} <= set(outputs)


class TestWaitFreedomExhaustive:
    def test_no_livelock_n3(self):
        """Exhaustive: the renaming configuration graph is acyclic."""
        from repro.lowerbounds import BoundedExplorer
        from repro.model.topology import CompleteGraph

        explorer = BoundedExplorer(RankRenaming(), CompleteGraph(3), [3, 1, 2])
        outcome = explorer.find_livelock(max_depth=60, max_configs=300_000)
        assert not outcome.found
        assert outcome.exhausted

    def test_exact_worst_case_small(self):
        from repro.lowerbounds import BoundedExplorer
        from repro.model.topology import CompleteGraph

        explorer = BoundedExplorer(RankRenaming(), CompleteGraph(3), [3, 1, 2])
        worst = {p: explorer.max_activations(p) for p in range(3)}
        assert all(v != float("inf") for v in worst.values())
        assert max(worst.values()) <= 10
