"""Unit tests for task specifications (renaming, SSB, MIS)."""

from repro.model.topology import Cycle
from repro.shm.tasks import MISSpec, RenamingSpec, SSBSpec


class TestRenamingSpec:
    def test_valid(self):
        assert not RenamingSpec(3, 5).check({0: 0, 1: 3, 2: 4})

    def test_duplicate_name(self):
        violations = RenamingSpec(3, 5).check({0: 2, 1: 2})
        assert any("both took name" in v for v in violations)

    def test_out_of_namespace(self):
        assert RenamingSpec(3, 5).check({0: 5})
        assert RenamingSpec(3, 5).check({0: -1})
        assert RenamingSpec(3, 5).check({0: "x"})

    def test_partial_termination_ok(self):
        assert not RenamingSpec(4, 7).check({2: 6})


class TestSSBSpec:
    def test_valid_full(self):
        assert not SSBSpec(3).check({0: 0, 1: 1, 2: 0})

    def test_all_same_bit_violates(self):
        assert SSBSpec(3).check({0: 1, 1: 1, 2: 1})
        assert SSBSpec(3).check({0: 0, 1: 0, 2: 0})

    def test_partial_without_one_violates(self):
        violations = SSBSpec(3).check({0: 0})
        assert any("none output 1" in v for v in violations)

    def test_partial_with_one_ok(self):
        assert not SSBSpec(3).check({0: 1})

    def test_non_bit_output(self):
        assert SSBSpec(2).check({0: 7, 1: 1})

    def test_empty_outputs_ok(self):
        assert not SSBSpec(3).check({})


class TestMISSpec:
    def setup_method(self):
        self.spec = MISSpec(Cycle(5))

    def test_valid_mis(self):
        assert not self.spec.check({0: 1, 1: 0, 2: 1, 3: 0, 4: 0})

    def test_adjacent_ones(self):
        violations = self.spec.check({0: 1, 1: 1})
        assert any("both output 1" in v for v in violations)

    def test_wraparound_adjacency(self):
        violations = self.spec.check({0: 1, 4: 1})
        assert any("both output 1" in v for v in violations)

    def test_zero_without_one_neighbor(self):
        violations = self.spec.check({2: 0})
        assert any("no terminated 1-neighbor" in v for v in violations)

    def test_zero_with_one_neighbor_ok(self):
        assert not self.spec.check({2: 0, 3: 1})

    def test_non_bit(self):
        assert self.spec.check({0: 2})

    def test_doomed_equals_check_midway(self):
        outputs = {1: 0}
        assert self.spec.doomed(outputs) == self.spec.check(outputs)
