"""Tests for the Property 2.1/2.3 reduction machinery."""

import pytest

from repro.analysis.inputs import random_distinct_ids
from repro.analysis.verify import verify_execution
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import ExecutionError
from repro.lowerbounds.mis import EagerLocalMaxMIS
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from repro.shm.simulation import (
    CycleInSharedMemory,
    SimInput,
    run_cycle_in_shared_memory,
    run_mis_as_ssb,
)


class TestCycleSimulation:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_simulated_coloring_matches_cycle_semantics(self, n):
        """The shared-memory simulation produces a proper coloring of
        the *cycle* — the discarded registers change nothing."""
        ids = random_distinct_ids(n, seed=n)
        for factory in (
            SynchronousScheduler,
            RoundRobinScheduler,
            lambda: BernoulliScheduler(p=0.5, seed=2),
        ):
            result = run_cycle_in_shared_memory(FastFiveColoring(), ids, factory())
            assert result.all_terminated
            assert verify_execution(Cycle(n), result, palette=range(5)).ok

    def test_identical_to_direct_run_under_same_schedule(self):
        """On any fixed schedule, simulating node i in shared memory is
        step-for-step the direct cycle execution."""
        from repro.model.execution import run_execution

        n = 5
        ids = [9, 2, 14, 7, 30]
        schedule = FiniteSchedule(
            [[0], [1, 3], [2, 4], [0, 1, 2, 3, 4]] * 20
        )
        direct = run_execution(SixColoring(), Cycle(n), ids, schedule)
        simulated = run_cycle_in_shared_memory(SixColoring(), ids, schedule)
        assert direct.outputs == simulated.outputs
        assert direct.activations == simulated.activations

    def test_c3_coincidence(self):
        """On n=3 the filter is the identity: C_3 == K_3 (Property 2.3)."""
        ids = [4, 11, 6]
        schedule = FiniteSchedule([[0, 1, 2]] * 30)
        from repro.model.execution import run_execution

        direct = run_execution(SixColoring(), Cycle(3), ids, schedule)
        simulated = run_cycle_in_shared_memory(SixColoring(), ids, schedule)
        assert direct.outputs == simulated.outputs

    def test_requires_sim_input(self):
        from repro.shm.layer import run_shared_memory

        with pytest.raises(ExecutionError):
            run_shared_memory(
                CycleInSharedMemory(SixColoring()), [1, 2, 3],
                SynchronousScheduler(),
            )

    def test_sim_input_shape(self):
        s = SimInput(index=2, n=5, x=42)
        assert s.index == 2 and s.n == 5 and s.x == 42


class TestMISToSSB:
    def test_violating_schedule_yields_ssb_violation(self):
        """Property 2.1: defeat of a candidate MIS algorithm translates
        into an SSB violation through the simulation."""
        # Schedule defeating EagerLocalMaxMIS on ids where two adjacent
        # solo starters both claim membership: run p0 then p1 solo with
        # increasing ids around the cycle.
        schedule = FiniteSchedule([[0], [1], [2]])
        result, violations = run_mis_as_ssb(
            EagerLocalMaxMIS(), [1, 2, 3], schedule,
        )
        # p0 saw nobody -> 1; p1 saw only p0 with smaller id -> 1:
        # adjacent double-join. As an SSB execution this is legal output
        # (it contains a 1), so check the MIS spec directly too.
        from repro.shm.tasks import MISSpec

        mis_violations = MISSpec(Cycle(3)).check(result.outputs)
        assert mis_violations  # the MIS spec is broken
        assert result.outputs[0] == 1 and result.outputs[1] == 1

    def test_ssb_condition_two_checked(self):
        """An execution where all terminated processes output 0 is an
        SSB violation (condition 2)."""

        class AlwaysZero(EagerLocalMaxMIS):
            def step(self, state, views):
                from repro.core.algorithm import StepOutcome

                return StepOutcome.ret(state, 0)

        result, violations = run_mis_as_ssb(
            AlwaysZero(), [1, 2, 3], FiniteSchedule([[0, 1, 2]]),
        )
        assert violations
