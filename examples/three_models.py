#!/usr/bin/env python3
"""Three fault models, one problem: coloring the ring (paper §1.4).

Runs ring coloring in the three models the paper relates:

1. **synchronous LOCAL** (failure-free): Cole–Vishkin, 3 colors,
   log* + O(1) rounds;
2. **DECOUPLED** (asynchronous crash-prone processes on a synchronous
   reliable network): wait-free 3-coloring via announcements, plus the
   full-information CV simulation at O(log* n) rounds — and the very
   crash pattern that starves the paper's Algorithm 3 (finding E13b)
   is shown to be harmless here;
3. **the paper's fully asynchronous model**: Algorithm 3, 5 colors
   (and 5 is optimal by Property 2.3);
4. **self-stabilization**: recovery from fully corrupted state, the
   opposite fault trade-off.

Run:  python examples/three_models.py
"""

import random

from repro import Cycle, FastFiveColoring, run_execution
from repro.analysis import (
    coloring_violations,
    format_table,
    random_distinct_ids,
    verify_execution,
)
from repro.decoupled import AnnouncementColoring, CVFullInfoRing, CVInput, run_decoupled
from repro.localmodel import ColeVishkinRing, run_local
from repro.model.faults import crash_after_time
from repro.schedulers import BernoulliScheduler, SynchronousScheduler
from repro.selfstab import ColoringRule, corrupt_states, run_selfstab

N = 36
SEED = 4


def main():
    ids = random_distinct_ids(N, seed=SEED)
    rows = []

    # 1. LOCAL
    local = run_local(ColeVishkinRing(id_bits=64), Cycle(N), ids)
    assert not coloring_violations(Cycle(N), local.outputs)
    rows.append({
        "model": "LOCAL (sync, failure-free)",
        "algorithm": "Cole-Vishkin",
        "colors": len(set(local.outputs.values())),
        "cost": f"{local.rounds} rounds",
        "faults": "none",
    })

    # 2a. DECOUPLED, wait-free announcements
    dec = run_decoupled(
        AnnouncementColoring(), Cycle(N), ids, BernoulliScheduler(p=0.5, seed=SEED),
    )
    assert dec.all_decided and not coloring_violations(Cycle(N), dec.outputs)
    rows.append({
        "model": "DECOUPLED",
        "algorithm": "announcements (wait-free)",
        "colors": len(set(dec.outputs.values())),
        "cost": f"{dec.activation_complexity} activations",
        "faults": "crashes OK",
    })

    # 2b. DECOUPLED, full-information CV
    inputs = [CVInput(ids[i], ids[(i - 1) % N], ids[(i + 1) % N]) for i in range(N)]
    cv = run_decoupled(CVFullInfoRing(id_bits=64), Cycle(N), inputs, SynchronousScheduler())
    assert cv.outputs == local.outputs
    rows.append({
        "model": "DECOUPLED",
        "algorithm": "full-info CV simulation",
        "colors": len(set(cv.outputs.values())),
        "cost": f"{cv.final_round} rounds",
        "faults": "needs participation",
    })

    # 3. the paper's model
    asyn = run_execution(
        FastFiveColoring(), Cycle(N), ids, BernoulliScheduler(p=0.5, seed=SEED),
    )
    assert verify_execution(Cycle(N), asyn, palette=range(5)).ok
    rows.append({
        "model": "fully asynchronous (paper)",
        "algorithm": "Algorithm 3",
        "colors": len(set(asyn.outputs.values())),
        "cost": f"{asyn.round_complexity} activations",
        "faults": "crashes OK (>=5 colors forced)",
    })

    # 4. self-stabilization
    rule = ColoringRule(max_degree=2)
    stab = run_selfstab(
        rule, Cycle(N), corrupt_states(ids, random.Random(SEED)),
        BernoulliScheduler(p=0.5, seed=SEED), max_steps=50_000,
    )
    assert stab.stabilized and rule.legitimate(stab.states, Cycle(N))
    rows.append({
        "model": "self-stabilizing",
        "algorithm": "id-priority greedy",
        "colors": len({s.color for s in stab.states}),
        "cost": f"{stab.moves} moves",
        "faults": "any initial corruption",
    })

    print(f"Ring coloring across fault models (n={N}, same identifiers):\n")
    print(format_table(rows))

    # The E13b pattern, harmless in DECOUPLED:
    n = 20
    plan = crash_after_time(SynchronousScheduler(), {p: 2 for p in range(0, n, 3)})
    dec_crash = run_decoupled(AnnouncementColoring(), Cycle(n), list(range(n)), plan)
    survivors = set(range(n)) - set(range(0, n, 3))
    print(
        f"\nE13b crash pattern in DECOUPLED: survivors decided = "
        f"{survivors <= set(dec_crash.outputs)} (the same pattern starves "
        "the paper-model Algorithm 3 forever — see examples/fault_injection.py)"
    )
    assert survivors <= set(dec_crash.outputs)
    print("\nOK.")


if __name__ == "__main__":
    main()
