#!/usr/bin/env python3
"""Adversary gallery: one algorithm, every scheduler in the zoo.

Wait-freedom means the guarantee is per-schedule: this example runs
Algorithm 3 on the same instance under the full scheduler zoo — from
lock-step synchrony through proof-extracted adversaries — and prints a
comparison table plus an activation timeline for the most asynchronous
run.  The activation counts stay within the O(log* n) budget on all of
them.

Run:  python examples/adversary_gallery.py
"""

from repro import Cycle, FastFiveColoring, run_execution
from repro.analysis import (
    format_table,
    logstar_budget,
    monotone_ids,
    summarize_activations,
    verify_execution,
)
from repro.render import render_timeline
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BlockRoundRobinScheduler,
    BurstScheduler,
    GeometricRateScheduler,
    LateWakeupScheduler,
    RoundRobinScheduler,
    SlowChainScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

N = 48


def gallery():
    return {
        "synchronous": SynchronousScheduler(),
        "round-robin": RoundRobinScheduler(),
        "block-rr(4)": BlockRoundRobinScheduler(4),
        "alternating": AlternatingScheduler(),
        "staggered(x3)": StaggeredScheduler(stagger=3),
        "bursts(5)": BurstScheduler(burst=5),
        "late-wakeup": LateWakeupScheduler(sleepers=range(0, N, 4), wake_time=120),
        "slow-chain(x8)": SlowChainScheduler(slow=range(N // 2), slowdown=8),
        "bernoulli(0.3)": BernoulliScheduler(p=0.3, seed=5),
        "subset": UniformSubsetScheduler(seed=5),
        "mixed-rates": GeometricRateScheduler(slow_fraction=0.3, seed=5),
    }


def main():
    identifiers = monotone_ids(N)  # worst-case chain structure
    budget = logstar_budget(N)
    rows = []
    for name, schedule in gallery().items():
        result = run_execution(
            FastFiveColoring(), Cycle(N), identifiers, schedule, max_time=200_000,
        )
        verdict = verify_execution(Cycle(N), result, palette=range(5))
        summary = summarize_activations(result)
        rows.append(
            {
                "scheduler": name,
                "max_act": summary.max,
                "mean_act": round(summary.mean, 2),
                "budget": int(budget),
                "terminated": f"{summary.terminated}/{N}",
                "proper": verdict.proper,
            }
        )
        assert verdict.ok and result.all_terminated
        assert summary.max <= budget, name

    print(f"Algorithm 3 on C_{N}, monotone identifiers (worst-case chains):\n")
    print(format_table(rows))

    print("\nActivation timeline under the uniform-subset adversary:")
    traced = run_execution(
        FastFiveColoring(), Cycle(12), monotone_ids(12),
        UniformSubsetScheduler(seed=5), record_trace=True,
    )
    print(render_timeline(traced.trace, 12))
    print("\nOK — within the O(log* n) budget on every schedule.")


if __name__ == "__main__":
    main()
