#!/usr/bin/env python3
"""Renaming vs cycle coloring: the paper's two worlds, side by side.

The paper positions cycle coloring between LOCAL-model coloring and
shared-memory renaming.  This example runs all three on the same
instance:

1. rank-based (2n−1)-renaming in shared memory (the ancestor of
   Algorithm 2), showing the full 2n−1 namespace being exercised;
2. the C_3 coincidence (Property 2.3): a cycle algorithm simulated
   inside shared memory is step-for-step the direct execution;
3. the synchronous Cole–Vishkin baseline vs asynchronous Algorithm 3 —
   the measured price of asynchrony + crash tolerance.

Run:  python examples/renaming_vs_coloring.py
"""

from repro import Cycle, FastFiveColoring, SixColoring, run_execution
from repro.analysis import format_table, random_distinct_ids
from repro.core import log_star
from repro.localmodel import ColeVishkinRing, run_local
from repro.model.schedule import FiniteSchedule
from repro.schedulers import SynchronousScheduler, UniformSubsetScheduler
from repro.shm import (
    RankRenaming,
    RenamingSpec,
    run_cycle_in_shared_memory,
    run_shared_memory,
)


def renaming_demo():
    print("--- 1. wait-free (2n-1)-renaming in shared memory ---")
    n = 6
    ids = [97, 13, 55, 8, 71, 29]
    rows = []
    for seed in range(4):
        result = run_shared_memory(
            RankRenaming(), ids, UniformSubsetScheduler(seed=seed),
        )
        assert not RenamingSpec(n, 2 * n - 1).check(result.outputs)
        rows.append(
            {
                "schedule_seed": seed,
                "names": str([result.outputs[p] for p in range(n)]),
                "max_name": max(result.outputs.values()),
                "namespace": 2 * n - 1,
            }
        )
    print(format_table(rows))


def c3_coincidence_demo():
    print("\n--- 2. C_3 == 3-process shared memory (Property 2.3) ---")
    ids = [4, 11, 6]
    schedule = FiniteSchedule([[0], [1, 2], [0, 1, 2], [2], [0, 1, 2]] * 10)
    direct = run_execution(SixColoring(), Cycle(3), ids, schedule)
    simulated = run_cycle_in_shared_memory(SixColoring(), ids, schedule)
    print(f"direct cycle outputs   : {dict(sorted(direct.outputs.items()))}")
    print(f"simulated SHM outputs  : {dict(sorted(simulated.outputs.items()))}")
    print(f"identical executions   : {direct.outputs == simulated.outputs}")
    assert direct.outputs == simulated.outputs
    print("(hence the 5-name renaming lower bound transfers to coloring C_3)")


def baseline_demo():
    print("\n--- 3. synchronous Cole-Vishkin vs asynchronous Algorithm 3 ---")
    rows = []
    for n in (64, 1024, 16384):
        ids = random_distinct_ids(n, seed=3)
        cv = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
        a3 = run_execution(
            FastFiveColoring(), Cycle(n), ids, SynchronousScheduler(),
        )
        rows.append(
            {
                "n": n,
                "log*n": log_star(n),
                "CV_rounds (3 colors, sync, failure-free)": cv.rounds,
                "Alg3_rounds (5 colors, async, crash-prone)": a3.round_complexity,
            }
        )
    print(format_table(rows))
    print("both flat in n: the crash-tolerance overhead is a constant factor.")


def main():
    renaming_demo()
    c3_coincidence_demo()
    baseline_demo()
    print("\nOK.")


if __name__ == "__main__":
    main()
