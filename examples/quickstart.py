#!/usr/bin/env python3
"""Quickstart: wait-free 5-coloring of an asynchronous cycle.

Runs the paper's Algorithm 3 (fast 5-coloring) on a 24-node cycle with
random unique identifiers under an asynchronous random schedule,
verifies the output, and prints the colored ring plus per-process
statistics.

Run:  python examples/quickstart.py
"""

from repro import Cycle, FastFiveColoring, run_execution
from repro.analysis import random_distinct_ids, summarize_activations, verify_execution
from repro.render import render_cycle, render_outputs
from repro.schedulers import BernoulliScheduler

N = 24
SEED = 7


def main():
    topology = Cycle(N)
    identifiers = random_distinct_ids(N, seed=SEED)
    schedule = BernoulliScheduler(p=0.4, seed=SEED)

    print(f"Coloring C_{N} with Algorithm 3 (wait-free, 5 colors)...")
    result = run_execution(FastFiveColoring(), topology, identifiers, schedule)

    verdict = verify_execution(topology, result, palette=range(5))
    summary = summarize_activations(result)

    print()
    print(render_cycle(identifiers, result.outputs))
    print()
    print(render_outputs(result))
    print()
    print(f"all terminated : {result.all_terminated}")
    print(f"proper coloring: {verdict.proper}")
    print(f"palette {{0..4}}: {verdict.palette_ok}")
    print(f"activations    : {summary}")

    assert verdict.ok and result.all_terminated
    print("\nOK — the outputs properly 5-color the cycle.")


if __name__ == "__main__":
    main()
