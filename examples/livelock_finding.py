#!/usr/bin/env python3
"""Reproduce finding E13 end-to-end: Algorithm 2 is not wait-free.

This example does not *assume* the finding — it re-derives it:

1. exhaustively explores the schedule space of Algorithm 2 on ``C_3``
   and finds the recurrent configuration from scratch;
2. replays the discovered schedule through the engine and shows the two
   processes accumulating activations without returning;
3. runs the same search on Algorithm 1, which comes back clean
   (configuration graph exhaustively acyclic), with its exact
   worst-case activation counts vs the Theorem 3.1 bound;
4. runs it on the repaired FastSixColoring — also clean.

Run:  python examples/livelock_finding.py
"""

from repro import Cycle, FiveColoring, SixColoring, run_execution
from repro.analysis import theorem_3_1_bound
from repro.extensions import FastSixColoring
from repro.lowerbounds import BoundedExplorer
from repro.model.schedule import FiniteSchedule

IDS = [1, 2, 3]


def search(algorithm, label):
    explorer = BoundedExplorer(algorithm, Cycle(3), IDS)
    outcome = explorer.find_livelock(max_depth=100, max_configs=400_000)
    status = "LIVELOCK" if outcome.found else (
        "clean (exhaustive)" if outcome.exhausted else "clean (bounded)"
    )
    print(f"{label:20s} -> {status}  ({outcome.configs_seen} configurations)")
    return explorer, outcome


def main():
    print(f"Exhaustive schedule-space search on C_3, identifiers {IDS}:\n")

    explorer2, outcome2 = search(FiveColoring(), "Algorithm 2")
    explorer1, outcome1 = search(SixColoring(), "Algorithm 1")
    _, outcome6 = search(FastSixColoring(), "FastSix (repair)")

    assert outcome2.found and not outcome1.found and not outcome6.found

    print("\nDiscovered witness schedule (prefix; loop the tail forever):")
    witness = outcome2.witness
    print("  " + " -> ".join("{" + ",".join(map(str, sorted(s))) + "}" for s in witness))

    # Replay: extend the loop many times and watch activations grow.
    loop_tail = witness[-2:]  # the repeating suffix
    extended = FiniteSchedule(list(witness) + list(loop_tail) * 200)
    result = run_execution(FiveColoring(), Cycle(3), IDS, extended)
    print("\nReplay with the loop extended 200x:")
    for p in range(3):
        output = result.outputs.get(p, "— none —")
        print(f"  p{p}: {result.activations[p]:4d} activations, output: {output}")
    assert not result.all_terminated

    print("\nAlgorithm 1 exact worst case over ALL schedules:")
    for p in range(3):
        worst = explorer1.max_activations(p)
        print(f"  p{p}: {worst:.0f} activations  (Theorem 3.1 bound: {theorem_3_1_bound(3)})")

    print("\nOK — finding E13 reproduced from scratch.")


if __name__ == "__main__":
    main()
