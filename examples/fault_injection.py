#!/usr/bin/env python3
"""Fault injection: crash-prone processes on the asynchronous cycle.

The paper's motivating scenario: nodes may crash (fail-stop) at any
point, and the healthy processes must still terminate with a proper
coloring.  This example:

1. crashes a third of the ring at random times under a random schedule
   and shows the survivors of Algorithm 3 finishing correctly;
2. replays the reproduction finding E13b — under the *synchronous*
   schedule a specific crash pattern starves two healthy processes of
   Algorithm 3 forever (safety still holds);
3. shows the repaired FastSixColoring finishing the same scenario.

Run:  python examples/fault_injection.py
"""

import random

from repro import CrashPlan, Cycle, FastFiveColoring, run_execution
from repro.analysis import verify_execution
from repro.extensions import FAST_SIX_PALETTE, FastSixColoring, demonstrate_crash_livelock
from repro.render import render_cycle
from repro.schedulers import BernoulliScheduler, SynchronousScheduler

N = 30
SEED = 11


def random_crash_demo():
    print(f"--- 1. random crashes on C_{N}, random schedule ---")
    rng = random.Random(SEED)
    crashed = sorted(rng.sample(range(N), N // 3))
    crash_times = {p: rng.randint(1, 10) for p in crashed}
    plan = CrashPlan(BernoulliScheduler(p=0.5, seed=SEED), crash_times=crash_times)

    identifiers = list(range(N))
    result = run_execution(FastFiveColoring(), Cycle(N), identifiers, plan)
    verdict = verify_execution(Cycle(N), result, palette=range(5))

    print(f"crashed processes: {crashed}")
    print(render_cycle(identifiers, result.outputs))
    survivors = set(range(N)) - set(crashed)
    print(f"survivors terminated: {survivors <= result.terminated}")
    print(f"proper coloring of terminated subgraph: {verdict.proper}")
    assert verdict.ok and survivors <= result.terminated


def crash_livelock_demo():
    print("\n--- 2. finding E13b: synchronous schedule + crashes starves Algorithm 3 ---")
    result = demonstrate_crash_livelock(steps=2000)
    stuck = sorted(result.pending - set(range(0, 20, 3)))
    print(f"crashed: every 3rd process of C_20 after one step")
    print(f"healthy-but-starved processes: {stuck}")
    print(f"their activation counts (no output!): "
          f"{[result.activations[p] for p in stuck]}")
    verdict = verify_execution(Cycle(20), result, palette=range(5))
    print(f"safety still holds: {verdict.ok}")
    assert stuck == [1, 2]


def repaired_demo():
    print("\n--- 3. the repair: FastSixColoring on the same scenario ---")
    result = demonstrate_crash_livelock(FastSixColoring(), steps=2000)
    crashed = set(range(0, 20, 3))
    verdict = verify_execution(Cycle(20), result, palette=FAST_SIX_PALETTE)
    print(f"survivors terminated: {not (result.pending - crashed)}")
    print(f"proper coloring (6-color pair palette): {verdict.proper}")
    assert verdict.ok and not (result.pending - crashed)


def main():
    random_crash_demo()
    crash_livelock_demo()
    repaired_demo()
    print("\nOK — fault-injection scenarios behaved as documented.")


if __name__ == "__main__":
    main()
