#!/usr/bin/env python3
"""Tutorial: write your own algorithm and let the tooling judge it.

The library is built for exactly this loop: implement a per-process
protocol against the ``Algorithm`` interface, then let

1. the conformance harness check the interface contracts,
2. the scheduler zoo + verifier check the guarantees empirically,
3. the bounded explorer check them *exhaustively* on small cycles.

We implement ``NaiveColoring`` — the protocol most people write first
("keep the smallest color my neighbors don't currently have") — and
watch the explorer defeat it: it is obstruction-free but not
wait-free (two lockstep neighbors chase each other's color forever).
Then we show the minimal fix suggested by the paper's Algorithm 1:
keep a *pair* of candidates, deferring in opposite directions.

Run:  python examples/custom_algorithm.py
"""

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.lowerbounds import BoundedExplorer
from repro.model import Cycle, check_algorithm, run_execution
from repro.schedulers import BernoulliScheduler


# ----------------------------------------------------------------------
# Attempt 1: the protocol everyone writes first.
# ----------------------------------------------------------------------
class NaiveState(NamedTuple):
    x: int
    color: int


class NaiveRegister(NamedTuple):
    x: int
    color: int


class NaiveColoring(Algorithm):
    """First-fit against the neighbors' current colors."""

    name = "tutorial-naive"

    def initial_state(self, x_input: int) -> NaiveState:
        return NaiveState(x=x_input, color=0)

    def register_value(self, state: NaiveState) -> NaiveRegister:
        return NaiveRegister(x=state.x, color=state.color)

    def step(self, state: NaiveState, views: Tuple) -> StepOutcome:
        taken = {v.color for v in active_views(views)}
        if state.color not in taken:
            return StepOutcome.ret(state, state.color)
        return StepOutcome.cont(NaiveState(state.x, mex(taken)))


# ----------------------------------------------------------------------
# Attempt 2: the Algorithm-1-style fix — a pair of candidates that
# defer in opposite directions of the identifier order.
# ----------------------------------------------------------------------
class PairState(NamedTuple):
    x: int
    a: int
    b: int


class PairRegister(NamedTuple):
    x: int
    color: Tuple[int, int]


class PairColoring(Algorithm):
    """Tutorial reimplementation of the paper's Algorithm 1 idea."""

    name = "tutorial-pair"

    def initial_state(self, x_input: int) -> PairState:
        return PairState(x=x_input, a=0, b=0)

    def register_value(self, state: PairState) -> PairRegister:
        return PairRegister(x=state.x, color=(state.a, state.b))

    def step(self, state: PairState, views: Tuple) -> StepOutcome:
        neighbors = active_views(views)
        mine = (state.a, state.b)
        if mine not in {v.color for v in neighbors}:
            return StepOutcome.ret(state, mine)
        return StepOutcome.cont(
            PairState(
                x=state.x,
                a=mex(v.color[0] for v in neighbors if v.x > state.x),
                b=mex(v.color[1] for v in neighbors if v.x < state.x),
            )
        )


def judge(algorithm, label):
    print(f"--- {label} ---")

    # 1. interface contracts
    report = check_algorithm(algorithm)
    print(f"contracts : {report}")
    assert report.ok

    # 2. empirical: a random asynchronous run
    n = 12
    result = run_execution(
        algorithm, Cycle(n), [7 * i + 3 for i in range(n)],
        BernoulliScheduler(p=0.5, seed=1), max_time=20_000,
    )
    print(f"random run: terminated {len(result.outputs)}/{n} "
          f"in {result.round_complexity} max activations")

    # 3. exhaustive: every schedule on C_3
    explorer = BoundedExplorer(algorithm, Cycle(3), [1, 2, 3])
    livelock = explorer.find_livelock(max_depth=80)
    if livelock.found:
        print("exhaustive: NOT WAIT-FREE — adversary loop: "
              + " -> ".join("{" + ",".join(map(str, sorted(s))) + "}"
                            for s in livelock.witness))
    else:
        worst = max(explorer.max_activations(p) for p in range(3))
        print(f"exhaustive: wait-free on C_3; exact worst case = {worst:.0f} activations")
    print()
    return livelock.found


def main():
    naive_fails = judge(NaiveColoring(), "attempt 1: naive first-fit")
    pair_fails = judge(PairColoring(), "attempt 2: pair of deferring candidates")
    assert naive_fails and not pair_fails
    print("OK — the explorer found the naive protocol's livelock and "
          "certified the pair protocol wait-free on C_3.")


if __name__ == "__main__":
    main()
