#!/usr/bin/env python3
"""Algorithm 4: wait-free O(Δ²)-coloring beyond the cycle (Appendix A).

Colors a torus, a star, a complete graph and a random graph with the
appendix's generalization of Algorithm 1, under asynchronous schedules
with crash injection, and prints per-topology statistics.

Run:  python examples/general_graphs.py
"""

import random

from repro import CrashPlan, Cycle, GeneralGraphColoring, Star, Torus, run_execution
from repro.analysis import format_table, verify_execution
from repro.model.topology import CompleteGraph, GeneralGraph
from repro.schedulers import BernoulliScheduler


def topologies():
    yield Torus(5, 6)
    yield Star(9)
    yield CompleteGraph(7)
    yield Cycle(40)
    try:
        import networkx as nx
    except ImportError:
        return
    yield GeneralGraph.from_networkx(
        nx.gnp_random_graph(36, 0.15, seed=4), name="gnp(36, 0.15)",
    )
    yield GeneralGraph.from_networkx(
        nx.random_regular_graph(5, 24, seed=4), name="5-regular(24)",
    )


def main():
    rows = []
    for topo in topologies():
        rng = random.Random(topo.n)
        identifiers = [23 * i + 5 for i in range(topo.n)]
        crashed = rng.sample(range(topo.n), topo.n // 6)
        plan = CrashPlan(
            BernoulliScheduler(p=0.5, seed=1),
            crash_times={p: rng.randint(1, 8) for p in crashed},
        )
        result = run_execution(
            GeneralGraphColoring(), topo, identifiers, plan, max_time=200_000,
        )
        palette = GeneralGraphColoring.palette(topo.max_degree())
        verdict = verify_execution(topo, result, palette=palette)
        survivors = set(range(topo.n)) - set(crashed)
        rows.append(
            {
                "topology": topo.name,
                "n": topo.n,
                "Δ": topo.max_degree(),
                "palette": palette.size,
                "colors_used": len(set(result.outputs.values())),
                "crashed": len(crashed),
                "survivors_done": survivors <= result.terminated,
                "proper": verdict.proper,
            }
        )
        assert verdict.ok

    print("Algorithm 4 (O(Δ²)-coloring) with crashes, asynchronous schedule:\n")
    print(format_table(rows))
    print("\nOK — every terminated subgraph properly colored within (Δ+1)(Δ+2)/2 colors.")


if __name__ == "__main__":
    main()
