"""MIS on the asynchronous cycle is not wait-free solvable (Property 2.1).

The paper proves this by reduction: a wait-free cycle-MIS algorithm
would solve strong symmetry breaking in shared memory, which
Attiya–Paz [6, Thm 11] rule out.  Impossibility over *all* algorithms
cannot be established by simulation, so the reproduction makes the
statement operational in two ways:

1. the reduction itself is implemented and runnable
   (:func:`repro.shm.simulation.run_mis_as_ssb`): any candidate's
   failure is mechanically translated into an SSB failure;
2. this module provides **candidate** MIS algorithms — each embodying
   a natural strategy — and :func:`falsify_mis` searches schedule
   space exhaustively (small ``n``) until every candidate is defeated,
   either by a *safety* violation (the MIS conditions become
   unsatisfiable) or by a *liveness* violation (a configuration-graph
   cycle: the adversary can starve termination forever, refuting
   wait-freedom).

The candidates:

* :class:`EagerLocalMaxMIS` — decide in one look: join the MIS iff no
  visible neighbor has a larger identifier.  Wait-free but unsafe: two
  adjacent processes started solo both see no one and both join.
* :class:`CautiousMIS` — wait until both neighbors are visible, then
  local maxima join and the rest follow.  Safe under full schedules
  but not wait-free: a sleeping neighbor blocks it forever.
* :class:`FlagConfirmMIS` — publish a tentative membership flag, join
  after seeing it uncontested twice, defer to a flagged neighbor
  otherwise.  A best-effort compromise; the explorer finds the
  interleaving that breaks it.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Sequence, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views
from repro.lowerbounds.explorer import BoundedExplorer, ExplorerConfig, SearchOutcome
from repro.model.topology import Cycle, Topology
from repro.shm.tasks import MISSpec
from repro.types import BOTTOM

__all__ = [
    "EagerLocalMaxMIS",
    "CautiousMIS",
    "FlagConfirmMIS",
    "mis_violation_predicate",
    "falsify_mis",
    "candidate_mis_algorithms",
]


class _MISRegister(NamedTuple):
    x: int
    flag: int  #: tentative membership bit


class _MISState(NamedTuple):
    x: int
    flag: int
    stable: int  #: consecutive rounds the flag was uncontested


class EagerLocalMaxMIS(Algorithm):
    """Join the MIS iff no *visible* neighbor has a larger identifier.

    Decides at its first activation — maximally wait-free, and exactly
    thereby unsafe: solo prefixes force adjacent double-joins.
    """

    name = "mis-eager-local-max"

    def initial_state(self, x_input: int) -> _MISState:
        return _MISState(x=x_input, flag=1, stable=0)

    def register_value(self, state: _MISState) -> _MISRegister:
        return _MISRegister(x=state.x, flag=state.flag)

    def step(self, state: _MISState, views: Tuple) -> StepOutcome:
        others = active_views(views)
        if all(state.x > v.x for v in others):
            return StepOutcome.ret(state, 1)
        return StepOutcome.ret(_MISState(state.x, 0, 0), 0)


class CautiousMIS(Algorithm):
    """Wait for both neighbors, then join iff locally maximal (and defer
    to a larger-id neighbor that has not yet renounced).

    Safe on schedules where everyone participates, but a sleeping
    neighbor blocks it forever — the explorer exhibits the livelock.
    """

    name = "mis-cautious"

    def initial_state(self, x_input: int) -> _MISState:
        return _MISState(x=x_input, flag=1, stable=0)

    def register_value(self, state: _MISState) -> _MISRegister:
        return _MISRegister(x=state.x, flag=state.flag)

    def step(self, state: _MISState, views: Tuple) -> StepOutcome:
        if any(v is BOTTOM for v in views):
            return StepOutcome.cont(state)  # keep waiting: not wait-free
        if all(state.x > v.x for v in views):
            return StepOutcome.ret(state, 1)
        if any(v.flag == 1 and v.x > state.x for v in views):
            return StepOutcome.ret(_MISState(state.x, 0, 0), 0)
        # Larger neighbors renounced: claim membership ourselves.
        return StepOutcome.ret(state, 1)


class FlagConfirmMIS(Algorithm):
    """Two-phase flag/confirm strategy.

    Publish ``flag = 1`` while believing to be locally maximal among
    visible flagged processes; return 1 after the flag survives two
    consecutive uncontested rounds, return 0 once a flagged visible
    neighbor with a larger identifier has been seen twice.
    """

    name = "mis-flag-confirm"

    def initial_state(self, x_input: int) -> _MISState:
        return _MISState(x=x_input, flag=1, stable=0)

    def register_value(self, state: _MISState) -> _MISRegister:
        return _MISRegister(x=state.x, flag=state.flag)

    def step(self, state: _MISState, views: Tuple) -> StepOutcome:
        others = active_views(views)
        contested = any(v.flag == 1 and v.x > state.x for v in others)
        if contested:
            if state.flag == 0 and state.stable >= 1:
                return StepOutcome.ret(_MISState(state.x, 0, 0), 0)
            return StepOutcome.cont(_MISState(state.x, 0, state.stable + (state.flag == 0)))
        if state.flag == 1 and state.stable >= 1:
            return StepOutcome.ret(state, 1)
        return StepOutcome.cont(
            _MISState(state.x, 1, state.stable + 1 if state.flag == 1 else 0)
        )


def candidate_mis_algorithms() -> Dict[str, Algorithm]:
    """The candidate zoo, keyed by name."""
    algorithms = [EagerLocalMaxMIS(), CautiousMIS(), FlagConfirmMIS()]
    return {a.name: a for a in algorithms}


def mis_violation_predicate(topology: Topology):
    """Safety predicate for the explorer: a configuration whose returned
    outputs are already a lost position for the MIS spec (the adversary
    stops the schedule right there)."""
    spec = MISSpec(topology)

    def predicate(config: ExplorerConfig) -> Optional[str]:
        outputs = config.output_dict()
        if not outputs:
            return None
        violations = spec.doomed(outputs)
        if violations:
            return "; ".join(violations)
        return None

    return predicate


def falsify_mis(
    algorithm: Algorithm,
    n: int = 3,
    identifiers: Optional[Sequence[int]] = None,
    *,
    max_depth: int = 12,
    max_configs: int = 200_000,
) -> SearchOutcome:
    """Defeat one candidate MIS algorithm on ``C_n``.

    First searches for a safety violation (doomed outputs), then for a
    livelock (wait-freedom violation).  Returns the first successful
    :class:`~repro.lowerbounds.explorer.SearchOutcome`; if neither
    search finds anything *and* both were exhaustive, the candidate
    survives the bounded check (no candidate in
    :func:`candidate_mis_algorithms` does).
    """
    topology = Cycle(n)
    ids = list(identifiers) if identifiers is not None else list(range(1, n + 1))
    explorer = BoundedExplorer(algorithm, topology, ids)

    safety = explorer.find_violation(
        mis_violation_predicate(topology),
        max_depth=max_depth,
        max_configs=max_configs,
    )
    if safety.found:
        return safety
    liveness = explorer.find_livelock(max_depth=max_depth, max_configs=max_configs)
    if liveness.found:
        return liveness
    # Neither found: report the stronger (exhaustive) of the two.
    return safety if safety.exhausted else liveness
