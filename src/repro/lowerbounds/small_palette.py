"""Five colors are necessary: falsifying 4-color candidates (Property 2.3).

On ``C_3`` the paper's model coincides with 3-process immediate-snapshot
shared memory, where renaming needs ``2n − 1 = 5`` names [6, 14] — so no
generic wait-free cycle-coloring algorithm can use fewer than 5 colors.
As with MIS, the impossibility quantifies over all algorithms; the
reproduction makes it operational by defeating *candidate* 4-color
algorithms with exhaustive bounded search:

* :class:`PureGreedyColoring` — one color, first-fit against current
  neighbor colors (uses only ``{0, 1, 2}``).  Obstruction-free but not
  wait-free: two neighbors activated in lock-step chase each other's
  color forever (the explorer returns the loop).
* :class:`RankGreedyColoring` — Algorithm 1's ``a``-component alone
  (defer only to higher identifiers; colors in ``{0, 1, 2}``).  The
  explorer finds the interleaving where it stalls or collides.
* :class:`CappedFiveColoring` — Algorithm 2 with the ``b``-component
  clamped into ``{0, …, 3}``.  The clamp breaks Lemma 3.12's
  freshness argument; the explorer exhibits the resulting livelock or
  improper output.

For contrast, :func:`alg2_exact_worst_case` runs the same machinery on
the real Algorithm 2 and proves (exhaustively, small ``n``) that *no*
schedule produces a violation and that the configuration graph is
acyclic — the positive counterpart used by experiment E9/E10 tables.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Sequence, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.coloring5 import FiveColoring
from repro.lowerbounds.explorer import BoundedExplorer, ExplorerConfig, SearchOutcome
from repro.model.topology import Cycle, Topology

__all__ = [
    "PureGreedyColoring",
    "RankGreedyColoring",
    "CappedFiveColoring",
    "coloring_violation_predicate",
    "falsify_coloring",
    "candidate_small_palette_algorithms",
    "alg2_exact_worst_case",
]


class _GreedyRegister(NamedTuple):
    x: int
    c: int


class _GreedyState(NamedTuple):
    x: int
    c: int


class PureGreedyColoring(Algorithm):
    """First-fit recoloring with a single color component (3 colors)."""

    name = "coloring-pure-greedy"

    def initial_state(self, x_input: int) -> _GreedyState:
        return _GreedyState(x=x_input, c=0)

    def register_value(self, state: _GreedyState) -> _GreedyRegister:
        return _GreedyRegister(x=state.x, c=state.c)

    def step(self, state: _GreedyState, views: Tuple) -> StepOutcome:
        others = active_views(views)
        taken = {v.c for v in others}
        if state.c not in taken:
            return StepOutcome.ret(state, state.c)
        return StepOutcome.cont(_GreedyState(state.x, mex(taken)))


class RankGreedyColoring(Algorithm):
    """Algorithm 1's ``a``-component alone: defer to higher identifiers."""

    name = "coloring-rank-greedy"

    def initial_state(self, x_input: int) -> _GreedyState:
        return _GreedyState(x=x_input, c=0)

    def register_value(self, state: _GreedyState) -> _GreedyRegister:
        return _GreedyRegister(x=state.x, c=state.c)

    def step(self, state: _GreedyState, views: Tuple) -> StepOutcome:
        others = active_views(views)
        taken = {v.c for v in others}
        if state.c not in taken:
            return StepOutcome.ret(state, state.c)
        higher = {v.c for v in others if v.x > state.x}
        return StepOutcome.cont(_GreedyState(state.x, mex(higher)))


class _CappedState(NamedTuple):
    x: int
    a: int
    b: int


class _CappedRegister(NamedTuple):
    x: int
    a: int
    b: int


class CappedFiveColoring(Algorithm):
    """Algorithm 2 with the ``b`` first-fit clamped into ``{0..3}``.

    The honest attempt at a 4-color variant: identical to Algorithm 2
    except ``b_p ← min({0,…,3} \\ C)`` falling back to recycling color
    3 when ``C`` covers all four — which is exactly where the paper's
    freshness argument (Lemma 3.12) needs the fifth color.
    """

    name = "coloring-capped-four"

    def initial_state(self, x_input: int) -> _CappedState:
        return _CappedState(x=x_input, a=0, b=0)

    def register_value(self, state: _CappedState) -> _CappedRegister:
        return _CappedRegister(x=state.x, a=state.a, b=state.b)

    def step(self, state: _CappedState, views: Tuple) -> StepOutcome:
        others = active_views(views)
        taken_all = set()
        taken_higher = set()
        for v in others:
            taken_all.add(v.a)
            taken_all.add(v.b)
            if v.x > state.x:
                taken_higher.add(v.a)
                taken_higher.add(v.b)
        if state.a not in taken_all:
            return StepOutcome.ret(state, state.a)
        if state.b not in taken_all:
            return StepOutcome.ret(state, state.b)
        new_a = mex(taken_higher)
        free = [c for c in range(4) if c not in taken_all]
        new_b = free[0] if free else 3
        return StepOutcome.cont(_CappedState(state.x, new_a, new_b))


def candidate_small_palette_algorithms() -> Dict[str, Algorithm]:
    """The candidate zoo, keyed by name."""
    algorithms = [PureGreedyColoring(), RankGreedyColoring(), CappedFiveColoring()]
    return {a.name: a for a in algorithms}


def coloring_violation_predicate(topology: Topology, palette_size: int):
    """Safety predicate: monochromatic edge among returned outputs, or
    an output outside ``{0, …, palette_size−1}``."""

    def predicate(config: ExplorerConfig) -> Optional[str]:
        outputs = config.output_dict()
        for p, c in outputs.items():
            if not (0 <= c < palette_size):
                return f"process {p} output {c} outside 0..{palette_size - 1}"
        for p, q in topology.edges():
            if p in outputs and q in outputs and outputs[p] == outputs[q]:
                return f"adjacent {p}, {q} both output {outputs[p]}"
        return None

    return predicate


def falsify_coloring(
    algorithm: Algorithm,
    n: int = 3,
    identifiers: Optional[Sequence[int]] = None,
    *,
    palette_size: int = 4,
    max_depth: int = 14,
    max_configs: int = 200_000,
) -> SearchOutcome:
    """Defeat one candidate small-palette coloring algorithm on ``C_n``.

    Searches safety first (improper or out-of-palette output), then
    liveness (livelock ⇒ not wait-free).
    """
    topology = Cycle(n)
    ids = list(identifiers) if identifiers is not None else list(range(1, n + 1))
    explorer = BoundedExplorer(algorithm, topology, ids)

    safety = explorer.find_violation(
        coloring_violation_predicate(topology, palette_size),
        max_depth=max_depth,
        max_configs=max_configs,
    )
    if safety.found:
        return safety
    liveness = explorer.find_livelock(max_depth=max_depth, max_configs=max_configs)
    if liveness.found:
        return liveness
    return safety if safety.exhausted else liveness


def alg2_exact_worst_case(
    n: int = 3,
    identifiers: Optional[Sequence[int]] = None,
    *,
    max_configs: int = 500_000,
) -> Dict[int, float]:
    """Exact worst-case activation counts of Algorithm 2 on ``C_n``.

    Exhaustive over *all* schedules — the small-``n`` ground truth that
    the Theorem 3.11 bounds are checked against in experiment E3.
    Returns ``{pid: worst-case activations}``; all values are finite
    iff Algorithm 2 is wait-free on this instance (it is).
    """
    topology = Cycle(n)
    ids = list(identifiers) if identifiers is not None else list(range(1, n + 1))
    explorer = BoundedExplorer(FiveColoring(), topology, ids)
    return {
        p: explorer.max_activations(p, max_configs=max_configs)
        for p in range(n)
    }
