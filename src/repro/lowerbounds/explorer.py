"""Bounded exhaustive exploration of schedule space (small ``n``).

The paper's claims quantify over *all* schedules; for small systems we
can check them exhaustively.  A *configuration* is the full system
state — private states, register contents, outputs — and the adversary
moves by picking any non-empty subset of working processes to activate
(our engine's simultaneous write-then-read semantics).  Configurations
are hashable because algorithm states and register payloads are plain
named tuples.

The explorer supports the three queries used by the falsifiers and
the exact small-``n`` experiments:

* :meth:`BoundedExplorer.find_violation` — breadth-first search for a
  configuration violating a predicate; returns the (shortest-in-steps)
  witness schedule, replayable through the engine;
* :meth:`BoundedExplorer.find_livelock` — depth-first search for a
  reachable cycle in the configuration graph: the adversary can loop
  that cycle forever, so any such cycle refutes wait-freedom (some
  process is activated infinitely often without returning);
* :meth:`BoundedExplorer.max_activations` — exact worst-case
  activation count of one process over *all* schedules, by memoized
  longest-path over the configuration DAG (``math.inf`` when a cycle
  makes it unbounded).

All searches are exact up to the exploration limits (``max_depth``
steps per schedule, ``max_configs`` distinct configurations); results
report whether the search was exhausted or truncated.
"""

from __future__ import annotations

import itertools
import math
import sys
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.errors import ExecutionError
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Topology
from repro.types import BOTTOM, ProcessId

__all__ = ["ExplorerConfig", "BoundedExplorer", "SearchOutcome"]

#: Marker wrapping a returned output inside the hashable outputs tuple
#: (distinguishes "returned None" from "not returned").
_RETURNED = "returned"


class ExplorerConfig(NamedTuple):
    """One hashable configuration of the whole system."""

    states: Tuple[Any, ...]
    registers: Tuple[Any, ...]
    outputs: Tuple[Optional[Tuple[str, Any]], ...]

    def output_dict(self) -> Dict[ProcessId, Any]:
        """The returned outputs as a ``{pid: value}`` dict."""
        return {
            p: marked[1]
            for p, marked in enumerate(self.outputs)
            if marked is not None
        }

    def working(self) -> Tuple[ProcessId, ...]:
        """Processes that have not returned."""
        return tuple(p for p, o in enumerate(self.outputs) if o is None)

    @property
    def all_returned(self) -> bool:
        """Whether every process returned."""
        return all(o is not None for o in self.outputs)


@dataclass
class SearchOutcome:
    """Result of one exploration query.

    ``witness`` is the step list (activation sets) reaching the found
    configuration, directly replayable as a
    :class:`~repro.model.schedule.FiniteSchedule`; ``None`` if nothing
    was found.  ``exhausted`` tells whether the search space within the
    limits was fully covered (a ``None`` witness is a proof only when
    ``exhausted`` is true).
    """

    witness: Optional[List[FrozenSet[ProcessId]]]
    description: str
    exhausted: bool
    configs_seen: int

    @property
    def found(self) -> bool:
        """Whether a witness was found."""
        return self.witness is not None

    def schedule(self) -> FiniteSchedule:
        """The witness as a replayable schedule."""
        if self.witness is None:
            raise ExecutionError("no witness to replay")
        return FiniteSchedule(self.witness)


class BoundedExplorer:
    """Exhaustive schedule-space search for one (algorithm, topology,
    inputs) triple."""

    def __init__(self, algorithm, topology: Topology, inputs):
        if len(inputs) != topology.n:
            raise ExecutionError(
                f"got {len(inputs)} inputs for {topology.n} processes"
            )
        self.algorithm = algorithm
        self.topology = topology
        self.inputs = list(inputs)
        self.n = topology.n
        self._neighbors = [topology.neighbors(p) for p in topology.processes()]

    # ------------------------------------------------------------------
    # Transition system
    # ------------------------------------------------------------------
    def initial_config(self) -> ExplorerConfig:
        """The configuration before any process wakes up."""
        states = tuple(
            self.algorithm.initial_state(self.inputs[p]) for p in range(self.n)
        )
        return ExplorerConfig(
            states=states,
            registers=(BOTTOM,) * self.n,
            outputs=(None,) * self.n,
        )

    def moves(self, config: ExplorerConfig) -> Iterator[FrozenSet[ProcessId]]:
        """All adversary moves: non-empty subsets of working processes."""
        working = config.working()
        for size in range(1, len(working) + 1):
            for subset in itertools.combinations(working, size):
                yield frozenset(subset)

    def apply(self, config: ExplorerConfig, subset: FrozenSet[ProcessId]) -> ExplorerConfig:
        """The configuration after simultaneously activating ``subset``.

        Mirrors the engine: all writes first, then all reads/updates.
        """
        registers = list(config.registers)
        for p in subset:
            registers[p] = self.algorithm.register_value(config.states[p])
        states = list(config.states)
        outputs = list(config.outputs)
        for p in subset:
            views = tuple(registers[q] for q in self._neighbors[p])
            outcome = self.algorithm.step(config.states[p], views)
            states[p] = outcome.state
            if outcome.returned:
                outputs[p] = (_RETURNED, outcome.output)
        return ExplorerConfig(tuple(states), tuple(registers), tuple(outputs))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_violation(
        self,
        predicate: Callable[[ExplorerConfig], Optional[str]],
        *,
        max_depth: int = 20,
        max_configs: int = 500_000,
    ) -> SearchOutcome:
        """BFS for a configuration where ``predicate`` reports a violation.

        ``predicate(config)`` returns a description string for a
        violating configuration, else ``None``.  The initial
        configuration is checked too.
        """
        start = self.initial_config()
        description = predicate(start)
        if description:
            return SearchOutcome([], description, exhausted=False, configs_seen=1)

        visited = {start}
        frontier: List[Tuple[ExplorerConfig, List[FrozenSet[ProcessId]]]] = [(start, [])]
        exhausted = True
        for _depth in range(max_depth):
            next_frontier: List[Tuple[ExplorerConfig, List[FrozenSet[ProcessId]]]] = []
            for config, path in frontier:
                for subset in self.moves(config):
                    successor = self.apply(config, subset)
                    if successor in visited:
                        continue
                    if len(visited) >= max_configs:
                        exhausted = False
                        continue
                    visited.add(successor)
                    witness = path + [subset]
                    description = predicate(successor)
                    if description:
                        return SearchOutcome(
                            witness, description, exhausted=False,
                            configs_seen=len(visited),
                        )
                    next_frontier.append((successor, witness))
            if not next_frontier:
                return SearchOutcome(
                    None, "no violation reachable", exhausted=exhausted,
                    configs_seen=len(visited),
                )
            frontier = next_frontier
        return SearchOutcome(
            None, "no violation within depth", exhausted=False,
            configs_seen=len(visited),
        )

    def find_livelock(
        self,
        *,
        max_depth: int = 40,
        max_configs: int = 500_000,
    ) -> SearchOutcome:
        """DFS for a reachable configuration-graph cycle.

        Every move activates at least one working process, so a cycle
        means the adversary can schedule infinitely many activations of
        some never-returning process — refuting wait-freedom.  The
        witness is a schedule prefix whose last configuration equals an
        earlier one on the path (loop the suffix forever).
        """
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * max_depth + 1000))
        start = self.initial_config()
        on_path: Dict[ExplorerConfig, int] = {start: 0}
        path: List[FrozenSet[ProcessId]] = []
        fully_explored: set = set()
        seen = {start}
        truncated = False

        def dfs(config: ExplorerConfig, depth: int) -> Optional[List[FrozenSet[ProcessId]]]:
            nonlocal truncated
            if depth >= max_depth:
                truncated = True
                return None
            for subset in self.moves(config):
                successor = self.apply(config, subset)
                if successor in on_path:
                    path.append(subset)
                    return list(path)
                if successor in fully_explored:
                    continue
                if len(seen) >= max_configs:
                    truncated = True
                    continue
                seen.add(successor)
                on_path[successor] = depth + 1
                path.append(subset)
                witness = dfs(successor, depth + 1)
                if witness is not None:
                    return witness
                path.pop()
                del on_path[successor]
                fully_explored.add(successor)
            return None

        witness = dfs(start, 0)
        if witness is not None:
            return SearchOutcome(
                witness,
                "configuration repeats: adversary can loop this schedule forever",
                exhausted=False,
                configs_seen=len(seen),
            )
        return SearchOutcome(
            None,
            "configuration graph is acyclic within limits (wait-free so far)",
            exhausted=not truncated,
            configs_seen=len(seen),
        )

    def max_activations(
        self,
        pid: ProcessId,
        *,
        max_configs: int = 500_000,
    ) -> float:
        """Exact worst-case activations of ``pid`` before it returns.

        Longest path (counting only steps that activate ``pid``) over
        the configuration graph, memoized; ``math.inf`` if a reachable
        cycle can starve ``pid`` of progress while activating it.
        Raises :class:`ExecutionError` when ``max_configs`` is hit —
        the answer would be unreliable.
        """
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 50_000))
        memo: Dict[ExplorerConfig, float] = {}
        in_progress: set = set()

        def best(config: ExplorerConfig) -> float:
            if config.outputs[pid] is not None:
                return 0.0
            if config in memo:
                return memo[config]
            if config in in_progress:
                return math.inf
            if len(memo) + len(in_progress) >= max_configs:
                raise ExecutionError(
                    "configuration budget exhausted; raise max_configs"
                )
            in_progress.add(config)
            result = 0.0
            for subset in self.moves(config):
                successor = self.apply(config, subset)
                value = (1.0 if pid in subset else 0.0) + best(successor)
                result = max(result, value)
                if result == math.inf:
                    break
            in_progress.discard(config)
            memo[config] = result
            return result

        return best(self.initial_config())
