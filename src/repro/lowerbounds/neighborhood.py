"""Linial's neighborhood-graph apparatus (Property 2.2, [26]).

The paper's round-complexity optimality rests on Linial's lower bound:
even synchronously and failure-free, 3-coloring the ring needs
``Ω(log* n)`` rounds.  The finite heart of that proof is executable:

A ``t``-round LOCAL algorithm on the oriented ring with identifiers
from ``{0, …, m−1}`` is exactly a function from *radius-t views*
(windows of ``2t+1`` distinct identifiers) to colors, such that any two
views that can sit on adjacent nodes get different colors.  Packaging
the views as vertices and the adjacency constraint as edges yields the
**neighborhood graph** ``N_t(m)``, and:

    a t-round k-coloring algorithm exists  ⟺  χ(N_t(m)) ≤ k.

This module builds ``N_0(m)`` and ``N_1(m)``, decides 2-colorability
(bipartiteness), and computes exact chromatic numbers for small ``m``
by clique-seeded DSATUR branch-and-bound.  What the small cases already
*prove* (experiment E17):

* ``χ(N_0(m)) = m`` — with zero communication, nothing beats using the
  whole identifier space;
* ``N_1(m)`` contains odd cycles for every ``m ≥ 3`` — hence **no
  1-round algorithm 2-colors rings**, for any identifier space
  (the finite shadow of the Ω(n) bound for 2-coloring);
* exact ``χ(N_1(m))`` values quantify how much one round of
  communication buys; Linial's theorem says ``χ(N_t(m)) ≥
  log^{(2t)} m``, so these values must (and do) grow without bound as
  ``m`` does — which is precisely why O(1)-round 3-coloring is
  impossible and ``log* n`` rounds are necessary.

Realizability caveat: an edge of ``N_1(m)`` is a window of 4 distinct
identifiers, realizable on every ring with ``n ≥ 4``; the lower bounds
derived here therefore apply to algorithms that must work for all
``n`` — the same regime as the paper's algorithms.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "ViewGraph",
    "neighborhood_graph",
    "is_bipartite",
    "greedy_chromatic_upper_bound",
    "clique_lower_bound",
    "exact_chromatic_number",
]


class ViewGraph:
    """A small undirected graph over hashable view-vertices."""

    def __init__(self):
        self._adj: Dict[object, set] = {}

    def add_vertex(self, v) -> None:
        self._adj.setdefault(v, set())

    def add_edge(self, u, v) -> None:
        if u == v:
            raise ReproError("neighborhood graphs are loop-free")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    @property
    def n(self) -> int:
        return len(self._adj)

    @property
    def m(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[object]:
        return list(self._adj)

    def neighbors(self, v) -> set:
        return self._adj[v]


def neighborhood_graph(t: int, m: int) -> ViewGraph:
    """Build ``N_t(m)`` for the oriented ring, ``t ∈ {0, 1}``.

    ``t = 0``: vertices are single identifiers; any two distinct
    identifiers can be neighbors on some ring.
    ``t = 1``: vertices are ordered distinct triples ``(a, b, c)``
    (predecessor, self, successor); ``(a, b, c) ~ (b, c, d)`` for every
    ``d ∉ {a, b, c}``.
    """
    if m < 3:
        raise ReproError("need an identifier space of size >= 3")
    graph = ViewGraph()
    ids = range(m)
    if t == 0:
        for a in ids:
            graph.add_vertex(a)
        for a, b in itertools.combinations(ids, 2):
            graph.add_edge(a, b)
        return graph
    if t == 1:
        for triple in itertools.permutations(ids, 3):
            graph.add_vertex(triple)
        for a, b, c in itertools.permutations(ids, 3):
            for d in ids:
                if d not in (a, b, c):
                    graph.add_edge((a, b, c), (b, c, d))
        return graph
    raise ReproError("only t in {0, 1} is supported (sizes explode beyond)")


def is_bipartite(graph: ViewGraph) -> bool:
    """2-colorability by BFS; ``False`` means no 2-color algorithm."""
    color: Dict[object, int] = {}
    for start in graph.vertices():
        if start in color:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v not in color:
                    color[v] = 1 - color[u]
                    stack.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def greedy_chromatic_upper_bound(graph: ViewGraph) -> int:
    """Largest-degree-first greedy coloring (an upper bound on χ)."""
    order = sorted(graph.vertices(), key=lambda v: -len(graph.neighbors(v)))
    colors: Dict[object, int] = {}
    best = 0
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
        best = max(best, c + 1)
    return best


def clique_lower_bound(graph: ViewGraph) -> int:
    """A greedily grown clique (a lower bound on χ)."""
    best = 0
    vertices = sorted(graph.vertices(), key=lambda v: -len(graph.neighbors(v)))
    for seed in vertices[: min(len(vertices), 40)]:
        clique = [seed]
        candidates = set(graph.neighbors(seed))
        while candidates:
            v = max(candidates, key=lambda u: len(graph.neighbors(u) & candidates))
            clique.append(v)
            candidates &= graph.neighbors(v)
        best = max(best, len(clique))
    return best


def _k_colorable(graph: ViewGraph, k: int, node_budget: int) -> Optional[bool]:
    """Exact k-colorability by DSATUR branch-and-bound.

    Returns ``True``/``False``, or ``None`` if ``node_budget`` search
    nodes were exhausted (inconclusive).
    """
    vertices = graph.vertices()
    colors: Dict[object, int] = {}
    budget = [node_budget]

    def saturation(v) -> int:
        return len({colors[u] for u in graph.neighbors(v) if u in colors})

    def pick() -> object:
        uncolored = [v for v in vertices if v not in colors]
        return max(
            uncolored,
            key=lambda v: (saturation(v), len(graph.neighbors(v))),
        )

    def solve() -> Optional[bool]:
        if len(colors) == len(vertices):
            return True
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        v = pick()
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        # Symmetry breaking: allow at most one brand-new color.
        used = max(colors.values(), default=-1)
        inconclusive = False
        for c in range(min(used + 2, k)):
            if c in taken:
                continue
            colors[v] = c
            result = solve()
            del colors[v]
            if result is True:
                return True
            if result is None:
                inconclusive = True
        return None if inconclusive else False

    return solve()


def exact_chromatic_number(
    graph: ViewGraph, *, node_budget: int = 2_000_000,
) -> Tuple[int, bool]:
    """``(χ, exact)`` — chromatic number, or a greedy upper bound with
    ``exact=False`` when the search budget runs out."""
    lower = max(2, clique_lower_bound(graph)) if graph.m else 1
    upper = greedy_chromatic_upper_bound(graph)
    for k in range(lower, upper):
        result = _k_colorable(graph, k, node_budget)
        if result is True:
            return k, True
        if result is None:
            return upper, False
    return upper, True
