"""Exact progress-condition classification (the §1.3 taxonomy).

The paper leans on Herlihy–Shavit's progress hierarchy [25]: its main
algorithm is claimed **wait-free**, built from a **starvation-free**
identifier-reduction component and an **obstruction-free**
subcomponent.  For small instances all three conditions are decidable
by analysis of the (finite) configuration graph:

* **wait-free** — every process returns within a bounded number of its
  own activations, over all schedules ⟺ the configuration graph is
  acyclic (any cycle can be looped forever and every move activates a
  working process);
* **starvation-free** — every process returns under every *fair*
  schedule (each working process activated infinitely often) ⟺ no
  reachable strongly-connected component contains edges whose
  activation sets jointly cover the component's working set (inside
  such an SCC the adversary can build a fair infinite run; conversely,
  an infinite fair run eventually stays inside one SCC and must
  activate all working processes there);
* **obstruction-free** — from every reachable configuration, every
  working process that runs *solo* eventually returns ⟺ no solo chain
  revisits a configuration before returning.

:func:`classify_progress` computes all three exactly (up to a
configuration budget).  Experiment E18 tabulates the shipped
algorithms: notably, Algorithm 2 comes out **obstruction-free but not
starvation-free** — the E13 chase is a *fair* cycle — which sharpens
the finding: the paper's composed wait-freedom claim fails at the
starvation-freedom level already, while the obstruction-freedom of its
subcomponent survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.lowerbounds.explorer import BoundedExplorer, ExplorerConfig
from repro.model.topology import Topology
from repro.types import ProcessId

__all__ = ["ProgressReport", "classify_progress"]


@dataclass
class ProgressReport:
    """Exact (or budget-truncated) progress verdicts for one instance."""

    wait_free: Optional[bool]
    starvation_free: Optional[bool]
    obstruction_free: Optional[bool]
    configs: int
    exhausted: bool

    def summary(self) -> str:
        """Compact ``WF/SF/OF`` rendering."""
        def mark(value: Optional[bool]) -> str:
            return "?" if value is None else ("yes" if value else "NO")

        suffix = "" if self.exhausted else " (truncated)"
        return (
            f"wait-free={mark(self.wait_free)} "
            f"starvation-free={mark(self.starvation_free)} "
            f"obstruction-free={mark(self.obstruction_free)}"
            f" [{self.configs} configs]{suffix}"
        )


def _reachable_graph(
    explorer: BoundedExplorer, max_configs: int,
) -> Tuple[Dict[ExplorerConfig, List[Tuple[FrozenSet[ProcessId], ExplorerConfig]]], bool]:
    """BFS-enumerate the configuration graph (config -> labeled edges)."""
    start = explorer.initial_config()
    graph: Dict[ExplorerConfig, List[Tuple[FrozenSet[ProcessId], ExplorerConfig]]] = {}
    frontier = [start]
    graph[start] = []
    exhausted = True
    while frontier:
        config = frontier.pop()
        edges = []
        for subset in explorer.moves(config):
            successor = explorer.apply(config, subset)
            edges.append((subset, successor))
            if successor not in graph:
                if len(graph) >= max_configs:
                    exhausted = False
                    continue
                graph[successor] = []
                frontier.append(successor)
        graph[config] = edges
    return graph, exhausted


def _tarjan_sccs(graph) -> List[List[ExplorerConfig]]:
    """Iterative Tarjan strongly-connected components."""
    index: Dict[ExplorerConfig, int] = {}
    low: Dict[ExplorerConfig, int] = {}
    on_stack: Set[ExplorerConfig] = set()
    stack: List[ExplorerConfig] = []
    sccs: List[List[ExplorerConfig]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for _subset, successor in edges:
                if successor not in graph:
                    continue  # truncated frontier
                if successor not in index:
                    index[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def classify_progress(
    algorithm,
    topology: Topology,
    inputs: Sequence,
    *,
    max_configs: int = 150_000,
) -> ProgressReport:
    """Classify wait-/starvation-/obstruction-freedom on one instance."""
    explorer = BoundedExplorer(algorithm, topology, inputs)
    graph, exhausted = _reachable_graph(explorer, max_configs)

    # ---- cycles / SCC analysis --------------------------------------
    sccs = _tarjan_sccs(graph)
    members: Dict[ExplorerConfig, int] = {}
    for i, component in enumerate(sccs):
        for config in component:
            members[config] = i

    has_cycle = False
    fair_cycle = False
    for i, component in enumerate(sccs):
        internal = [
            (subset, succ)
            for config in component
            for subset, succ in graph[config]
            if succ in members and members[succ] == i
        ]
        if not internal:
            continue
        has_cycle = True
        working = set(component[0].working())
        coverage: Set[ProcessId] = set()
        for subset, _succ in internal:
            coverage |= subset
        if working <= coverage:
            fair_cycle = True
            break

    wait_free: Optional[bool] = (not has_cycle) if exhausted else (
        False if has_cycle else None
    )
    starvation_free: Optional[bool] = (not fair_cycle) if exhausted else (
        False if fair_cycle else None
    )

    # ---- obstruction-freedom: solo chains ---------------------------
    obstruction_free: Optional[bool] = True
    for config in graph:
        for p in config.working():
            seen = {config}
            cursor = config
            while True:
                cursor = explorer.apply(cursor, frozenset({p}))
                if cursor.outputs[p] is not None:
                    break
                if cursor in seen:
                    obstruction_free = False
                    break
                seen.add(cursor)
                if len(seen) > 10_000:
                    obstruction_free = None
                    break
            if obstruction_free is False:
                break
        if obstruction_free is False:
            break
    if obstruction_free is True and not exhausted:
        obstruction_free = None

    return ProgressReport(
        wait_free=wait_free,
        starvation_free=starvation_free,
        obstruction_free=obstruction_free,
        configs=len(graph),
        exhausted=exhausted,
    )
