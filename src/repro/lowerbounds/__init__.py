"""Lower-bound tooling: bounded exhaustive search and falsifiers.

* :mod:`repro.lowerbounds.explorer` — exhaustive schedule-space search
  for small systems (violation search, livelock detection, exact
  worst-case activation counts);
* :mod:`repro.lowerbounds.mis` — Property 2.1 made operational:
  candidate MIS algorithms and their defeat;
* :mod:`repro.lowerbounds.small_palette` — Property 2.3 made
  operational: candidate 4-color algorithms and their defeat, plus
  exact Algorithm 2 worst cases.
"""

from repro.lowerbounds.explorer import BoundedExplorer, ExplorerConfig, SearchOutcome
from repro.lowerbounds.progress import ProgressReport, classify_progress
from repro.lowerbounds.neighborhood import (
    ViewGraph,
    exact_chromatic_number,
    is_bipartite,
    neighborhood_graph,
)
from repro.lowerbounds.mis import (
    CautiousMIS,
    EagerLocalMaxMIS,
    FlagConfirmMIS,
    candidate_mis_algorithms,
    falsify_mis,
    mis_violation_predicate,
)
from repro.lowerbounds.small_palette import (
    CappedFiveColoring,
    PureGreedyColoring,
    RankGreedyColoring,
    alg2_exact_worst_case,
    candidate_small_palette_algorithms,
    coloring_violation_predicate,
    falsify_coloring,
)

__all__ = [
    "BoundedExplorer",
    "CappedFiveColoring",
    "CautiousMIS",
    "EagerLocalMaxMIS",
    "ExplorerConfig",
    "FlagConfirmMIS",
    "ProgressReport",
    "PureGreedyColoring",
    "RankGreedyColoring",
    "classify_progress",
    "SearchOutcome",
    "ViewGraph",
    "alg2_exact_worst_case",
    "exact_chromatic_number",
    "is_bipartite",
    "neighborhood_graph",
    "candidate_mis_algorithms",
    "candidate_small_palette_algorithms",
    "coloring_violation_predicate",
    "falsify_coloring",
    "falsify_mis",
    "mis_violation_predicate",
]
