"""repro.pool — the warm multi-core execution substrate.

One supervised process pool shared by every layer that needs true
multi-core execution: the HTTP service routes cold misses and
coalesced groups here instead of its GIL-bound thread executor, and
the campaign ``PoolBackend`` runs its grids here with spawn-once
worker reuse across shards and ``--resume``.

Workers spawn once, pre-import the kernel/fast-path/batch modules so
compiled-kernel and topology caches stay warm across tasks, and speak
a pickle-light protocol of plain dicts.  Supervision (crash/hang
detection, bounded retry, graceful drain) lives in
:class:`~repro.pool.pool.WorkerPool`; the per-process worker loop in
:mod:`repro.pool.worker`.  See ``docs/POOL.md`` for the architecture
and tuning guide.

:func:`shared_pool` hands out one process-wide pool for callers that
want to share warm workers (campaigns across shards); components with
their own lifecycle (the HTTP server) construct private pools.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.pool.pool import PoolOutcome, WorkerPool

__all__ = [
    "PoolOutcome",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pool",
]

_SHARED: Optional[WorkerPool] = None
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: Optional[int] = None) -> WorkerPool:
    """The process-wide pool, created on first use.

    ``workers`` grows (never shrinks) the shared pool; omit it to
    accept whatever size the first caller chose (CPU count by
    default).  A previously shut-down shared pool is replaced.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None or _SHARED.closed:
            _SHARED = WorkerPool(workers)
        elif workers:
            _SHARED.ensure_workers(workers)
        return _SHARED


def shutdown_shared_pool(wait: bool = True, timeout: float = 10.0) -> None:
    """Tear down the shared pool (tests, end of CLI commands)."""
    global _SHARED
    with _SHARED_LOCK:
        pool, _SHARED = _SHARED, None
    if pool is not None:
        pool.shutdown(wait=wait, timeout=timeout)
