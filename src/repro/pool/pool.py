"""The supervised warm worker pool: one substrate for every layer.

:class:`WorkerPool` owns N persistent child processes (fork-preferred)
that warm the kernel/fast-path/batch import graph once and then serve
tasks forever.  The parent side is a tiny supervisor thread plus a
lock-guarded assignment table; callers get a
:class:`concurrent.futures.Future` back from :meth:`submit` and never
touch multiprocessing primitives.

The supervision semantics are lifted from the campaign
``PoolBackend`` that proved them (see ``repro/campaign/backends.py``):
each worker has a private task queue and holds **at most one task**,
so the supervisor always knows exactly what a dead worker was doing.
The three failure modes recover without losing or duplicating work:

* a task **raises** — the worker reports the error and lives on; the
  task is requeued (bounded by its ``max_retries``);
* a task **hangs** — its deadline fires, the worker is killed and a
  fresh warm worker spawned, the task requeued (a *timeout*);
* a worker **dies** (segfault, ``os._exit``, OOM-kill) — liveness
  monitoring spots the corpse, respawns, requeues (a *crash*).

A task that exhausts its retry budget fails its future with
:class:`~repro.errors.PoolTaskError` carrying the full supervision
metadata; the pool itself always stays serviceable.

Latency notes: :meth:`submit` assigns directly to an idle worker under
the lock — the dispatch path does not wait for a supervisor poll tick.
The supervisor only arbitrates results, deadlines, liveness and the
overflow queue.  All ``pool_*`` metrics are emitted into the pool's
pinned registry when one was given, else whatever
:func:`~repro.obs.metrics.active_registry` says at emission time.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PoolError, PoolTaskError
from repro.obs.metrics import MetricsRegistry, active_registry
from repro.obs.trace import record_remote_spans
from repro.pool.worker import pool_worker_main

__all__ = ["PoolOutcome", "WorkerPool"]

#: (future, result, exception) triples resolved outside the pool lock.
_Resolution = Tuple[Future, Any, Optional[BaseException]]


@dataclass(frozen=True)
class PoolOutcome:
    """What a successful pool future resolves to.

    ``value`` is the task's JSON-shaped payload; the rest is the
    supervision record (how hard the pool had to work for it), in the
    exact vocabulary the campaign journal has always used.
    """

    value: Any
    attempts: int
    timeouts: int
    crashes: int
    elapsed: float
    worker: Optional[int]


@dataclass
class _Item:
    id: int
    kind: str
    payload: Any
    future: Future
    timeout: Optional[float]
    max_retries: int
    label: str
    created: float
    attempts: int = 0
    timeouts: int = 0
    crashes: int = 0
    current_wid: Optional[int] = None
    # Trace-context dict to carry into the worker (JSON-shaped, rides
    # the task message); None when the submission was untraced.
    trace: Optional[Dict[str, Any]] = None


@dataclass
class _Worker:
    wid: int
    process: Any
    task_q: Any
    current: Optional[int] = None  # item id in flight
    deadline: float = math.inf


class WorkerPool:
    """Persistent supervised process pool with warm workers.

    Parameters
    ----------
    workers:
        Pool size (defaults to the CPU count).  Workers spawn lazily on
        the first :meth:`submit` (or eagerly via :meth:`ensure_workers`)
        and persist until :meth:`shutdown`.
    mp_context:
        ``multiprocessing`` start method; ``fork`` when available so
        workers inherit already-imported modules for free, ``spawn``
        otherwise (workers then warm themselves on startup).
    poll_interval:
        Supervisor result-poll cadence in seconds.  Only failure
        detection rides on it — dispatch is direct.
    registry:
        Pin metrics to this registry; ``None`` defers to
        :func:`active_registry` per emission.
    restart_burst / restart_window:
        Respawn-storm brake: at most ``restart_burst`` fault-driven
        respawns per sliding ``restart_window`` seconds.  Respawns over
        the budget are deferred (counted in
        ``pool_respawns_delayed_total``) and processed by the
        supervisor once the window frees up — a fault plan that kills
        every worker it touches degrades the pool instead of melting
        the host with a fork storm.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        mp_context: Optional[str] = None,
        poll_interval: float = 0.02,
        registry: Optional[MetricsRegistry] = None,
        restart_burst: int = 8,
        restart_window: float = 30.0,
    ):
        self.workers = max(1, workers or os.cpu_count() or 1)
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(mp_context)
        self._poll = poll_interval
        self._registry = registry
        self._lock = threading.RLock()
        self._result_q = self._ctx.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._items: Dict[int, _Item] = {}
        self._ready: deque = deque()
        self._next_wid = 0
        self._next_item = 0
        self._supervisor: Optional[threading.Thread] = None
        self._closing = False
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._restarts = 0
        self.restart_burst = max(1, restart_burst)
        self.restart_window = restart_window
        self._restart_times: deque = deque()
        self._pending_respawns = 0
        _LIVE_POOLS.add(self)

    # -- public API ----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure_workers(self, count: int) -> None:
        """Grow the pool to at least ``count`` warm workers, eagerly.

        Used to pre-warm before serving traffic so the first request
        never pays a worker spawn.
        """
        with self._lock:
            if self._closed or self._closing:
                raise PoolError("cannot grow a pool that is shut down")
            self.workers = max(self.workers, count)
            while len(self._workers) < count:
                self._spawn_locked()
            self._start_supervisor_locked()

    def submit(
        self,
        kind: str,
        payload: Any,
        *,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        label: str = "",
        trace: Optional[Dict[str, Any]] = None,
    ) -> Future:
        """Submit one task; resolves to a :class:`PoolOutcome`.

        ``timeout`` is the per-attempt hang deadline (``None`` = no
        deadline); ``max_retries`` bounds total attempts at
        ``max_retries + 1``.  The future fails with
        :class:`~repro.errors.PoolTaskError` on retry exhaustion.
        ``trace`` is an optional trace-context dict
        (:meth:`~repro.obs.trace.TraceContext.to_dict`): the worker
        records its spans under it — re-parented beneath the submitting
        span, attempt-numbered across retries — and ships them back
        with the result.
        """
        future: Future = Future()
        with self._lock:
            if self._closed or self._closing:
                raise PoolError("cannot submit to a pool that is shut down")
            item = _Item(
                id=self._next_item,
                kind=kind,
                payload=payload,
                future=future,
                timeout=timeout,
                max_retries=max_retries,
                label=label,
                created=time.monotonic(),
                trace=trace,
            )
            self._next_item += 1
            self._items[item.id] = item
            self._submitted += 1
            # Workers owed to rate-limited respawns are spawned by the
            # supervisor when the window frees up — not here, or every
            # submission would bypass the storm brake.
            while len(self._workers) + self._pending_respawns < self.workers:
                self._spawn_locked()
            self._start_supervisor_locked()
            if not self._assign_locked(item):
                self._ready.append(item)
            self._set_gauges_locked()
        return future

    def submit_task(self, task: Dict[str, Any], **kwargs: Any) -> Future:
        """Submit one campaign task description (``execute_task``)."""
        return self.submit("task", task, **kwargs)

    def submit_group(
        self, configs: List[Dict[str, Any]], **kwargs: Any
    ) -> Future:
        """Submit one coalesced service group (request config dicts)."""
        return self.submit("group", configs, **kwargs)

    def stats(self) -> Dict[str, int]:
        """Live pool accounting, for ``/healthz`` and tests."""
        with self._lock:
            busy = sum(
                1 for w in self._workers.values() if w.current is not None
            )
            return {
                "workers": len(self._workers),
                "busy": busy,
                "queue_depth": len(self._ready),
                "pending": len(self._items),
                "submitted": self._submitted,
                "completed": self._completed,
                "restarts": self._restarts,
                "pending_respawns": self._pending_respawns,
            }

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for every pending task to reach a terminal state.

        Returns ``True`` when the pool emptied within ``timeout``.
        Does not reject new submissions — pair with :meth:`shutdown`
        for a terminal drain.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._items:
                    return True
            time.sleep(min(0.05, self._poll))
        with self._lock:
            return not self._items

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool: optionally drain, then fail leftovers and
        reap every worker.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closing = True  # rejects new submissions immediately
        if wait:
            self.drain(timeout)
        resolutions: List[_Resolution] = []
        with self._lock:
            self._closed = True
            for item in self._items.values():
                resolutions.append(
                    (
                        item.future,
                        None,
                        PoolError("pool shut down with task still pending"),
                    )
                )
            self._items.clear()
            self._ready.clear()
            workers = list(self._workers.values())
            self._workers.clear()
            supervisor = self._supervisor
        self._resolve(resolutions)
        for w in workers:
            try:
                w.task_q.put(None)
            except Exception:
                pass
        if supervisor is not None and supervisor.is_alive():
            supervisor.join(timeout=2.0)
        join_deadline = time.monotonic() + 2.0
        for w in workers:
            w.process.join(
                timeout=max(0.0, join_deadline - time.monotonic())
            )
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=1.0)
        try:
            self._result_q.close()
            self._result_q.join_thread()
        except Exception:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True)

    # -- internals (all *_locked methods require self._lock) -----------

    def _metrics(self) -> Optional[MetricsRegistry]:
        return self._registry if self._registry is not None else active_registry()

    def _spawn_locked(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        task_q = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=pool_worker_main,
            args=(wid, task_q, self._result_q),
            daemon=True,
        )
        process.start()
        self._workers[wid] = _Worker(wid=wid, process=process, task_q=task_q)
        return wid

    def _prune_restart_window_locked(self) -> None:
        now = time.monotonic()
        while (
            self._restart_times
            and now - self._restart_times[0] > self.restart_window
        ):
            self._restart_times.popleft()

    def _respawn_locked(self, reason: str) -> None:
        """Replace a killed/dead worker, subject to the storm brake."""
        if self._closing:
            return
        self._prune_restart_window_locked()
        if len(self._restart_times) >= self.restart_burst:
            self._pending_respawns += 1
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_respawns_delayed_total", reason=reason)
            return
        self._restart_times.append(time.monotonic())
        self._spawn_locked()

    def _process_pending_respawns_locked(self) -> None:
        """Spawn deferred respawns as the sliding window frees up."""
        if self._closing or not self._pending_respawns:
            return
        self._prune_restart_window_locked()
        while (
            self._pending_respawns
            and len(self._restart_times) < self.restart_burst
            and len(self._workers) < self.workers
        ):
            self._pending_respawns -= 1
            self._restart_times.append(time.monotonic())
            self._spawn_locked()

    def _start_supervisor_locked(self) -> None:
        if self._supervisor is None or not self._supervisor.is_alive():
            self._supervisor = threading.Thread(
                target=self._supervise,
                name="repro-pool-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def _assign_locked(self, item: _Item) -> bool:
        """Hand ``item`` to an idle worker; False when all are busy."""
        for w in self._workers.values():
            if w.current is None and w.process.is_alive():
                item.current_wid = w.wid
                w.current = item.id
                w.deadline = (
                    time.monotonic() + item.timeout
                    if item.timeout
                    else math.inf
                )
                message = {
                    "id": item.id, "kind": item.kind, "payload": item.payload
                }
                if item.trace is not None:
                    # Attempt-numbered so retried work shows up as
                    # distinct, countable spans in the timeline.
                    message["trace"] = {
                        **item.trace, "attempt": item.attempts + 1
                    }
                w.task_q.put(message)
                return True
        return False

    def _assign_ready_locked(self) -> None:
        while self._ready:
            item = self._ready[0]
            if item.future.cancelled():
                self._ready.popleft()
                self._items.pop(item.id, None)
                continue
            if not self._assign_locked(item):
                break
            self._ready.popleft()

    def _set_gauges_locked(self) -> None:
        registry = self._metrics()
        if registry is None:
            return
        busy = sum(1 for w in self._workers.values() if w.current is not None)
        registry.set_gauge("pool_workers", len(self._workers))
        registry.set_gauge("pool_workers_busy", busy)
        registry.set_gauge("pool_queue_depth", len(self._ready))

    def _retry_or_fail_locked(
        self,
        item: _Item,
        error: str,
        wid: Optional[int],
        resolutions: List[_Resolution],
    ) -> None:
        """After a failed attempt: requeue, or fail the future."""
        if item.attempts > item.max_retries:
            self._items.pop(item.id, None)
            self._completed += 1
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_tasks_total", kind=item.kind, status="failed")
            resolutions.append(
                (
                    item.future,
                    None,
                    PoolTaskError(
                        error,
                        attempts=item.attempts,
                        timeouts=item.timeouts,
                        crashes=item.crashes,
                        elapsed=time.monotonic() - item.created,
                        worker=wid,
                        trace_id=(
                            str(item.trace.get("trace_id", ""))
                            if item.trace is not None
                            else ""
                        ),
                    ),
                )
            )
        else:
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_task_retries_total", kind=item.kind)
            self._ready.append(item)

    def _on_result_locked(
        self,
        item_id: int,
        wid: int,
        status: str,
        payload: Any,
        resolutions: List[_Resolution],
    ) -> None:
        w = self._workers.get(wid)
        if w is not None and w.current == item_id:
            w.current = None
            w.deadline = math.inf
        item = self._items.get(item_id)
        # Stragglers: the item already reached a terminal state, or was
        # reassigned after its worker got deadline-killed mid-report.
        if item is None or item.current_wid != wid:
            return
        item.attempts += 1
        item.current_wid = None
        if status == "ok":
            # Traced results arrive wrapped; merge the worker-side
            # spans into the parent recorder and unwrap the value.
            # (Stale traced results were filtered by the guard above —
            # their spans are dropped with them.)
            if (
                item.trace is not None
                and isinstance(payload, dict)
                and "__trace__" in payload
            ):
                record_remote_spans(payload.get("__trace__") or [])
                payload = payload.get("value")
            self._items.pop(item_id, None)
            self._completed += 1
            elapsed = time.monotonic() - item.created
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_tasks_total", kind=item.kind, status="ok")
                registry.observe("pool_task_seconds", elapsed, kind=item.kind)
            resolutions.append(
                (
                    item.future,
                    PoolOutcome(
                        value=payload,
                        attempts=item.attempts,
                        timeouts=item.timeouts,
                        crashes=item.crashes,
                        elapsed=elapsed,
                        worker=wid,
                    ),
                    None,
                )
            )
        else:
            self._retry_or_fail_locked(item, str(payload), wid, resolutions)

    def _check_deadlines_locked(
        self, resolutions: List[_Resolution]
    ) -> None:
        now = time.monotonic()
        for wid, w in list(self._workers.items()):
            if w.current is None or now <= w.deadline:
                continue
            item = self._items.get(w.current)
            w.process.terminate()
            w.process.join(timeout=5)
            del self._workers[wid]
            self._restarts += 1
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_worker_restarts_total", reason="timeout")
            if item is not None:
                item.attempts += 1
                item.timeouts += 1
                item.current_wid = None
                self._retry_or_fail_locked(
                    item, f"timeout after {item.timeout:g}s", wid, resolutions
                )
            self._respawn_locked("timeout")

    def _check_liveness_locked(self, resolutions: List[_Resolution]) -> None:
        if self._closing:
            return
        for wid, w in list(self._workers.items()):
            if w.process.is_alive():
                continue
            item = (
                self._items.get(w.current) if w.current is not None else None
            )
            w.process.join(timeout=5)
            exitcode = w.process.exitcode
            del self._workers[wid]
            self._restarts += 1
            registry = self._metrics()
            if registry is not None:
                registry.inc("pool_worker_restarts_total", reason="crash")
            if item is not None:
                item.attempts += 1
                item.crashes += 1
                item.current_wid = None
                self._retry_or_fail_locked(
                    item, f"worker crashed (exit {exitcode})", wid, resolutions
                )
            self._respawn_locked("crash")

    @staticmethod
    def _resolve(resolutions: List[_Resolution]) -> None:
        for future, value, exc in resolutions:
            try:
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(value)
            except Exception:
                # The caller cancelled mid-flight; the result is simply
                # discarded (the computation itself stays cached by any
                # layer above that wants it).
                pass

    def _supervise(self) -> None:
        while True:
            try:
                message = self._result_q.get(timeout=self._poll)
            except queue_mod.Empty:
                message = None
            except (OSError, EOFError, ValueError):
                # The queue was closed underneath us (shutdown racing
                # interpreter teardown); fall through to the stop check.
                message = None
            resolutions: List[_Resolution] = []
            with self._lock:
                if message is not None:
                    self._on_result_locked(*message, resolutions)
                    while True:
                        try:
                            extra = self._result_q.get_nowait()
                        except (queue_mod.Empty, OSError, EOFError, ValueError):
                            break
                        self._on_result_locked(*extra, resolutions)
                self._check_deadlines_locked(resolutions)
                self._check_liveness_locked(resolutions)
                self._process_pending_respawns_locked()
                self._assign_ready_locked()
                self._set_gauges_locked()
                stop = self._closing and not self._items
            self._resolve(resolutions)
            if stop:
                return


#: Every live pool, reaped at interpreter exit so stray worker
#: processes never outlive the parent.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def _shutdown_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.shutdown(wait=False, timeout=0.0)
        except Exception:
            pass


atexit.register(_shutdown_live_pools)
