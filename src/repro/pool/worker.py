"""The pool worker: warm process entry point and task execution.

:func:`pool_worker_main` is the target function of every
:class:`~repro.pool.pool.WorkerPool` child process.  It warms the
expensive import graph exactly once (kernels, fast path, batch engine,
registries) and then serves tasks until it receives the ``None``
sentinel — so the kernel caches, ``_degree2_arrays`` weakref cache and
register-value identity caches built by one task stay hot for every
task after it.  That spawn-once/warm-forever lifecycle is the whole
point of the pool: the per-task cost is one queue hop, not an
interpreter plus an import tree.

Two task kinds cross the queue, both as plain JSON-shaped dicts (the
pickle-light protocol — no live objects, everything rebuilt from the
registries inside the worker):

* ``"task"`` — a campaign :class:`~repro.campaign.spec.TaskSpec`
  description; runs :func:`repro.campaign.worker.execute_task` and
  returns the :class:`TaskResult` dict, byte-identical to what the
  in-process backends journal.
* ``"group"`` — a list of service request configurations (the
  :meth:`~repro.service.schema.ColorRequest.config` shape, already
  grouped by the coalescer's batch signature); runs them through the
  same :func:`~repro.service.coalesce.execute_requests` helper the
  thread executor uses and returns finished
  :class:`~repro.service.schema.ColorResponse` dicts.  Verification
  happens *in the worker*, so the serving event loop never burns CPU
  on a pool-executed response.

This module must stay importable without side effects and must not
capture parent-process state beyond the registries and environment.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping

__all__ = [
    "execute_group_payload",
    "pool_worker_main",
    "request_from_config",
    "run_item",
    "run_item_traced",
]


def warm_imports() -> None:
    """Pre-import the execution stack so the first task pays no import
    cost and compiled-kernel caches persist across tasks."""
    import repro.campaign.registry  # noqa: F401
    import repro.campaign.worker  # noqa: F401
    import repro.model.batch  # noqa: F401
    import repro.model.fastpath  # noqa: F401
    import repro.model.kernels  # noqa: F401
    import repro.obs.trace  # noqa: F401
    import repro.service.coalesce  # noqa: F401
    import repro.service.schema  # noqa: F401


def request_from_config(config: Mapping[str, Any]):
    """Rebuild (and re-validate) a ColorRequest from its config dict.

    The inverse of :meth:`ColorRequest.config` — ``schedule_params``
    arrive as ``[key, value]`` pairs after the JSON-shaped round trip.
    """
    from repro.service.schema import ColorRequest

    return ColorRequest.build(
        algorithm=config["algorithm"],
        n=config["n"],
        topology=config.get("topology", "cycle"),
        inputs=config.get("inputs", "random"),
        schedule=config.get("schedule", "sync"),
        schedule_params={k: v for k, v in config.get("schedule_params", [])},
        seed=config.get("seed", 0),
        max_time=config.get("max_time", 200_000),
    )


def execute_group_payload(
    configs: List[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Run one coalesced service group and distill it into responses.

    Mirrors the tail of :meth:`Coalescer._execute_group`: one lockstep
    batch attempt with per-run fast-path fallback, group wall time
    attributed evenly, responses verified here so only plain dicts
    travel back to the event loop.
    """
    from repro.service.coalesce import execute_requests
    from repro.service.schema import ColorResponse

    requests = [request_from_config(config) for config in configs]
    started = time.perf_counter()
    results, engine = execute_requests(requests)
    share = (time.perf_counter() - started) / max(1, len(requests))
    responses = [
        ColorResponse.from_execution(
            request,
            result,
            engine=engine,
            batch_size=len(requests),
            elapsed=share,
        ).to_dict()
        for request, result in zip(requests, results)
    ]
    return {"engine": engine, "responses": responses}


def run_item(kind: str, payload: Any) -> Any:
    """Execute one protocol item; the single dispatch point the
    recovery tests drive both in-process and through real workers."""
    if kind == "task":
        from repro.campaign.worker import execute_task

        return execute_task(payload).to_dict()
    if kind == "group":
        return execute_group_payload(payload)
    raise ValueError(f"unknown pool task kind {kind!r}")


def run_item_traced(
    wid: int, kind: str, payload: Any, trace: Mapping[str, Any]
) -> Dict[str, Any]:
    """:func:`run_item` under the submitted trace context.

    The worker records into its own short-lived
    :class:`~repro.obs.trace.FlightRecorder` and ships the span dicts
    back wrapped around the value — ``{"__trace__": [...], "value":
    ...}`` — so the parent's supervisor can merge them into the serving
    process's recorder.  The ``pool.task`` span's parent is the
    submitting span in the *parent* process, which is exactly what
    joins the cross-process tree back up.
    """
    from repro.obs.trace import (
        FlightRecorder,
        TraceContext,
        start_span,
        tracing,
        use_context,
    )

    ctx = TraceContext.from_dict(trace)
    recorder = FlightRecorder()
    with tracing(recorder):
        with use_context(ctx):
            with start_span(
                "pool.task",
                worker=wid,
                attempt=int(trace.get("attempt", 1)),
                kind=kind,
            ):
                value = run_item(kind, payload)
    return {
        "__trace__": [record.to_dict() for record in recorder.snapshot()],
        "value": value,
    }


def pool_worker_main(wid: int, task_q, result_q) -> None:
    """Worker loop: warm up once, then serve tasks until the sentinel.

    Runs in a child process.  Results are ``(item_id, wid, status,
    payload)`` tuples where payload is a JSON-shaped dict on ``"ok"``
    and an error string on ``"error"`` — a raising task is reported
    (the worker lives on); only a dying process ends the loop.

    When a fault plan rides in via the chaos environment export, the
    worker installs its own ``worker:<wid>``-scoped copy and probes the
    ``pool.worker.*`` sites: ``slow_start`` (once, before serving),
    then per task ``crash`` (``os._exit``), ``hang`` (sleep past any
    deadline) and ``raise`` (a reported :class:`ChaosInjectedError`) —
    exactly the three failure modes the supervisor recovers from.
    """
    from repro.chaos.injector import ensure_worker_plan, maybe_fault

    warm_imports()
    plan = ensure_worker_plan(f"worker:{wid}")
    if plan is not None:
        decision = maybe_fault("pool.worker.slow_start")
        if decision is not None:
            time.sleep(decision.param if decision.param is not None else 0.2)
    while True:
        message = task_q.get()
        if message is None:
            return
        item_id = message["id"]
        trace = message.get("trace")
        if plan is not None:
            if maybe_fault("pool.worker.crash") is not None:
                import os

                os._exit(57)
            decision = maybe_fault("pool.worker.hang")
            if decision is not None:
                time.sleep(
                    decision.param if decision.param is not None else 600.0
                )
        try:
            if plan is not None:
                decision = maybe_fault("pool.worker.raise")
                if decision is not None:
                    from repro.errors import ChaosInjectedError

                    raise ChaosInjectedError(
                        "injected worker fault",
                        site=decision.site,
                        index=decision.index,
                    )
            if trace is not None:
                value = run_item_traced(
                    wid, message["kind"], message["payload"], trace
                )
            else:
                value = run_item(message["kind"], message["payload"])
        except Exception as exc:  # noqa: BLE001 - reported to supervisor
            result_q.put(
                (item_id, wid, "error", f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put((item_id, wid, "ok", value))
