"""repro — wait-free coloring of the asynchronous crash-prone cycle.

A complete, from-scratch reproduction of

    Pierre Fraigniaud, Patrick Lambein-Monette, Mikaël Rabie.
    "Fault Tolerant Coloring of the Asynchronous Cycle." PODC 2022
    (brief announcement; full version arXiv:2207.11198).

Quickstart
----------
>>> from repro import FastFiveColoring, Cycle, SynchronousScheduler, run_execution
>>> from repro.analysis import random_distinct_ids, verify_execution
>>> n = 100
>>> result = run_execution(
...     FastFiveColoring(), Cycle(n), random_distinct_ids(n, seed=7),
...     SynchronousScheduler())
>>> result.all_terminated
True
>>> verify_execution(Cycle(n), result, palette=range(5)).ok
True

Package map
-----------
* :mod:`repro.core` — the paper's four algorithms and the
  Cole–Vishkin-style identifier-reduction machinery;
* :mod:`repro.model` — the asynchronous state-model simulator
  (topologies, registers, schedules, execution engine, traces, faults);
* :mod:`repro.schedulers` — synchronous/random/adversarial schedulers;
* :mod:`repro.shm` — the shared-memory substrate: immediate snapshots,
  (2n−1)-renaming, SSB, and the paper's two model reductions;
* :mod:`repro.localmodel` — the synchronous LOCAL-model substrate with
  Cole–Vishkin and Linial baselines;
* :mod:`repro.analysis` — verification, chain structure, complexity
  bounds, input families, experiment harness;
* :mod:`repro.lowerbounds` — bounded schedule exploration and the
  MIS / 4-coloring falsifiers;
* :mod:`repro.render` / :mod:`repro.cli` — ASCII rendering and a CLI.
"""

from repro.core import (
    FastFiveColoring,
    FiveColoring,
    GeneralGraphColoring,
    SixColoring,
    log_star,
    reduce_identifier,
)
from repro.model import (
    CompleteGraph,
    CrashPlan,
    Cycle,
    ExecutionResult,
    Executor,
    FiniteSchedule,
    GeneralGraph,
    Path,
    Star,
    Topology,
    Torus,
    run_execution,
)
from repro.schedulers import (
    BernoulliScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "BernoulliScheduler",
    "CompleteGraph",
    "CrashPlan",
    "Cycle",
    "ExecutionResult",
    "Executor",
    "FastFiveColoring",
    "FiniteSchedule",
    "FiveColoring",
    "GeneralGraph",
    "GeneralGraphColoring",
    "Path",
    "RoundRobinScheduler",
    "SixColoring",
    "Star",
    "SynchronousScheduler",
    "Topology",
    "Torus",
    "__version__",
    "log_star",
    "reduce_identifier",
    "run_execution",
]
