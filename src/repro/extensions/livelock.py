"""The Algorithm 2/3 livelock: a mechanically-checked reproduction finding.

While validating Theorem 3.11 exhaustively, the bounded explorer
(:mod:`repro.lowerbounds.explorer`) found that **Algorithm 2 as printed
is not wait-free** under the paper's stated semantics — and Algorithm 3
inherits the schedule.  Minimal witness (``C_3``, identifiers
``1, 2, 3``):

1. ``σ(1) = {p0}`` — the id-1 process runs solo, sees ``⊥, ⊥`` and
   returns color ``a = 0`` (wait-freedom forces solo termination); its
   register freezes at ``(X=1, a=0, b=0)``.
2. ``σ(2) = {p1}``, ``σ(3) = {p2}`` — each wakes once and updates.
3. ``σ(t) = {p1, p2}`` forever — activated in lockstep, each reads the
   other's *previous* state (Equation (1)).  Since both of ``p1``'s
   candidates collapse (``a_1 = b_1 = mex{0, b̂_2}``) while ``p2``'s
   ``a_2 = 0`` is permanently blocked by ``p0``'s frozen 0, the system
   enters the two-variable chase

       a_1(t) = mex{0, b_2(t−1)},   b_2(t) = mex{0, a_1(t−1)},

   which, seeded equal, toggles ``1 ↔ 2`` in phase forever: at every
   check, ``a_1(t−1) = b̂_2(t)`` and ``b_2(t−1) = â_1(t)``, so neither
   process ever returns.  The configuration repeats with period 2 —
   an infinite execution in which both processes take infinitely many
   steps without terminating, contradicting the Theorem 3.11/4.4
   termination claims.

Where the paper's argument breaks: Lemma 3.13's even case asserts
``b̂_p(t4) = 0 < min{â_q, b̂_q, â_q', b̂_q'}`` for a local maximum
``p`` — but a neighbor that returned early (here ``p0``, which woke up
solo) freezes ``â_q' = b̂_q' = 0``, so ``0 ∈ C`` forever and
``b_p > 0``; the odd case's "reasoning as in Lemma 3.4" transfers
Algorithm 1's *pair*-comparison argument to Algorithm 2's *scalar*
return rule, where it no longer holds.  Algorithm 1 itself is immune:
the explorer proves its configuration graph acyclic (exhaustively, all
id orders, ``n ∈ {3, 4}``), with exact worst cases far inside the
Theorem 3.1 bound.  See EXPERIMENTS.md (E13) and
:mod:`repro.extensions.fast_six` for the repaired O(log* n) algorithm.

Safety is unaffected: in every execution the outputs still properly
color the terminated subgraph (the return rule alone enforces safety);
the gap is purely a liveness/termination gap.  Note the witness cycle
activates *every* working process — it is a **fair** schedule — so the
finding is stronger than "not wait-free": Algorithms 2–3 are not even
starvation-free; exactly the obstruction-freedom the paper proves for
the ``b``-subcomponent survives (see
:mod:`repro.lowerbounds.progress`, experiment E18).

**The crash-triggered variant (E13b).**  The phase-locked pair does not
require a contrived adversary: crashing two processes at distance 3 on
an otherwise *synchronous* schedule reproduces it for Algorithm 3.  The
crashed processes freeze their registers at ``(X, r=0, a=0, b=0)``; the
two survivors between them are activated in natural lockstep, their
identifiers reduce onto chase-seeding values, and they toggle forever —
:func:`demonstrate_crash_livelock` replays it (``0..19`` on ``C_20``,
crashing every third process after one step starves the pair
``{1, 2}``).  So the failure mode sits squarely inside the paper's
fault model: "fault tolerant" coloring with Algorithm 3 can starve
healthy processes after crashes under the most natural schedule.
Random schedules break the phase lock almost surely, which is why the
empirical sweeps all terminate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.algorithm import Algorithm
from repro.core.coloring5 import FiveColoring
from repro.lowerbounds.explorer import BoundedExplorer, SearchOutcome
from repro.model.execution import ExecutionResult, run_execution
from repro.model.schedule import FiniteSchedule
from repro.model.topology import Cycle

__all__ = [
    "CRASH_WITNESS_CRASHED",
    "CRASH_WITNESS_N",
    "CRASH_WITNESS_TIME",
    "LIVELOCK_IDS",
    "demonstrate_crash_livelock",
    "demonstrate_livelock",
    "find_livelock",
    "livelock_prefix",
    "livelock_schedule",
]

#: The canonical witness identifiers on ``C_3``.
LIVELOCK_IDS: Tuple[int, int, int] = (1, 2, 3)

#: The schedule prefix after which the configuration starts repeating
#: with period 2 under ``{p1, p2}`` lockstep.
_PREFIX: Tuple[frozenset, ...] = (
    frozenset({0}),
    frozenset({1}),
    frozenset({2}),
    frozenset({1, 2}),
)

#: The repeating loop body.
_LOOP: Tuple[frozenset, ...] = (frozenset({1, 2}),)


def livelock_prefix() -> List[frozenset]:
    """The schedule prefix reaching the recurrent configuration."""
    return list(_PREFIX)


def livelock_schedule(loop_iterations: int = 100) -> FiniteSchedule:
    """The witness schedule: prefix + ``loop_iterations`` loop bodies.

    Under this schedule processes 1 and 2 accumulate
    ``loop_iterations`` further activations each without returning, for
    any ``loop_iterations`` — no finite activation bound exists.
    """
    steps = list(_PREFIX) + list(_LOOP) * loop_iterations
    return FiniteSchedule(steps)


def demonstrate_livelock(
    algorithm: Optional[Algorithm] = None,
    loop_iterations: int = 100,
) -> ExecutionResult:
    """Run the witness schedule and return the (non-terminating) result.

    Defaults to Algorithm 2; :class:`~repro.core.fast_coloring5.FastFiveColoring`
    exhibits the same behavior.  In the returned result, processes 1
    and 2 have ``4 + loop_iterations``-ish activations and no output.
    """
    algorithm = algorithm if algorithm is not None else FiveColoring()
    return run_execution(
        algorithm,
        Cycle(3),
        list(LIVELOCK_IDS),
        livelock_schedule(loop_iterations),
    )


#: Parameters of the crash-triggered witness (E13b): cycle size, the
#: crash set (every third process), and the crash time.
CRASH_WITNESS_N = 20
CRASH_WITNESS_CRASHED = tuple(range(0, CRASH_WITNESS_N, 3))
CRASH_WITNESS_TIME = 2


def demonstrate_crash_livelock(
    algorithm: Optional[Algorithm] = None,
    steps: int = 2000,
) -> ExecutionResult:
    """The crash-triggered livelock: synchronous schedule, two crashes.

    Runs ``C_20`` with identifiers ``0..19``, crashing every third
    process after its first activation, under the plain synchronous
    schedule for ``steps`` time steps.  With Algorithm 3 (the default
    here — its identifier reduction drives the surviving pair onto the
    chase values), the pair ``{1, 2}`` between the crashed ``{0, 3}``
    never returns.  Algorithm 2 happens to terminate on this particular
    witness (its raw identifiers avoid the chase seed) — its own
    starvation witness is the schedule-based
    :func:`demonstrate_livelock`.  With
    :class:`repro.extensions.fast_six.FastSixColoring` every survivor
    returns.
    """
    from repro.model.faults import crash_after_time
    from repro.schedulers import SynchronousScheduler

    from repro.core.fast_coloring5 import FastFiveColoring

    algorithm = algorithm if algorithm is not None else FastFiveColoring()
    plan = crash_after_time(
        SynchronousScheduler(),
        {p: CRASH_WITNESS_TIME for p in CRASH_WITNESS_CRASHED},
    )
    return run_execution(
        algorithm,
        Cycle(CRASH_WITNESS_N),
        list(range(CRASH_WITNESS_N)),
        plan,
        max_time=steps,
    )


def find_livelock(
    algorithm: Algorithm,
    n: int = 3,
    identifiers: Optional[Sequence[int]] = None,
    *,
    max_depth: int = 100,
    max_configs: int = 400_000,
) -> SearchOutcome:
    """Search for a livelock of any cycle algorithm from scratch.

    Thin wrapper over
    :meth:`repro.lowerbounds.explorer.BoundedExplorer.find_livelock`,
    provided here so the finding is reproducible without hand-feeding
    the canonical witness.
    """
    ids = list(identifiers) if identifiers is not None else list(range(1, n + 1))
    explorer = BoundedExplorer(algorithm, Cycle(n), ids)
    return explorer.find_livelock(max_depth=max_depth, max_configs=max_configs)
