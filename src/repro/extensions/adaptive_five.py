"""AdaptiveFiveColoring: a natural 5-color repair attempt — falsified.

After the Algorithm 2 livelock finding
(:mod:`repro.extensions.livelock`), the obvious question is whether a
small modification restores wait-freedom while keeping the 5-color
scalar palette.  This module documents one principled attempt and its
mechanical refutation — keeping the negative result reproducible, in
the same spirit as the MIS and 4-color falsifiers.

The attempt ("defer-to-higher ``b`` updates"): the livelock is a chase
in which each process recomputes ``b_p = mex(C)`` every round, jumping
onto the value its neighbor just vacated.  The repair recomputes
``b_p`` only when it collides with a *higher-identifier* neighbor's
value, or with a lower neighbor whose register has not changed since
the previous activation (a frozen collider must be dodged exactly
once); a *moving* lower collider is instead waited out, on the theory
that lower neighbors actively avoid our published values.

The theory fails: the adversary can interleave so the lower neighbor
always computes against our *stale* register and repeatedly lands on
the value we are holding.  :func:`repro.extensions.livelock.find_livelock`
finds a recurrent configuration for this variant on ``C_3`` with
identifiers ``1, 2, 3`` (see ``tests/extensions/test_adaptive_five.py``),
so the variant is **not** wait-free either.  Safety and the 5-color
palette are unaffected (the return rule is Algorithm 2's).

Together with the main finding, this strengthens the reproduction's
conclusion: the difficulty of scalar 5-color wait-free coloring is
structural, not an artifact of one pseudocode line.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.types import BOTTOM

__all__ = ["AdaptiveFiveColoring", "AdaptiveState", "AdaptiveRegister"]


class AdaptiveState(NamedTuple):
    """Private state; ``prev`` remembers the views of the last activation."""

    x: int
    a: int
    b: int
    prev: Tuple  #: register payloads (or BOTTOM) seen last round


class AdaptiveRegister(NamedTuple):
    """Public payload ``(X_p, a_p, b_p)`` — identical to Algorithm 2's."""

    x: int
    a: int
    b: int


class AdaptiveFiveColoring(Algorithm):
    """Algorithm 2 with defer-to-higher ``b`` updates (not wait-free)."""

    name = "ext-adaptive-five-coloring"

    def initial_state(self, x_input: int) -> AdaptiveState:
        """Start like Algorithm 2, with empty view memory."""
        return AdaptiveState(x=x_input, a=0, b=0, prev=())

    def register_value(self, state: AdaptiveState) -> AdaptiveRegister:
        """Publish ``(X_p, a_p, b_p)``."""
        return AdaptiveRegister(x=state.x, a=state.a, b=state.b)

    def step(self, state: AdaptiveState, views: Tuple) -> StepOutcome:
        """Algorithm 2's round with the deferring ``b`` update rule."""
        neighbors = active_views(views)
        taken_all = set()
        taken_higher = set()
        for v in neighbors:
            taken_all.add(v.a)
            taken_all.add(v.b)
            if v.x > state.x:
                taken_higher.add(v.a)
                taken_higher.add(v.b)

        if state.a not in taken_all:
            return StepOutcome.ret(state, state.a)
        if state.b not in taken_all:
            return StepOutcome.ret(state, state.b)

        new_a = mex(taken_higher)
        recompute = state.b in taken_higher
        if not recompute:
            for v in views:
                if v is BOTTOM:
                    continue
                if v.x < state.x and state.b in (v.a, v.b) and v in state.prev:
                    recompute = True  # frozen lower collider: dodge once
                    break
        new_b = mex(taken_all) if recompute else state.b
        return StepOutcome.cont(
            AdaptiveState(x=state.x, a=new_a, b=new_b, prev=tuple(views))
        )
