"""Extensions beyond the paper: findings and repairs (see DESIGN.md).

* :mod:`repro.extensions.livelock` — the mechanically-verified
  Algorithm 2/3 livelock witness (reproduction finding E13);
* :mod:`repro.extensions.fast_six` — :class:`FastSixColoring`, our
  repaired wait-free O(log* n) algorithm (6-color pair palette),
  exhaustively verified on small cycles (E14);
* :mod:`repro.extensions.adaptive_five` — a natural 5-color repair
  attempt, itself falsified by the explorer (kept as a documented
  negative result).
"""

from repro.extensions.adaptive_five import AdaptiveFiveColoring
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.extensions.livelock import (
    LIVELOCK_IDS,
    demonstrate_crash_livelock,
    demonstrate_livelock,
    find_livelock,
    livelock_prefix,
    livelock_schedule,
)

__all__ = [
    "AdaptiveFiveColoring",
    "FAST_SIX_PALETTE",
    "FastSixColoring",
    "LIVELOCK_IDS",
    "demonstrate_crash_livelock",
    "demonstrate_livelock",
    "find_livelock",
    "livelock_prefix",
    "livelock_schedule",
]
