"""FastSixColoring: the repaired wait-free O(log* n) algorithm (ours).

Combines the two components of the paper that *are* individually sound:

* **Algorithm 1's pair coloring** — return when the pair
  ``c_p = (a_p, b_p)`` differs from both neighbors' pairs.  The pair
  return rule is what Lemma 3.4's termination argument actually uses,
  and the bounded explorer verifies it exhaustively: the configuration
  graph of Algorithm 1 is acyclic for every id order on ``C_3``/``C_4``.
* **Algorithm 3's identifier reduction** — the Cole–Vishkin-style
  green-light component (lines 11–19 of Algorithm 3, verbatim), which
  shrinks monotone chains to constant length in O(log* n) activations
  while maintaining the Lemma 4.5 proper-identifier invariant.

The result is wait-free (exhaustively on small ``n``; see
EXPERIMENTS.md E14), properly colors the terminated subgraph, runs in
O(log* n) activations empirically across the scheduler zoo, and uses
the **6-color** pair palette ``{(a, b) : a + b ≤ 2}`` — one color more
than the paper's claimed (but livelock-prone, see
:mod:`repro.extensions.livelock`) 5-color Algorithms 2–3.  Whether a
wait-free 5-color O(log* n) algorithm exists in this model is, per our
findings, effectively re-opened; the failed repair in
:mod:`repro.extensions.adaptive_five` documents one natural attempt.

Why the combination stays correct:

* *safety* — outputs are pairs; a process returns ``c_p`` only when it
  differs from both neighbors' published pairs, and published pairs of
  returned processes are frozen, so outputs properly color the
  terminated subgraph exactly as in Theorem 3.1's correctness part;
* *identifier invariant* — the reduction component is byte-identical
  to Algorithm 3's, so Lemma 4.5 applies unchanged: the evolving
  ``X_p`` always properly color the cycle, which is the precondition
  Algorithm 1's analysis needs of its (now dynamic) identifiers;
* *liveness* — Algorithm 1's termination argument is driven by the
  monotone-chain structure of the identifiers; the reduction caps the
  chains at length ≤ 10 after O(log* n) activations, after which the
  Lemma 3.9 bound is O(1).
"""

from __future__ import annotations

from typing import NamedTuple, Tuple, Union

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.coin_tossing import reduce_identifier
from repro.core.fast_coloring5 import INFINITE_ROUND
from repro.core.palette import TriangularPalette
from repro.types import BOTTOM

__all__ = ["FastSixColoring", "FastSixState", "FastSixRegister", "FAST_SIX_PALETTE"]

#: Output palette: the 6 pairs with a + b <= 2 (same as Algorithm 1).
FAST_SIX_PALETTE = TriangularPalette(2)

Round = Union[int, float]


class FastSixState(NamedTuple):
    """Private state: evolving identifier, green-light counter, pair."""

    x: int
    r: Round
    a: int
    b: int


class FastSixRegister(NamedTuple):
    """Public payload ``(X_p, r_p, (a_p, b_p))``."""

    x: int
    r: Round
    color: Tuple[int, int]


class FastSixColoring(Algorithm):
    """Wait-free 6-coloring of ``C_n`` in O(log* n) activations (repair)."""

    name = "ext-fast-six-coloring"

    def __init__(self, *, green_light: bool = True):
        self.green_light = green_light
        if not green_light:
            self.name = "ext-fast-six-ablated-no-green-light"

    def initial_state(self, x_input: int) -> FastSixState:
        """Start with identifier ``x_input``, pair ``(0, 0)``, ``r = 0``."""
        return FastSixState(x=x_input, r=0, a=0, b=0)

    def register_value(self, state: FastSixState) -> FastSixRegister:
        """Publish ``(X_p, r_p, (a_p, b_p))``."""
        return FastSixRegister(x=state.x, r=state.r, color=(state.a, state.b))

    def step(self, state: FastSixState, views: Tuple) -> StepOutcome:
        """One round: Algorithm 1's pair coloring + Algorithm 3's reduction."""
        neighbors = active_views(views)
        my_color = (state.a, state.b)

        # ---- Algorithm 1 component: pair return + component updates --
        if my_color not in {v.color for v in neighbors}:
            return StepOutcome.ret(state, my_color)

        new_a = mex(v.color[0] for v in neighbors if v.x > state.x)
        new_b = mex(v.color[1] for v in neighbors if v.x < state.x)
        new_x = state.x
        new_r = state.r

        # ---- Algorithm 3 component: guarded identifier reduction -----
        both_awake = len(views) == 2 and all(v is not BOTTOM for v in views)
        if both_awake and state.r < INFINITE_ROUND:
            q, qq = views
            if state.r <= min(q.r, qq.r) or not self.green_light:
                lo, hi = min(q.x, qq.x), max(q.x, qq.x)
                if lo < state.x < hi:
                    new_r = state.r + 1
                    candidate = reduce_identifier(state.x, lo)
                    if candidate < lo:
                        new_x = candidate
                else:
                    new_r = INFINITE_ROUND
                    if state.x < lo:
                        fresh = mex({
                            reduce_identifier(q.x, state.x),
                            reduce_identifier(qq.x, state.x),
                        })
                        new_x = min(state.x, fresh)

        return StepOutcome.cont(FastSixState(x=new_x, r=new_r, a=new_a, b=new_b))
