"""The shared-memory substrate and the paper's model reductions.

* :mod:`repro.shm.layer` — immediate-snapshot shared memory as the
  complete-graph instance of the state model;
* :mod:`repro.shm.renaming` — wait-free rank-based (2n−1)-renaming
  (Attiya et al. [3]), the baseline the paper's palette bound rests on;
* :mod:`repro.shm.tasks` — renaming / SSB / MIS task specifications;
* :mod:`repro.shm.simulation` — the Property 2.1 and 2.3 reductions.
"""

from repro.shm.layer import run_shared_memory, shared_memory_system
from repro.shm.renaming import (
    RankRenaming,
    RenamingRegister,
    RenamingState,
    renaming_namespace,
)
from repro.shm.simulation import (
    CycleInSharedMemory,
    SimInput,
    run_cycle_in_shared_memory,
    run_mis_as_ssb,
)
from repro.shm.tasks import MISSpec, RenamingSpec, SSBSpec

__all__ = [
    "CycleInSharedMemory",
    "MISSpec",
    "RankRenaming",
    "RenamingRegister",
    "RenamingSpec",
    "RenamingState",
    "SSBSpec",
    "SimInput",
    "renaming_namespace",
    "run_cycle_in_shared_memory",
    "run_mis_as_ssb",
    "run_shared_memory",
    "shared_memory_system",
]
