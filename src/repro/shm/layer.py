"""The classic shared-memory substrate with immediate snapshots (§2.1).

The paper's model is the shared-memory model *restricted by a graph*;
conversely, the unrestricted model is recovered by running the same
engine on the complete graph: every process reads every register, and
the batched write-then-read-all semantics of
:class:`~repro.model.execution.Executor` gives exactly the immediate-
snapshot communication primitive the paper describes (all concurrently
activated processes first write, then all read everything).

This module packages that correspondence: :func:`run_shared_memory`
runs any :class:`~repro.core.algorithm.Algorithm` in an ``n``-process
immediate-snapshot shared-memory system.  It is the substrate for the
(2n−1)-renaming baseline (:mod:`repro.shm.renaming`) and for the
paper's two reductions (:mod:`repro.shm.simulation`).

Note on views: in the complete graph, process ``p``'s neighbor tuple is
``(0, …, p−1, p+1, …, n−1)`` in that order, so a shared-memory
algorithm sees a full snapshot minus its own register — its own state
is available directly.  Algorithms needing their own published value
can recompute it via :meth:`register_value`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.model.execution import ExecutionResult, run_execution
from repro.model.schedule import Schedule
from repro.model.topology import CompleteGraph

__all__ = ["run_shared_memory", "shared_memory_system"]


def shared_memory_system(n: int) -> CompleteGraph:
    """The topology realizing an ``n``-process shared-memory system."""
    return CompleteGraph(n)


def run_shared_memory(
    algorithm,
    inputs: Sequence[Any],
    schedule: Schedule,
    *,
    max_time: int = 1_000_000,
    record_trace: bool = False,
    record_registers: bool = False,
) -> ExecutionResult:
    """Run ``algorithm`` in an immediate-snapshot shared-memory system.

    Equivalent to :func:`repro.model.execution.run_execution` on
    :class:`~repro.model.topology.CompleteGraph` — stated as its own
    entry point because the shared-memory papers the reproduction
    leans on ([3], [6], [7]) are phrased in this model.
    """
    return run_execution(
        algorithm,
        shared_memory_system(len(inputs)),
        inputs,
        schedule,
        max_time=max_time,
        record_trace=record_trace,
        record_registers=record_registers,
    )
