"""The paper's two model reductions, implemented as simulations (§2.3).

**Property 2.3's equivalence** — on ``C_3`` the paper's model *is* the
3-process shared-memory model, because each node's two neighbors are
all other processes.  More generally, :class:`CycleInSharedMemory`
simulates any cycle algorithm inside a shared-memory system: process
``p_i`` runs the code of cycle node ``i``, reading the full snapshot
but *discarding* every register except those of ``i ± 1 (mod n)``.
This is the direction "shared memory is at least as strong as the
cycle model"; on ``n = 3`` the discarded set is empty and the two
models coincide exactly — which is how the ``2n−1 = 5`` renaming lower
bound transfers to cycle coloring.

**Property 2.1's reduction** — a wait-free MIS algorithm for ``C_n``
would solve strong symmetry breaking (SSB) in ``n``-process shared
memory, contradicting Attiya–Paz.  :func:`run_mis_as_ssb` implements
the construction of the proof verbatim: simulate the MIS algorithm on
the cycle inside shared memory and read the MIS bits as SSB outputs.
Since SSB is unsolvable, every *candidate* MIS algorithm must fail;
:mod:`repro.lowerbounds.mis` searches for the failing schedules, and
this module translates each failure into an SSB failure.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence, Tuple

from repro.core.algorithm import Algorithm, StepOutcome
from repro.errors import ExecutionError
from repro.model.execution import ExecutionResult
from repro.model.schedule import Schedule
from repro.shm.layer import run_shared_memory
from repro.shm.tasks import SSBSpec
from repro.types import BOTTOM

__all__ = ["CycleInSharedMemory", "SimInput", "run_cycle_in_shared_memory", "run_mis_as_ssb"]


class SimInput(NamedTuple):
    """Input of a simulating shared-memory process.

    ``index`` is the cycle position the process simulates, ``n`` the
    cycle length, and ``x`` the identifier handed to the simulated
    cycle node.
    """

    index: int
    n: int
    x: Any


class _SimRegister(NamedTuple):
    """Public payload: the simulated node's position and its register."""

    index: int
    inner: Any


class CycleInSharedMemory(Algorithm):
    """Simulate a cycle algorithm inside a shared-memory system.

    Process ``p_i`` (input ``SimInput(i, n, x_i)``) runs ``inner`` as
    cycle node ``i`` with neighbors ``i ± 1 (mod n)``: from the full
    immediate snapshot it extracts exactly the two neighbors' simulated
    registers and feeds them to ``inner.step``.  Outputs pass through
    unchanged.
    """

    def __init__(self, inner: Algorithm):
        self.inner = inner
        self.name = f"shm-simulation({inner.name})"

    def initial_state(self, x_input: SimInput):
        """Wrap the inner node state with its cycle position."""
        if not isinstance(x_input, SimInput):
            raise ExecutionError(
                "CycleInSharedMemory inputs must be SimInput(index, n, x)"
            )
        return (x_input.index, x_input.n, self.inner.initial_state(x_input.x))

    def register_value(self, state) -> _SimRegister:
        """Publish the simulated node's register, tagged with its position."""
        index, _n, inner_state = state
        return _SimRegister(index=index, inner=self.inner.register_value(inner_state))

    def step(self, state, views: Tuple) -> StepOutcome:
        """Filter the snapshot to the two cycle neighbors and delegate."""
        index, n, inner_state = state
        left = (index - 1) % n
        right = (index + 1) % n
        view_left = BOTTOM
        view_right = BOTTOM
        for v in views:
            if v is BOTTOM:
                continue
            if v.index == left:
                view_left = v.inner
            if v.index == right:
                view_right = v.inner
        inner_views = (view_left, view_right) if left != right else (view_left,)
        outcome = self.inner.step(inner_state, inner_views)
        new_state = (index, n, outcome.state)
        if outcome.returned:
            return StepOutcome.ret(new_state, outcome.output)
        return StepOutcome.cont(new_state)


def run_cycle_in_shared_memory(
    inner: Algorithm,
    identifiers: Sequence[Any],
    schedule: Schedule,
    *,
    max_time: int = 1_000_000,
) -> ExecutionResult:
    """Run a cycle algorithm on ``C_n`` simulated in shared memory.

    Process ``p_i`` simulates cycle node ``i`` with identifier
    ``identifiers[i]``.
    """
    n = len(identifiers)
    inputs = [SimInput(index=i, n=n, x=identifiers[i]) for i in range(n)]
    return run_shared_memory(
        CycleInSharedMemory(inner), inputs, schedule, max_time=max_time
    )


def run_mis_as_ssb(
    mis_algorithm: Algorithm,
    identifiers: Sequence[Any],
    schedule: Schedule,
    *,
    max_time: int = 1_000_000,
):
    """Property 2.1's construction: candidate cycle-MIS ⇒ SSB attempt.

    Returns ``(result, violations)`` where ``violations`` are the SSB
    spec violations of the simulated execution.  For a *correct* MIS
    algorithm the list would always be empty — which is impossible, so
    for every candidate there exists a schedule yielding violations
    (found by :mod:`repro.lowerbounds.mis`); this function verifies a
    given schedule exhibits one.
    """
    n = len(identifiers)
    result = run_cycle_in_shared_memory(
        mis_algorithm, identifiers, schedule, max_time=max_time
    )
    violations = SSBSpec(n).check(result.outputs)
    return result, violations
