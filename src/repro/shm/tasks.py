"""Task specifications: renaming, strong symmetry breaking, MIS (§2.3).

A *task specification* judges the outputs of one execution.  Because
processes may crash, specifications quantify over the *terminating*
processes only; each ``check`` method returns a list of human-readable
violation strings (empty = execution satisfies the task).

* :class:`RenamingSpec` — names unique and within ``{0, …, k−1}``;
* :class:`SSBSpec` — strong symmetry breaking, the task the MIS
  impossibility (Property 2.1) reduces to.  Attiya–Paz [6, Thm 11]
  prove SSB has no wait-free shared-memory solution:
  (1) if **all** processes terminate, at least one outputs 0 and at
  least one outputs 1; (2) in **every** execution (with at least one
  terminating process), at least one process outputs 1;
* :class:`MISSpec` — maximal independent set on a graph:
  (1) every terminated 0-process has a terminated neighbor that
  output 1; (2) no two adjacent terminated processes both output 1.

Note the adversarial reading of MIS condition (1): the adversary may
end the execution at any point, so a process that terminates with
output 0 *before* any neighbor has terminated with 1 is already a lost
position — :meth:`MISSpec.doomed` detects it, which is what the
bounded falsifier of :mod:`repro.lowerbounds.mis` searches for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.model.topology import Topology
from repro.types import ProcessId

__all__ = ["RenamingSpec", "SSBSpec", "MISSpec"]


@dataclass
class RenamingSpec:
    """``k``-renaming among ``n`` processes: unique names in ``0..k−1``."""

    n: int
    k: int

    def check(self, outputs: Dict[ProcessId, Any]) -> List[str]:
        """Violations of uniqueness / namespace among terminated processes."""
        violations = []
        seen: Dict[Any, ProcessId] = {}
        for p, name in sorted(outputs.items()):
            if not isinstance(name, int) or not (0 <= name < self.k):
                violations.append(f"process {p} output {name!r} outside 0..{self.k - 1}")
            if name in seen:
                violations.append(
                    f"processes {seen[name]} and {p} both took name {name!r}"
                )
            else:
                seen[name] = p
        return violations


@dataclass
class SSBSpec:
    """Strong symmetry breaking for ``n`` processes (outputs in {0,1})."""

    n: int

    def check(self, outputs: Dict[ProcessId, Any]) -> List[str]:
        """Violations of the two SSB conditions on one execution."""
        violations = []
        for p, v in outputs.items():
            if v not in (0, 1):
                violations.append(f"process {p} output {v!r}, not a bit")
        values = set(outputs.values())
        if len(outputs) == self.n:
            if 0 not in values:
                violations.append("all processes terminated but none output 0")
            if 1 not in values:
                violations.append("all processes terminated but none output 1")
        if outputs and 1 not in values:
            violations.append("some processes terminated but none output 1")
        return violations


@dataclass
class MISSpec:
    """Maximal independent set on ``topology`` (outputs in {0,1})."""

    topology: Topology

    def check(self, outputs: Dict[ProcessId, Any]) -> List[str]:
        """Violations of the MIS conditions among terminated processes.

        Judges a *finished* execution: processes outside ``outputs``
        never terminate.
        """
        violations = []
        for p, v in outputs.items():
            if v not in (0, 1):
                violations.append(f"process {p} output {v!r}, not a bit")
        for p, v in outputs.items():
            if v != 0:
                continue
            nbr_ones = [
                q
                for q in self.topology.neighbors(p)
                if outputs.get(q) == 1
            ]
            if not nbr_ones:
                violations.append(
                    f"process {p} output 0 with no terminated 1-neighbor"
                )
        for p, q in self.topology.edges():
            if outputs.get(p) == 1 and outputs.get(q) == 1:
                violations.append(f"adjacent processes {p}, {q} both output 1")
        return violations

    def doomed(self, outputs: Dict[ProcessId, Any]) -> List[str]:
        """Violations already unavoidable mid-execution.

        The adversary can stop the schedule now, so (i) two adjacent
        terminated 1s and (ii) a terminated 0 without a terminated
        1-neighbor are both losing positions — for (ii), crashing the
        remaining processes finishes the violating execution.
        """
        return self.check(outputs)
