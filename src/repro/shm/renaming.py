"""Wait-free (2n−1)-renaming in shared memory (Attiya et al. [3]).

The paper's closest algorithmic ancestor: rank-based renaming
([7, Algorithm 55]; [3, Step 4 of Algorithm A]).  Each process
repeatedly suggests a name; on conflict it re-suggests the ``r``-th
smallest name not suggested by anyone else, where ``r`` is the rank of
its identifier among the processes it currently sees:

    Initially: suggestion s_p ← 0
    Forever:
        write (X_p, s_p); read all registers
        if s_q = s_p for some other participating q:
            r ← rank of X_p in { X_q : q participating } (1-based)
            s_p ← r-th smallest natural not in { s_q : q ≠ p }
        else:
            return s_p

Guarantees, in the immediate-snapshot shared-memory model:

* **wait-free** — every process returns in a bounded number of its own
  steps regardless of others;
* **uniqueness** — returned names are pairwise distinct;
* **namespace** — names lie in ``{0, …, 2n−2}`` (``2n−1`` names): a
  process of rank ``r`` among at most ``n`` participants skips at most
  ``n−1`` taken names before its ``r``-th free one, so suggestions
  never exceed ``(n−1) + (r−1) ≤ 2n−2``.

The lower bound side (Attiya–Paz [6], Castañeda–Rajsbaum [14]) —
``2n−1`` names are *necessary* when ``n`` is a power of a prime — is
what gives the paper's Property 2.3: on ``C_3`` (= 3-process shared
memory) at least ``2·3−1 = 5`` colors are needed, matching the 5-color
palette of Algorithms 2–3.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views

__all__ = ["RankRenaming", "RenamingState", "RenamingRegister", "renaming_namespace"]


def renaming_namespace(n: int) -> range:
    """The guaranteed output namespace ``{0, …, 2n−2}``."""
    return range(2 * n - 1)


class RenamingState(NamedTuple):
    """Private state of a renaming process."""

    x: int   #: the original identifier X_p
    s: int   #: the current name suggestion


class RenamingRegister(NamedTuple):
    """Public register payload ``(X_p, s_p)``."""

    x: int
    s: int


class RankRenaming(Algorithm):
    """Rank-based wait-free (2n−1)-renaming, for the complete graph.

    Run it with :func:`repro.shm.layer.run_shared_memory`; on any other
    topology the rank computation sees only neighbors and the
    uniqueness guarantee degrades to neighborhood-uniqueness — which is
    exactly the cycle-renaming task of the paper, but without the
    paper's constant-palette guarantee (suggestions are unbounded-rank
    based).  Tests exercise the complete-graph case.
    """

    name = "rank-renaming"

    def initial_state(self, x_input: int) -> RenamingState:
        """Start suggesting name 0."""
        return RenamingState(x=x_input, s=0)

    def register_value(self, state: RenamingState) -> RenamingRegister:
        """Publish ``(X_p, s_p)``."""
        return RenamingRegister(x=state.x, s=state.s)

    def step(self, state: RenamingState, views: Tuple) -> StepOutcome:
        """One suggest-or-return round."""
        others = active_views(views)
        conflict = any(v.s == state.s for v in others)
        if not conflict:
            return StepOutcome.ret(state, state.s)

        participants = [v.x for v in others] + [state.x]
        rank = sorted(participants).index(state.x) + 1  # 1-based
        taken = {v.s for v in others}
        # r-th smallest natural not taken by anyone else.
        name = 0
        remaining = rank
        while True:
            if name not in taken:
                remaining -= 1
                if remaining == 0:
                    break
            name += 1
        return StepOutcome.cont(RenamingState(x=state.x, s=name))
