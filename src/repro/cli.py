"""Command-line interface: run any algorithm / scheduler / input combo.

Installed as ``repro-color`` (see pyproject) and runnable as
``python -m repro.cli``.  Examples::

    repro-color run --algorithm fast5 --n 50 --inputs random --schedule sync
    repro-color run --algorithm alg2 --n 16 --inputs monotone \\
        --schedule bernoulli --seed 3 --timeline
    repro-color run --algorithm fast6 --n 32 --json
    repro-color metrics --algorithm alg1 --n 64 --schedule round-robin
    repro-color metrics --algorithm fast5 --n 128 --format prom --output m.prom
    repro-color livelock --loops 50
    repro-color falsify --target mis
    repro-color sweep --algorithm fast5 --max-n 4096
    repro-color campaign --algorithms fast5,fast6 --ns 16,32 --seeds 10 \\
        --backend pool --journal artifacts/campaign.jsonl --resume
    repro-color serve --port 8731 --queue-limit 64
    repro-color loadgen --port 8731 --requests 200 --duplicates 0.5 --json

Exit status is non-zero when a verification fails, so the CLI can be
used in scripts as a smoke check.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.complexity import fit_linear, fit_logstar, summarize_activations
from repro.analysis.experiments import format_table
from repro.analysis.inputs import monotone_ids, random_distinct_ids, zigzag_ids
from repro.analysis.verify import verify_execution
from repro.campaign.registry import (
    ALGORITHMS as _ALGORITHMS,
    INPUT_FAMILIES as _INPUTS,
    PALETTES as _PALETTES,
    resolve_schedule,
)
from repro.core.coloring5 import FiveColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.core.coin_tossing import log_star
from repro.errors import ReproError
from repro.extensions.livelock import demonstrate_livelock
from repro.model.execution import ENGINES, run_execution, time_exhausted_error
from repro.model.topology import Cycle
from repro.render import render_cycle, render_outputs, render_timeline
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    RoundRobinScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
)

__all__ = ["main", "build_parser"]

_SCHEDULE_CHOICES = [
    "sync", "round-robin", "bernoulli", "subset", "staggered", "alternating",
]


def _make_schedule(name: str, seed: int):
    return resolve_schedule(name, seed=seed)


def _add_metrics_flags(subparser) -> None:
    subparser.add_argument(
        "--metrics", choices=["off", "json", "prom"], default="off",
        help="collect instrumentation metrics and emit them as a JSON "
             "artifact or Prometheus text exposition (default: off — "
             "zero overhead; see docs/OBSERVABILITY.md)",
    )
    subparser.add_argument(
        "--metrics-output", metavar="PATH",
        help="write the metrics artifact here instead of stdout",
    )


def _add_trace_flags(subparser) -> None:
    subparser.add_argument(
        "--trace-output", metavar="PATH",
        help="record spans end to end and write the trace artifact "
             "here: Chrome trace-event JSON loadable in Perfetto / "
             "chrome://tracing, or one-span-per-line JSONL when PATH "
             "ends in .jsonl (see docs/OBSERVABILITY.md)",
    )


def _write_trace(output, recorder, **metadata) -> None:
    """Write one flight recorder as the requested trace artifact."""
    from repro.obs.trace import write_trace_artifact

    fmt = "jsonl" if str(output).endswith(".jsonl") else "chrome"
    write_trace_artifact(
        output,
        recorder.snapshot(),
        fmt=fmt,
        metadata={**recorder.stats(), **metadata},
    )
    print(f"wrote {output}", file=sys.stderr)


def _emit_metrics(registry, fmt: str, output, *, extra=None) -> None:
    """Print or write one collected registry in the chosen format."""
    from repro.obs.exposition import (
        render_json,
        render_prometheus,
        write_json_artifact,
    )

    # The "wrote" notice goes to stderr: --metrics-output composes with
    # --json modes whose stdout must stay one machine-readable document.
    if fmt == "prom":
        text = render_prometheus(registry)
        if output:
            path = Path(output)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            print(f"wrote {output}", file=sys.stderr)
        else:
            print(text, end="")
    else:
        if output:
            write_json_artifact(registry, output, extra=extra)
            print(f"wrote {output}", file=sys.stderr)
        else:
            print(
                json.dumps(
                    render_json(registry, extra=extra),
                    indent=2,
                    sort_keys=True,
                )
            )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-color",
        description="Wait-free coloring of the asynchronous cycle (PODC 2022 reproduction).",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one verified execution")
    run.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="fast5")
    run.add_argument("--n", type=int, default=20)
    run.add_argument("--inputs", choices=sorted(_INPUTS), default="random")
    run.add_argument("--schedule", choices=_SCHEDULE_CHOICES, default="sync")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--timeline", action="store_true", help="print an activation timeline")
    run.add_argument("--svg", metavar="BASENAME",
                     help="write BASENAME_ring.svg (+ _timeline.svg with --timeline)")
    run.add_argument("--max-time", type=int, default=1_000_000)
    run.add_argument(
        "--engine", choices=list(ENGINES), default="fast",
        help="execution engine: compiled fast path, lockstep batch, "
             "node-vectorized wide, the straight-from-the-paper "
             "reference loop, or 'auto' to pick from the workload "
             "shape (see docs/ENGINE.md)",
    )
    run.add_argument(
        "--json", action="store_true",
        help="machine-readable output: JSON verdict + activation stats",
    )
    _add_metrics_flags(run)
    _add_trace_flags(run)

    metrics = sub.add_parser(
        "metrics",
        help="instrumented, bound-monitored run: checks the paper's "
             "activation budget, palette and proper-coloring promises "
             "live and emits the metrics artifact",
    )
    metrics.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="alg1")
    metrics.add_argument("--n", type=int, default=64)
    metrics.add_argument("--inputs", choices=sorted(_INPUTS), default="random")
    metrics.add_argument("--schedule", choices=_SCHEDULE_CHOICES, default="sync")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--max-time", type=int, default=1_000_000)
    metrics.add_argument("--engine", choices=list(ENGINES), default="fast")
    metrics.add_argument(
        "--budget-scale", type=float, default=1.0,
        help="multiply the paper activation budget (scale < 1 tightens "
             "the bound — useful to demonstrate violation detection)",
    )
    metrics.add_argument("--format", choices=["json", "prom"], default="json")
    metrics.add_argument("--output", metavar="PATH",
                         help="write the artifact here instead of stdout")

    livelock = sub.add_parser(
        "livelock", help="replay the Algorithm 2 livelock witness (finding E13)"
    )
    livelock.add_argument("--loops", type=int, default=50)
    livelock.add_argument(
        "--algorithm", choices=["alg2", "fast5"], default="alg2",
    )

    falsify = sub.add_parser(
        "falsify", help="defeat candidate MIS / 4-color algorithms (Properties 2.1/2.3)"
    )
    falsify.add_argument("--target", choices=["mis", "coloring"], default="mis")
    falsify.add_argument("--n", type=int, default=3)

    sweep = sub.add_parser("sweep", help="activation scaling sweep over n")
    sweep.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="fast5")
    sweep.add_argument("--max-n", type=int, default=1024)
    sweep.add_argument("--seed", type=int, default=0)

    ensemble = sub.add_parser(
        "ensemble", help="verified (inputs x schedulers) ensemble statistics"
    )
    ensemble.add_argument("--algorithm", choices=sorted(_ALGORITHMS), default="fast5")
    ensemble.add_argument("--n", type=int, default=24)
    ensemble.add_argument("--seeds", type=int, default=5)

    models = sub.add_parser(
        "models", help="compare LOCAL / DECOUPLED / asynchronous / self-stabilizing"
    )
    models.add_argument("--n", type=int, default=30)
    models.add_argument("--seed", type=int, default=0)

    progress = sub.add_parser(
        "progress",
        help="exact wait-/starvation-/obstruction-freedom classification (E18)",
    )
    progress.add_argument("--n", type=int, default=3)

    campaign = sub.add_parser(
        "campaign",
        help="sharded, resumable experiment campaign (see docs/CAMPAIGN.md)",
    )
    campaign.add_argument(
        "--algorithms", default="fast5",
        help="comma-separated algorithm names (default: fast5)",
    )
    campaign.add_argument(
        "--ns", default="24",
        help="comma-separated cycle sizes (default: 24)",
    )
    campaign.add_argument(
        "--inputs", default="random,monotone,zigzag",
        help="comma-separated input families",
    )
    campaign.add_argument(
        "--schedules", default="sync,round-robin,bernoulli",
        help="comma-separated scheduler names",
    )
    campaign.add_argument("--seeds", type=int, default=5,
                          help="seeds 0..K-1 per grid point")
    campaign.add_argument("--topology", default="cycle")
    campaign.add_argument("--max-time", type=int, default=200_000)
    campaign.add_argument("--engine", choices=list(ENGINES), default="auto",
                          help="execution engine for every task of the grid; "
                               "'auto' (default) packs the grid into lockstep "
                               "batches and adapts per task otherwise")
    campaign.add_argument("--backend", choices=["sequential", "batch", "pool"],
                          default="pool")
    campaign.add_argument("--workers", type=int, default=None,
                          help="pool size (default: cpu count)")
    campaign.add_argument("--pool-workers", dest="workers", type=int,
                          help="alias for --workers: warm worker processes "
                               "of the pool backend (see docs/POOL.md)")
    campaign.add_argument("--timeout", type=float, default=60.0,
                          help="per-task timeout in seconds (pool backend)")
    campaign.add_argument("--retries", type=int, default=2,
                          help="max retries per task")
    campaign.add_argument("--journal", metavar="PATH",
                          help="JSONL journal path (enables --resume)")
    campaign.add_argument("--resume", action="store_true",
                          help="skip tasks already journaled as finished")
    campaign.add_argument("--summary", metavar="PATH",
                          help="write the campaign summary JSON artifact here")
    campaign.add_argument("--json", action="store_true",
                          help="print the summary as JSON instead of text")
    campaign.add_argument("--chaos-plan", metavar="PATH",
                          help="arm a seeded FaultPlan JSON file for this "
                               "campaign (journal kill/torn sites and pool "
                               "worker faults; see docs/CHAOS.md)")
    _add_metrics_flags(campaign)
    _add_trace_flags(campaign)

    serve = sub.add_parser(
        "serve",
        help="serve coloring executions over HTTP with caching, request "
             "coalescing and backpressure (see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731,
                       help="TCP port (0 = ephemeral; default: 8731)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU result-cache capacity (0 disables caching)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission-queue bound; overflow is shed with 429")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="max requests coalesced into one lockstep batch")
    serve.add_argument("--coalesce-window", type=float, default=0.002,
                       help="seconds to wait for coalescible company "
                            "(default: 0.002)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request wall-clock timeout → 504")
    serve.add_argument("--workers", type=int, default=2,
                       help="executor threads running simulations "
                            "(ignored when --pool-workers is set)")
    serve.add_argument("--pool-workers", type=int, default=0,
                       help="warm worker processes executing simulations; "
                            "0 (default) keeps the in-process thread "
                            "executor — use the CPU count for multi-core "
                            "serving (see docs/POOL.md)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="graceful-shutdown drain budget on SIGTERM")
    serve.add_argument("--trace", default="off", metavar="MODE",
                       help="tracing mode: off (default), on (trace every "
                            "request), or sample=K (every Kth request); "
                            "serves the flight recorder at /debug/trace "
                            "and echoes X-Repro-Trace-Id on responses "
                            "(see docs/OBSERVABILITY.md)")
    serve.add_argument("--trace-buffer", type=int, default=4096,
                       help="flight-recorder capacity in spans (bounded "
                            "ring: oldest spans are evicted first)")
    serve.add_argument("--chaos-plan", metavar="PATH",
                       help="arm a seeded FaultPlan JSON file: deterministic "
                            "fault injection at the service/pool sites "
                            "(see docs/CHAOS.md)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the startup/shutdown notices")

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serve endpoint with a deterministic request burst "
             "and report throughput / latency / status split",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8731)
    loadgen.add_argument("--requests", type=int, default=100)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--duplicates", type=float, default=0.0,
                         help="fraction of requests drawn from a hot "
                              "working set (cache exerciser), in [0, 1]")
    loadgen.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                         default="fast5")
    loadgen.add_argument("--n", type=int, default=64)
    loadgen.add_argument("--inputs", choices=sorted(_INPUTS), default="random")
    loadgen.add_argument("--schedule", choices=_SCHEDULE_CHOICES,
                         default="bernoulli")
    loadgen.add_argument("--max-time", type=int, default=200_000)
    loadgen.add_argument("--seed-base", type=int, default=0,
                         help="first seed of the burst (shift to defeat "
                              "a warm server cache)")
    loadgen.add_argument("--working-set", type=int, default=4,
                         help="distinct hot requests behind --duplicates")
    loadgen.add_argument("--timeout", type=float, default=60.0,
                         help="client-side timeout per request")
    loadgen.add_argument("--retry", action="store_true",
                         help="retry retryable outcomes (429/5xx/transport "
                              "errors) under seeded exponential backoff "
                              "honoring Retry-After; off by default so the "
                              "burst measures shedding instead of hiding it")
    loadgen.add_argument("--retry-max", type=int, default=4,
                         help="max retries per request with --retry")
    loadgen.add_argument("--retry-base", type=float, default=0.05,
                         help="base backoff delay in seconds with --retry")
    loadgen.add_argument("--retry-seed", type=int, default=0,
                         help="seed of the deterministic backoff jitter")
    loadgen.add_argument("--deadline", type=float, default=None,
                         help="wall-clock budget per request including "
                              "retries (seconds; default: unbounded)")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full summary as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run the chaos harness: a fault-injected in-process server "
             "under retrying load, with invariants checked "
             "(see docs/CHAOS.md)",
    )
    chaos.add_argument("--seeds", default="0",
                       help="comma-separated fault-plan seeds; the harness "
                            "runs once per seed (default: 0)")
    chaos.add_argument("--requests", type=int, default=60,
                       help="requests per burst")
    chaos.add_argument("--concurrency", type=int, default=4)
    chaos.add_argument("--n", type=int, default=32,
                       help="cycle size (kept small: every unique config is "
                            "re-verified on the reference engine)")
    chaos.add_argument("--pool-workers", type=int, default=0,
                       help="arm pool-worker fault sites with this many "
                            "warm worker processes (0 = thread executor)")
    chaos.add_argument("--plan", metavar="PATH",
                       help="override the default fault mix with a "
                            "FaultPlan JSON file (its seed wins)")
    chaos.add_argument("--campaign", action="store_true",
                       help="also run the journal kill/resume leg "
                            "(subprocess campaigns; slower)")
    chaos.add_argument("--no-verify", action="store_true",
                       help="skip the reference-engine bit-identity check")
    chaos.add_argument("--json", action="store_true",
                       help="print the full invariant report as JSON")
    return parser


def _cmd_run(args) -> int:
    algorithm = _ALGORITHMS[args.algorithm]()
    inputs = _INPUTS[args.inputs](args.n, args.seed)
    schedule = _make_schedule(args.schedule, args.seed)
    with ExitStack() as stack:
        registry = None
        if args.metrics != "off":
            from repro.obs.metrics import collecting

            registry = stack.enter_context(collecting())
        recorder = None
        if args.trace_output:
            from repro.obs.trace import (
                FlightRecorder,
                TraceContext,
                start_span,
                tracing,
                use_context,
            )

            recorder = FlightRecorder()
            stack.enter_context(tracing(recorder))
            stack.enter_context(use_context(TraceContext.new_root()))
            stack.enter_context(
                start_span(
                    "run",
                    algorithm=args.algorithm, n=args.n,
                    inputs=args.inputs, schedule=args.schedule,
                    seed=args.seed, engine=args.engine,
                )
            )
        result = run_execution(
            algorithm, Cycle(args.n), inputs, schedule,
            max_time=args.max_time, record_trace=args.timeline,
            engine=args.engine,
        )
    if recorder is not None:
        _write_trace(
            args.trace_output, recorder,
            command="run", algorithm=args.algorithm, engine=args.engine,
        )
    verdict = verify_execution(Cycle(args.n), result, palette=_PALETTES[args.algorithm])
    ok = verdict.ok and result.all_terminated
    if result.time_exhausted:
        # Satellite of the observability PR: a run cut off by max_time
        # is surfaced with its partial state, not a bare flag.
        print(f"warning: {time_exhausted_error(result)}", file=sys.stderr)
    if args.json:
        counts = list(result.activations.values())
        payload = {
            "algorithm": args.algorithm,
            "n": args.n,
            "inputs": args.inputs,
            "schedule": args.schedule,
            "seed": args.seed,
            "engine": args.engine,
            "verdict": {
                "ok": ok,
                "all_terminated": result.all_terminated,
                "terminated": len(result.outputs),
                "proper": verdict.proper,
                "palette_ok": verdict.palette_ok,
            },
            "activations": {
                "round_complexity": result.round_complexity,
                "total": sum(counts),
                "max": max(counts) if counts else 0,
                "mean": (sum(counts) / len(counts)) if counts else 0.0,
                "final_time": result.final_time,
            },
            "colors_used": sorted(
                {str(c) for c in result.outputs.values()}
            ),
        }
        if result.time_exhausted:
            payload["time_exhausted"] = {
                "final_time": result.final_time,
                "pending": sorted(result.pending),
                "activations": {
                    str(p): result.activations.get(p, 0)
                    for p in sorted(result.pending)
                },
            }
        if registry is not None and args.metrics == "json" and not args.metrics_output:
            payload["metrics"] = registry.snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
        if registry is not None and (args.metrics == "prom" or args.metrics_output):
            _emit_metrics(registry, args.metrics, args.metrics_output)
        return 0 if ok else 1
    print(f"algorithm : {algorithm.name}")
    print(f"schedule  : {schedule!r}")
    print(f"terminated: {len(result.outputs)}/{args.n}")
    print(f"rounds    : {result.round_complexity}")
    print(f"proper    : {verdict.proper}   palette-ok: {verdict.palette_ok}")
    print()
    print(render_cycle(inputs, result.outputs))
    print()
    print(render_outputs(result))
    if args.timeline and result.trace is not None:
        print()
        print(render_timeline(result.trace, args.n))
    if args.svg:
        from repro.svg import save_execution_svgs

        for path in save_execution_svgs(result, inputs, args.svg):
            print(f"wrote {path}")
    if registry is not None:
        print()
        _emit_metrics(registry, args.metrics, args.metrics_output)
    return 0 if ok else 1


def _cmd_metrics(args) -> int:
    from repro.obs import collecting, default_monitors

    algorithm = _ALGORITHMS[args.algorithm]()
    inputs = _INPUTS[args.inputs](args.n, args.seed)
    schedule = _make_schedule(args.schedule, args.seed)
    monitors = default_monitors(args.algorithm, args.n, scale=args.budget_scale)
    with collecting() as registry:
        result = run_execution(
            algorithm, Cycle(args.n), inputs, schedule,
            max_time=args.max_time, engine=args.engine, monitors=monitors,
        )
    reports = [m.report() for m in monitors]
    ok = all(m.ok for m in monitors) and result.all_terminated
    extra = {
        "run": {
            "algorithm": args.algorithm,
            "n": args.n,
            "inputs": args.inputs,
            "schedule": args.schedule,
            "seed": args.seed,
            "engine": args.engine,
            "budget_scale": args.budget_scale,
            "all_terminated": result.all_terminated,
            "round_complexity": result.round_complexity,
        },
        "monitors": reports,
        "ok": ok,
    }
    _emit_metrics(registry, args.format, args.output, extra=extra)
    if not result.all_terminated:
        print(
            f"warning: only {len(result.outputs)}/{args.n} processes returned",
            file=sys.stderr,
        )
    for report in reports:
        for violation in report["violations"]:
            print(f"violation: {violation['message']}", file=sys.stderr)
    return 0 if ok else 1


def _cmd_livelock(args) -> int:
    algorithm = FiveColoring() if args.algorithm == "alg2" else FastFiveColoring()
    result = demonstrate_livelock(algorithm, loop_iterations=args.loops)
    print(f"witness on C_3, ids (1, 2, 3), {args.loops} loop iterations:")
    print(render_outputs(result))
    stuck = sorted(result.pending)
    print(
        f"\nprocesses {stuck} were activated "
        f"{[result.activations[p] for p in stuck]} times without returning "
        "— no finite activation bound exists (finding E13)."
    )
    return 0


def _cmd_falsify(args) -> int:
    if args.target == "mis":
        from repro.lowerbounds.mis import candidate_mis_algorithms, falsify_mis

        for name, algorithm in candidate_mis_algorithms().items():
            outcome = falsify_mis(algorithm, n=args.n)
            status = "DEFEATED" if outcome.found else "survived (bounded)"
            print(f"{name:28s} {status}: {outcome.description}")
    else:
        from repro.lowerbounds.small_palette import (
            candidate_small_palette_algorithms,
            falsify_coloring,
        )

        for name, algorithm in candidate_small_palette_algorithms().items():
            outcome = falsify_coloring(algorithm, n=args.n)
            status = "DEFEATED" if outcome.found else "survived (bounded)"
            print(f"{name:28s} {status}: {outcome.description}")
    return 0


def _cmd_sweep(args) -> int:
    algorithm_factory = _ALGORITHMS[args.algorithm]
    ns = []
    n = 4
    while n <= args.max_n:
        ns.append(n)
        n *= 2
    rows = []
    measured = []
    for n in ns:
        result = run_execution(
            algorithm_factory(), Cycle(n), monotone_ids(n), RoundRobinScheduler(),
        )
        rows.append(
            {
                "n": n,
                "log*n": log_star(n),
                "rounds": result.round_complexity,
                "mean": round(summarize_activations(result).mean, 2),
                "terminated": f"{len(result.outputs)}/{n}",
            }
        )
        measured.append(result.round_complexity)
    print(format_table(rows))
    if len(ns) >= 3:
        c_lin, _ = fit_linear(ns, measured)
        c_log, _ = fit_logstar(ns, measured)
        print(f"\nfit rounds ~ c*n:      c = {c_lin:.4f}")
        print(f"fit rounds ~ c*log*n:  c = {c_log:.4f}")
    return 0


def _cmd_ensemble(args) -> int:
    from repro.analysis.ensembles import run_ensemble
    from repro.analysis.inputs import monotone_ids, zigzag_ids

    n = args.n
    inputs_list = [monotone_ids(n), zigzag_ids(n)] + [
        random_distinct_ids(n, seed=s) for s in range(args.seeds)
    ]
    schedules = [
        ("sync", SynchronousScheduler()),
        ("round-robin", RoundRobinScheduler()),
        ("alternating", AlternatingScheduler()),
        ("staggered", StaggeredScheduler(stagger=2)),
    ] + [
        (f"bernoulli-{s}", BernoulliScheduler(p=0.4, seed=s))
        for s in range(args.seeds)
    ]
    report = run_ensemble(
        _ALGORITHMS[args.algorithm],
        Cycle(n),
        inputs_list,
        schedules,
        palette=_PALETTES[args.algorithm],
    )
    print(f"{args.algorithm} on C_{n} — verified ensemble:")
    print(report)
    return 0 if report.all_ok else 1


def _cmd_models(args) -> int:
    import random as _random

    from repro.analysis.verify import coloring_violations
    from repro.decoupled import AnnouncementColoring, run_decoupled
    from repro.localmodel import ColeVishkinRing, run_local
    from repro.selfstab import ColoringRule, corrupt_states, run_selfstab

    n, seed = args.n, args.seed
    ids = random_distinct_ids(n, seed=seed)
    rows = []

    local = run_local(ColeVishkinRing(id_bits=64), Cycle(n), ids)
    rows.append({"model": "LOCAL", "colors": len(set(local.outputs.values())),
                 "cost": f"{local.rounds} rounds"})

    dec = run_decoupled(
        AnnouncementColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=seed),
    )
    rows.append({"model": "DECOUPLED", "colors": len(set(dec.outputs.values())),
                 "cost": f"{dec.activation_complexity} activations"})

    asyn = run_execution(
        FastFiveColoring(), Cycle(n), ids, BernoulliScheduler(p=0.5, seed=seed),
    )
    rows.append({"model": "async (paper)", "colors": len(set(asyn.outputs.values())),
                 "cost": f"{asyn.round_complexity} activations"})

    rule = ColoringRule(max_degree=2)
    stab = run_selfstab(
        rule, Cycle(n), corrupt_states(ids, _random.Random(seed)),
        BernoulliScheduler(p=0.5, seed=seed), max_steps=100_000,
    )
    rows.append({"model": "self-stabilizing",
                 "colors": len({s.color for s in stab.states}),
                 "cost": f"{stab.moves} moves"})

    ok = (
        not coloring_violations(Cycle(n), local.outputs)
        and not coloring_violations(Cycle(n), dec.outputs)
        and verify_execution(Cycle(n), asyn, palette=range(5)).ok
        and stab.stabilized
    )
    print(format_table(rows))
    return 0 if ok else 1


def _cmd_progress(args) -> int:
    from repro.core.coloring6 import SixColoring
    from repro.extensions.fast_six import FastSixColoring
    from repro.lowerbounds.progress import classify_progress

    rows = []
    for label, factory in (
        ("alg1", SixColoring), ("alg2", FiveColoring),
        ("fast5", FastFiveColoring), ("fast6", FastSixColoring),
    ):
        report = classify_progress(
            factory(), Cycle(args.n), list(range(1, args.n + 1)),
        )
        rows.append(
            {
                "algorithm": label,
                "wait_free": report.wait_free,
                "starvation_free": report.starvation_free,
                "obstruction_free": report.obstruction_free,
                "configs": report.configs,
                "exhaustive": report.exhausted,
            }
        )
    print(f"progress taxonomy on C_{args.n} (ids 1..{args.n}):\n")
    print(format_table(rows))
    return 0


def _cmd_campaign(args) -> int:
    from repro.campaign import CampaignSpec, make_backend, run_campaign

    def split(csv: str) -> List[str]:
        return [item.strip() for item in csv.split(",") if item.strip()]

    spec = CampaignSpec.build(
        algorithms=split(args.algorithms),
        ns=[int(n) for n in split(args.ns)],
        input_families=split(args.inputs),
        schedules=split(args.schedules),
        seeds=range(args.seeds),
        topology=args.topology,
        max_time=args.max_time,
        engine=args.engine,
    )
    backend = make_backend(args.backend, workers=args.workers)
    with ExitStack() as stack:
        if getattr(args, "chaos_plan", None):
            from repro.chaos import FaultPlan, chaos as chaos_ctx

            # Installed before the backend spawns so pool workers
            # inherit the plan (journal sites fire in this process).
            stack.enter_context(chaos_ctx(FaultPlan.from_file(args.chaos_plan)))
        registry = None
        if args.metrics != "off":
            from repro.obs.metrics import collecting

            registry = stack.enter_context(collecting())
        recorder = None
        if args.trace_output:
            from repro.obs.trace import FlightRecorder, tracing

            # Campaigns get a deep buffer: every task contributes a
            # handful of spans, and a truncated timeline defeats the
            # point of a campaign-wide artifact.
            recorder = FlightRecorder(max(65536, 8 * spec.size))
            stack.enter_context(tracing(recorder))
        outcome = run_campaign(
            spec,
            backend=backend,
            journal_path=args.journal,
            resume=args.resume,
            task_timeout=args.timeout,
            max_retries=args.retries,
        )
    if recorder is not None:
        _write_trace(
            args.trace_output, recorder,
            command="campaign", spec_hash=spec.spec_hash,
            backend=args.backend, tasks=spec.size,
        )
    if args.summary:
        outcome.summary.write(args.summary)
    if args.json:
        payload = {
            "summary": outcome.summary.to_dict(),
            "all_ok": outcome.all_ok,
            "report": None,
        }
        if outcome.report is not None:
            r = outcome.report
            payload["report"] = {
                "runs": r.runs,
                "terminated_runs": r.terminated_runs,
                "proper_runs": r.proper_runs,
                "palette_ok_runs": r.palette_ok_runs,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"campaign of {spec.size} tasks ({spec.spec_hash}):")
        print(outcome.summary)
        if outcome.report is not None:
            print()
            print(outcome.report)
        if args.summary:
            print(f"\nwrote {args.summary}")
    if registry is not None and (args.metrics == "prom" or args.metrics_output):
        _emit_metrics(registry, args.metrics, args.metrics_output)
    return 0 if outcome.all_ok else 1


def _cmd_serve(args) -> int:
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        coalesce_window=args.coalesce_window,
        request_timeout=args.request_timeout,
        executor_workers=args.workers,
        pool_workers=args.pool_workers,
        drain_timeout=args.drain_timeout,
        quiet=args.quiet,
        trace=args.trace,
        trace_buffer=args.trace_buffer,
        chaos_plan=args.chaos_plan,
    )


def _cmd_loadgen(args) -> int:
    from repro.chaos.resilience import BackoffPolicy
    from repro.service.loadgen import run_loadgen

    retry_policy = None
    if args.retry:
        retry_policy = BackoffPolicy(
            base=args.retry_base,
            seed=args.retry_seed,
            max_retries=args.retry_max,
        )
    summary = run_loadgen(
        host=args.host,
        port=args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        duplicates=args.duplicates,
        algorithm=args.algorithm,
        n=args.n,
        inputs=args.inputs,
        schedule=args.schedule,
        max_time=args.max_time,
        seed_base=args.seed_base,
        working_set=args.working_set,
        timeout=args.timeout,
        retry=args.retry,
        retry_policy=retry_policy,
        deadline=args.deadline,
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        outcomes = summary["outcomes"]
        latency = summary["latency_ms"]
        print(
            f"{summary['requests']} requests @ concurrency "
            f"{summary['concurrency']} in {summary['wall_seconds']:.2f}s "
            f"({summary['requests_per_sec']:.1f} req/s)"
        )
        print(f"statuses  : {summary['statuses']}")
        print(
            f"outcomes  : computed={outcomes['computed']} "
            f"cached={outcomes['cached']} coalesced={outcomes['coalesced']} "
            f"errors={outcomes['errors']}"
        )
        print(
            f"latency   : p50={latency['p50']:.1f}ms "
            f"p95={latency['p95']:.1f}ms p99={latency['p99']:.1f}ms "
            f"max={latency['max']:.1f}ms"
        )
        retries = summary["retries"]
        if retries["enabled"]:
            print(
                f"retries   : total={retries['total']} "
                f"attempts={retries['attempts_histogram']}"
            )
        failures = summary.get("failures") or []
        for failure in failures[:5]:
            trace_id = failure.get("trace_id", "")
            suffix = f" trace={trace_id}" if trace_id else ""
            print(
                f"failure   : request #{failure['index']} "
                f"status={failure['status']}{suffix}"
            )
        if len(failures) > 5:
            print(f"            ... and {len(failures) - 5} more")
    # A burst that only produced errors/sheds is a failed smoke check.
    return 0 if summary["ok"] > 0 and summary["outcomes"]["errors"] == 0 else 1


def _cmd_chaos(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.chaos import FaultPlan, run_campaign_chaos, run_service_chaos

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    if not seeds:
        raise ReproError("chaos: --seeds must name at least one seed")
    plan_override = FaultPlan.from_file(args.plan) if args.plan else None
    reports = []
    for seed in seeds:
        plan = None
        if plan_override is not None:
            plan = FaultPlan(
                plan_override.seed, list(plan_override.rules.values())
            )
        report = run_service_chaos(
            seed,
            requests=args.requests,
            concurrency=args.concurrency,
            n=args.n,
            pool_workers=args.pool_workers,
            plan=plan,
            verify_reference=not args.no_verify,
        )
        if args.campaign:
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                report["campaign"] = run_campaign_chaos(seed, Path(tmp))
            report["ok"] = report["ok"] and report["campaign"]["ok"]
            report["violations"] = (
                report["violations"] + report["campaign"]["violations"]
            )
        reports.append(report)
    all_ok = all(r["ok"] for r in reports)
    if args.json:
        print(
            json.dumps(
                {"ok": all_ok, "runs": reports}, indent=2, sort_keys=True
            )
        )
    else:
        for report in reports:
            verdict = "OK" if report["ok"] else "VIOLATED"
            print(
                f"seed {report['seed']} [{verdict}]: plan={report['plan_hash']} "
                f"faults={report['chaos_faults_injected']} "
                f"retries={report['retries']['total']} "
                f"statuses={report['statuses']}"
            )
            for violation in report["violations"]:
                print(
                    f"  violation [{violation['invariant']}]: "
                    f"{violation['detail']}"
                )
        print(
            f"{len(reports)} seed(s): "
            + ("all invariants held" if all_ok else "INVARIANT VIOLATIONS")
        )
    return 0 if all_ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "metrics": _cmd_metrics,
        "livelock": _cmd_livelock,
        "falsify": _cmd_falsify,
        "sweep": _cmd_sweep,
        "ensemble": _cmd_ensemble,
        "models": _cmd_models,
        "progress": _cmd_progress,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "chaos": _cmd_chaos,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"repro-color: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
