"""Algorithm 3 — fast wait-free 5-coloring in O(log* n) rounds (§4).

The paper's headline result: Algorithm 2 run unchanged (lines 5–10),
augmented with an identifier-reduction component à la Cole–Vishkin
(lines 11–19) that shortens monotone identifier chains — the quantity
governing Algorithm 2's running time — from Θ(n) down to a constant
``L ≤ 10`` within O(log* n) activations.

Per-process pseudocode (paper, Algorithm 3)::

    Input: X_p ∈ N
    Initially: a_p, b_p, r_p ← 0
    Forever:
        write(X_p, r_p, a_p, b_p); read both neighbors
        if a_p ∉ {a_q, b_q, a_q', b_q'}: return a_p
        elif b_p ∉ {a_q, b_q, a_q', b_q'}: return b_p
        else:
            a_p ← min N \\ { a_u, b_u | u ~ p, X_u > X_p }
            b_p ← min N \\ { a_q, b_q, a_q', b_q' }
            if r_p < ∞ and r_p ≤ min{r_q, r_q'}:          # green light
                if min{X_q, X_q'} < X_p < max{X_q, X_q'}:
                    r_p ← r_p + 1
                    Y ← f(X_p, min{X_q, X_q'})
                    if Y < min{X_q, X_q'}: X_p ← Y
                else:                                      # local extremum
                    r_p ← ∞
                    if X_p < min{X_q, X_q'}:
                        X_p ← min{X_p, min(N \\ {f(X_q, X_p), f(X_q', X_p)})}

Guarantees (Theorem 4.4), given inputs that properly color the cycle:

* termination within O(log* n) activations per process;
* outputs in ``{0, …, 4}``;
* outputs properly color the graph induced by terminating processes;
* throughout every execution, the *published* identifiers remain a
  proper coloring of the cycle (Lemma 4.5) — the invariant the
  green-light counters ``r_p`` exist to protect.

Model detail: the identifier-update block needs both neighbors' ``r``
and ``X`` values, so a process whose neighbor has never been activated
(register still ``⊥``) simply skips the block that round — consistent
with "awaiting a green light from both neighbors", since a sleeping
neighbor has granted nothing.  The coloring component (lines 5–10)
remains wait-free regardless.

**Reproduction note (finding E13).**  The Theorem 4.4 termination
claim inherits Algorithm 2's livelock: under the canonical witness
schedule of :mod:`repro.extensions.livelock` (solo prefix, then
lockstep pair) the two non-returned processes chase each other's
``b``-component forever, identifier reduction notwithstanding.  Safety
(proper coloring, 5-color palette, Lemma 4.5's identifier invariant)
is unaffected.  :class:`repro.extensions.fast_six.FastSixColoring`
combines this module's identifier reduction with Algorithm 1's pair
return rule into a wait-free O(log* n) algorithm with 6 colors.

Ablation knobs (experiments A1/A2 in DESIGN.md):

* ``green_light=False`` removes the ``r_p ≤ min{r_q, r_q'}``
  synchronization.  Perhaps surprisingly, this does *not* break the
  Lemma 4.5 invariant on small cycles: exhaustive exploration
  (``C_3``/``C_4``, full reachable configuration space) and large
  random ensembles found no identifier collision — the guarded
  adoption (line 15) plus the Lemma 4.3 property appear to protect
  safety by themselves, and the green light's role lies in the
  complexity argument (the blocked-chain analysis of Lemmas 4.7–4.10).
  Recorded as an observation in EXPERIMENTS.md (E7/A1).
* ``guarded_adoption=False`` adopts ``Y`` unconditionally in line 15 —
  the identifier order can then invert concurrently, and the Lemma 4.5
  invariant **is** violated (random schedules find collisions within a
  few dozen trials; see E7/A2).
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple, Union

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.coin_tossing import reduce_identifier
from repro.types import BOTTOM

__all__ = ["FastFiveColoring", "FastState", "FastRegister", "INFINITE_ROUND"]

#: The ``∞`` value the round counter ``r_p`` saturates to at a local
#: extremum (line 17 of the pseudocode).
INFINITE_ROUND = math.inf

Round = Union[int, float]


class FastState(NamedTuple):
    """Private state of a process running Algorithm 3."""

    x: int       #: current (evolving) identifier X_p
    r: Round     #: green-light counter r_p ∈ N ∪ {∞}
    a: int       #: candidate color avoiding higher-id neighbors' colors
    b: int       #: candidate color avoiding all neighbors' colors


class FastRegister(NamedTuple):
    """Public register payload ``(X_p, r_p, a_p, b_p)`` of Algorithm 3."""

    x: int
    r: Round
    a: int
    b: int


class FastFiveColoring(Algorithm):
    """Algorithm 3: 5-coloring ``C_n`` in O(log* n) activations."""

    name = "alg3-fast-five-coloring"

    def __init__(self, *, green_light: bool = True, guarded_adoption: bool = True):
        self.green_light = green_light
        self.guarded_adoption = guarded_adoption
        if not green_light:
            self.name = "alg3-ablated-no-green-light"
        elif not guarded_adoption:
            self.name = "alg3-ablated-unguarded-adoption"

    def initial_state(self, x_input: int) -> FastState:
        """Start with identifier ``x_input`` and ``a = b = r = 0``."""
        return FastState(x=x_input, r=0, a=0, b=0)

    def register_value(self, state: FastState) -> FastRegister:
        """Publish ``(X_p, r_p, a_p, b_p)``."""
        return FastRegister(x=state.x, r=state.r, a=state.a, b=state.b)

    def step(self, state: FastState, views: Tuple) -> StepOutcome:
        """One write-read-update round of Algorithm 3."""
        neighbors = active_views(views)

        # ---- lines 6-10: Algorithm 2 unchanged -----------------------
        taken_all = set()
        taken_higher = set()
        for v in neighbors:
            taken_all.add(v.a)
            taken_all.add(v.b)
            if v.x > state.x:
                taken_higher.add(v.a)
                taken_higher.add(v.b)

        if state.a not in taken_all:
            return StepOutcome.ret(state, state.a)
        if state.b not in taken_all:
            return StepOutcome.ret(state, state.b)

        new_a = mex(taken_higher)
        new_b = mex(taken_all)
        new_x = state.x
        new_r = state.r

        # ---- lines 11-19: identifier reduction -----------------------
        both_awake = len(views) == 2 and all(v is not BOTTOM for v in views)
        if both_awake and state.r < INFINITE_ROUND:
            q, qq = views
            granted = state.r <= min(q.r, qq.r)
            if granted or not self.green_light:
                lo, hi = min(q.x, qq.x), max(q.x, qq.x)
                if lo < state.x < hi:
                    new_r = state.r + 1
                    candidate = reduce_identifier(state.x, lo)
                    if candidate < lo or not self.guarded_adoption:
                        new_x = candidate
                else:
                    new_r = INFINITE_ROUND
                    if state.x < lo:
                        fresh = mex({
                            reduce_identifier(q.x, state.x),
                            reduce_identifier(qq.x, state.x),
                        })
                        new_x = min(state.x, fresh)

        return StepOutcome.cont(FastState(x=new_x, r=new_r, a=new_a, b=new_b))
