"""Algorithm 2 — wait-free 5-coloring of the asynchronous cycle (§3.2).

Per-process pseudocode (paper, Algorithm 2), for process ``p`` with
neighbors ``q, q'``::

    Input: X_p ∈ N
    Initially: a_p, b_p ← 0
    Forever:
        write(X_p, a_p, b_p) and read((X_q, a_q, b_q), (X_q', a_q', b_q'))
        P⁺ ← { u ∈ {q, q'} | X_u > X_p }
        C⁺ ← { a_u | u ∈ P⁺ } ∪ { b_u | u ∈ P⁺ }
        C  ← { a_q, b_q, a_q', b_q' }
        if a_p ∉ C: return a_p
        elif b_p ∉ C: return b_p
        else:
            a_p ← min N \\ C⁺
            b_p ← min N \\ C

Guarantees (Theorem 3.11), given inputs that properly color the cycle:

* termination within ``O(n)`` activations — ``3ℓ + 4`` for a process at
  monotone distance ``ℓ`` from its nearest local *maximum*
  (Lemma 3.14), and local minima at most one step after both neighbors;
* outputs in ``{0, …, 4}`` (``C`` has at most four elements so the
  first-fit ``b_p`` never exceeds 4, and ``a_p ≤ b_p`` by ``C⁺ ⊆ C``);
* outputs properly color the graph induced by terminating processes
  (Lemma 3.12).

This is the slow-but-color-optimal component that Algorithm 3 augments
with identifier reduction.  It bears resemblance to rank-based
``(2n−1)``-renaming ([7, Alg. 55], [3, Step 4 of Alg. A]) restricted to
distance-1 visibility — see :mod:`repro.shm.renaming` for the
shared-memory ancestor.

**Reproduction note (finding E13).**  The termination claim does NOT
hold for the pseudocode as printed: exhaustive schedule exploration
found a livelock on ``C_3`` with identifiers ``1, 2, 3`` — after the
id-1 process returns from a solo prefix, the other two, activated in
lockstep, chase each other's ``b``-component forever.  The safety and
palette claims are unaffected, and empirically every scheduler in the
zoo terminates; only perfectly phase-locked adversarial schedules
exhibit the gap.  See :mod:`repro.extensions.livelock` for the minimal
witness and analysis, and :mod:`repro.extensions.fast_six` for a
repaired (6-color) algorithm.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex

__all__ = ["FiveColoring", "FiveState", "FiveRegister"]


class FiveState(NamedTuple):
    """Private state of a process running Algorithm 2."""

    x: int   #: the (immutable) input identifier X_p
    a: int   #: candidate color avoiding higher-id neighbors' colors
    b: int   #: candidate color avoiding all neighbors' colors


class FiveRegister(NamedTuple):
    """Public register payload ``(X_p, a_p, b_p)`` of Algorithm 2."""

    x: int
    a: int
    b: int


class FiveColoring(Algorithm):
    """Algorithm 2: wait-free 5-coloring of ``C_n`` in O(n) activations."""

    name = "alg2-five-coloring"

    def initial_state(self, x_input: int) -> FiveState:
        """Start with identifier ``x_input`` and ``a_p = b_p = 0``."""
        return FiveState(x=x_input, a=0, b=0)

    def register_value(self, state: FiveState) -> FiveRegister:
        """Publish ``(X_p, a_p, b_p)``."""
        return FiveRegister(x=state.x, a=state.a, b=state.b)

    def step(self, state: FiveState, views: Tuple) -> StepOutcome:
        """One write-read-update round of Algorithm 2."""
        neighbors = active_views(views)

        taken_all = set()
        taken_higher = set()
        for v in neighbors:
            taken_all.add(v.a)
            taken_all.add(v.b)
            if v.x > state.x:
                taken_higher.add(v.a)
                taken_higher.add(v.b)

        if state.a not in taken_all:
            return StepOutcome.ret(state, state.a)
        if state.b not in taken_all:
            return StepOutcome.ret(state, state.b)

        new_a = mex(taken_higher)
        new_b = mex(taken_all)
        return StepOutcome.cont(FiveState(x=state.x, a=new_a, b=new_b))
