"""The paper's algorithms — the primary contribution of the library.

* :mod:`repro.core.coloring6` — Algorithm 1, wait-free 6-coloring of
  the cycle in O(n) activations (warm-up, §3.1);
* :mod:`repro.core.coloring5` — Algorithm 2, wait-free 5-coloring of
  the cycle in O(n) activations (§3.2);
* :mod:`repro.core.fast_coloring5` — Algorithm 3, wait-free 5-coloring
  in O(log* n) activations (§4, the headline result);
* :mod:`repro.core.general` — Algorithm 4, wait-free O(Δ²)-coloring of
  general graphs (Appendix A);
* :mod:`repro.core.coin_tossing` — the Cole–Vishkin-style identifier
  reduction function ``f`` and ``log*`` machinery (§4.1);
* :mod:`repro.core.palette` — output palettes;
* :mod:`repro.core.algorithm` — the per-process protocol interface.
"""

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.coin_tossing import (
    REDUCTION_PLATEAU,
    bound_function,
    iterations_until_below,
    log_star,
    reduce_identifier,
)
from repro.core.coloring5 import FiveColoring, FiveRegister, FiveState
from repro.core.coloring6 import SIX_PALETTE, SixColoring, SixRegister, SixState
from repro.core.fast_coloring5 import (
    INFINITE_ROUND,
    FastFiveColoring,
    FastRegister,
    FastState,
)
from repro.core.general import GeneralGraphColoring, GeneralRegister, GeneralState
from repro.core.palette import SCALAR_FIVE, TriangularPalette, scalar_palette

__all__ = [
    "Algorithm",
    "FastFiveColoring",
    "FastRegister",
    "FastState",
    "FiveColoring",
    "FiveRegister",
    "FiveState",
    "GeneralGraphColoring",
    "GeneralRegister",
    "GeneralState",
    "INFINITE_ROUND",
    "REDUCTION_PLATEAU",
    "SCALAR_FIVE",
    "SIX_PALETTE",
    "SixColoring",
    "SixRegister",
    "SixState",
    "StepOutcome",
    "TriangularPalette",
    "active_views",
    "bound_function",
    "iterations_until_below",
    "log_star",
    "mex",
    "reduce_identifier",
    "scalar_palette",
]
