"""Algorithm 1 — wait-free 6-coloring of the asynchronous cycle (§3.1).

Per-process pseudocode (paper, Algorithm 1), for process ``p`` with
neighbors ``q, q'``::

    Input: X_p ∈ N
    Initially: c_p = (a_p, b_p) ← (0, 0)
    Forever:
        write(X_p, c_p) and read((X_q, c_q), (X_q', c_q'))
        if c_p ∉ {c_q, c_q'}: return c_p
        else:
            a_p ← min N \\ { a_u | u ~ p, X_u > X_p }
            b_p ← min N \\ { b_u | u ~ p, X_u < X_p }

Guarantees (Theorem 3.1), given inputs that properly color the cycle:

* termination within ``⌊3n/2⌋ + 4`` activations per process, and within
  ``min{3ℓ, 3ℓ′, ℓ+ℓ′} + 4`` activations for a process at monotone
  distances ``ℓ, ℓ′`` from its nearest local extrema (Lemma 3.9);
* outputs in the 6-color palette ``{(a, b) : a + b ≤ 2}``;
* outputs properly color the graph induced by terminating processes.

A neighbor that has never been activated is invisible (its register
reads ``⊥``): it contributes no constraint to either ``mex`` and its
(unknown) color cannot clash, exactly as in the paper's Lemma 3.2 case
analysis.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.palette import TriangularPalette
from repro.types import BOTTOM

__all__ = ["SixColoring", "SixState", "SixRegister", "SIX_PALETTE"]

#: Theorem 3.1's output palette: pairs with a + b <= 2.
SIX_PALETTE = TriangularPalette(2)


class SixState(NamedTuple):
    """Private state of a process running Algorithm 1."""

    x: int   #: the (immutable) input identifier X_p
    a: int   #: first color component a_p
    b: int   #: second color component b_p


class SixRegister(NamedTuple):
    """Public register payload ``(X_p, c_p)`` of Algorithm 1."""

    x: int
    color: Tuple[int, int]


class SixColoring(Algorithm):
    """Algorithm 1: the warm-up wait-free 6-coloring of ``C_n``."""

    name = "alg1-six-coloring"

    def initial_state(self, x_input: int) -> SixState:
        """Start with identifier ``x_input`` and color ``(0, 0)``."""
        return SixState(x=x_input, a=0, b=0)

    def register_value(self, state: SixState) -> SixRegister:
        """Publish ``(X_p, (a_p, b_p))``."""
        return SixRegister(x=state.x, color=(state.a, state.b))

    def step(self, state: SixState, views: Tuple) -> StepOutcome:
        """One write-read-update round of Algorithm 1."""
        neighbors = active_views(views)
        my_color = (state.a, state.b)

        neighbor_colors = {v.color for v in neighbors}
        if my_color not in neighbor_colors:
            return StepOutcome.ret(state, my_color)

        new_a = mex(v.color[0] for v in neighbors if v.x > state.x)
        new_b = mex(v.color[1] for v in neighbors if v.x < state.x)
        return StepOutcome.cont(SixState(x=state.x, a=new_a, b=new_b))
