"""Algorithm 4 — wait-free O(Δ²)-coloring of general graphs (App. A).

The straightforward extension of Algorithm 1 to any connected graph of
maximum degree Δ: each process reads all its (up to Δ) neighbors and
first-fits the two components of its pair color against higher- and
lower-identifier neighbors respectively::

    Input: X_p ∈ N
    Initially: c_p = (a_p, b_p) ← (0, 0)
    Forever:
        write(X_p, c_p) and read((X_q1, c_q1), …, (X_qk, c_qk))
        if c_p ∉ {c_q1, …, c_qk}: return c_p
        else:
            a_p ← min N \\ { a_u | u ~ p, X_u > X_p }
            b_p ← min N \\ { b_u | u ~ p, X_u < X_p }

Every returned color lies in ``{(a, b) : a + b ≤ Δ}``, of cardinality
``(Δ+1)(Δ+2)/2 = O(Δ²)``; termination follows the Algorithm 1 argument
(local extrema stabilize one component, termination propagates), with
O(n)-activation worst case.  The paper leaves closing the gap to the
``2Δ + 1`` renaming-style lower bound as an open problem.

The implementation is identical to :class:`~repro.core.coloring6.SixColoring`
except that it accepts any number of neighbor views; it is kept as a
separate class because the two palettes (and hence the verification
predicates) differ, and because Algorithm 1's cycle-specific activation
bounds do not transfer.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.core.algorithm import Algorithm, StepOutcome, active_views, mex
from repro.core.palette import TriangularPalette

__all__ = ["GeneralGraphColoring", "GeneralState", "GeneralRegister"]


class GeneralState(NamedTuple):
    """Private state of a process running Algorithm 4."""

    x: int
    a: int
    b: int


class GeneralRegister(NamedTuple):
    """Public register payload ``(X_p, c_p)`` of Algorithm 4."""

    x: int
    color: Tuple[int, int]


class GeneralGraphColoring(Algorithm):
    """Algorithm 4: O(Δ²)-coloring arbitrary graphs, wait-free."""

    name = "alg4-general-graph-coloring"

    def initial_state(self, x_input: int) -> GeneralState:
        """Start with identifier ``x_input`` and color ``(0, 0)``."""
        return GeneralState(x=x_input, a=0, b=0)

    def register_value(self, state: GeneralState) -> GeneralRegister:
        """Publish ``(X_p, (a_p, b_p))``."""
        return GeneralRegister(x=state.x, color=(state.a, state.b))

    def step(self, state: GeneralState, views: Tuple) -> StepOutcome:
        """One write-read-update round of Algorithm 4."""
        neighbors = active_views(views)
        my_color = (state.a, state.b)

        if my_color not in {v.color for v in neighbors}:
            return StepOutcome.ret(state, my_color)

        new_a = mex(v.color[0] for v in neighbors if v.x > state.x)
        new_b = mex(v.color[1] for v in neighbors if v.x < state.x)
        return StepOutcome.cont(GeneralState(x=state.x, a=new_a, b=new_b))

    @staticmethod
    def palette(max_degree: int) -> TriangularPalette:
        """The guaranteed output palette ``{(a, b) : a + b ≤ Δ}``."""
        return TriangularPalette(max_degree)
