"""The per-process algorithm interface and small shared helpers.

Every protocol in the paper is a deterministic per-process state
machine driven by the round engine: at each activation the engine

1. publishes :meth:`Algorithm.register_value` of the current state,
2. hands the neighbors' register contents to :meth:`Algorithm.step`,
3. installs the returned state, or records the returned output.

States are immutable named tuples; an :class:`Algorithm` instance holds
no per-process data and can drive any number of processes concurrently
(including across different executions), which is what lets the
falsifiers and benchmarks reuse one algorithm object everywhere.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Tuple

from repro.types import BOTTOM

__all__ = ["Algorithm", "StepOutcome", "mex", "active_views"]


@dataclass(frozen=True)
class StepOutcome:
    """Result of one private update.

    ``returned=True`` means the process fulfilled its stopping condition
    this round and outputs ``output``; the engine will never activate it
    again (the paper's ``σ̄`` restriction).  The ``state`` carried along
    is the process's state after the round either way — for a returning
    process it is the state whose public part stays visible in its
    register forever after.
    """

    state: Any
    returned: bool = False
    output: Any = None

    @classmethod
    def cont(cls, state: Any) -> "StepOutcome":
        """The process keeps working with ``state``."""
        return cls(state=state, returned=False)

    @classmethod
    def ret(cls, state: Any, output: Any) -> "StepOutcome":
        """The process returns ``output`` and stops."""
        return cls(state=state, returned=True, output=output)


class Algorithm(ABC):
    """A deterministic per-process protocol for the state model.

    Subclasses must be stateless with respect to individual processes:
    all per-process data lives in the state objects flowing through
    :meth:`step`.
    """

    #: Human-readable algorithm name for reports and CLI.
    name: str = "algorithm"

    #: Whether :meth:`step` is a pure function of ``(state, views)`` and
    #: :meth:`register_value` a pure function of ``state`` — the written
    #: contract of this class (see :mod:`repro.model.contract`), so the
    #: default is True.  The fast execution engine uses this declaration
    #: to skip re-stepping a quiescent process whose state and
    #: neighborhood registers are unchanged (the outcome is provably the
    #: same).  A subclass that breaks purity (randomization, hidden
    #: per-process state) must set this to False or the fast engine may
    #: diverge from the reference engine.
    view_deterministic: bool = True

    @abstractmethod
    def initial_state(self, x_input: Any) -> Any:
        """State of a process whose input (identifier) is ``x_input``."""

    @abstractmethod
    def register_value(self, state: Any) -> Any:
        """The public payload written to the register at each activation.

        Must be an immutable value (plain tuple / named tuple) — the
        engine snapshots registers by reference.
        """

    @abstractmethod
    def step(self, state: Any, views: Tuple[Any, ...]) -> StepOutcome:
        """One private update after a local immediate snapshot.

        ``views`` contains, for each topology neighbor in order, either
        that neighbor's last written register payload or
        :data:`~repro.types.BOTTOM` if the neighbor has never been
        activated.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def mex(taken: Iterable[int]) -> int:
    """Minimum excluded natural: ``min(N \\ taken)``.

    The first-fit rule all four algorithms use to pick ``a_p``/``b_p``.
    """
    taken = set(taken)
    value = 0
    while value in taken:
        value += 1
    return value


def active_views(views: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """The neighbor views that are not ``⊥`` (awakened neighbors only)."""
    return tuple(v for v in views if v is not BOTTOM)
