"""Deterministic coin tossing: the identifier-reduction function (§4.1).

Implements Equation (6) of the paper, adapted from Cole and Vishkin's
deterministic coin-tossing technique [17]:

    f(X, Y) = 2·i + X_i    where  i = min({|X|, |Y|} ∪ {k : X_k ≠ Y_k})

with ``|Z| = ⌈log₂(Z+1)⌉`` the binary length of ``Z`` and ``Z_k`` its
``k``-th bit.  The three properties the paper proves about ``f`` (and
that the test-suite checks, exhaustively for small inputs and by
property-based sampling for big ones) are:

* **Lemma 4.2** — if ``x > y ≥ 10`` then ``f(x, y) < y`` (identifier
  reduction makes strict progress above the constant plateau);
* **Lemma 4.3** — if ``x > y > z`` then ``f(x, y) ≠ f(y, z)`` (the
  reduction preserves proper coloring along monotone chains);
* **Lemma 4.1** — the bound function ``F(x) = 2⌈log₂(x+1)⌉ + 1``
  satisfies ``F(f-chain values)`` and drops below 10 within
  ``O(log* x)`` iterations.

Also provides ``log*`` itself (footnote 1 of the paper) and utilities
used by experiment E6.
"""

from __future__ import annotations

import math
from typing import List

__all__ = [
    "bit",
    "bit_length",
    "reduce_identifier",
    "bound_function",
    "iterate_bound",
    "iterations_until_below",
    "log_star",
    "REDUCTION_PLATEAU",
]

#: Identifiers at or below this value are never reduced further by the
#: guarded update of Algorithm 3; the paper's constant ``L ≤ 10``.
REDUCTION_PLATEAU = 10


def bit_length(z: int) -> int:
    """Binary length ``|Z| = ⌈log₂(Z+1)⌉`` (0 for ``Z = 0``).

    Coincides with Python's ``int.bit_length`` for non-negative ints.
    """
    if z < 0:
        raise ValueError(f"identifiers are natural numbers, got {z}")
    return z.bit_length()


def bit(z: int, k: int) -> int:
    """The ``k``-th binary digit ``Z_k`` of ``Z`` (LSB is ``k = 0``)."""
    if z < 0 or k < 0:
        raise ValueError("bit() takes non-negative arguments")
    return (z >> k) & 1


def reduce_identifier(x: int, y: int) -> int:
    """The paper's ``f(X, Y) = 2i + X_i`` of Equation (6).

    ``i`` is the least index at which the binary expansions of ``x``
    and ``y`` differ, capped by the shorter binary length.  Note ``f``
    is well defined for all naturals, including ``x = y`` (then ``i``
    is the common length).

    >>> reduce_identifier(0b1011, 0b1001)  # first differing bit: k=1, x_1=1
    3
    """
    if x < 0 or y < 0:
        raise ValueError("identifiers are natural numbers")
    cap = min(bit_length(x), bit_length(y))
    diff = x ^ y
    if diff == 0:
        i = cap
    else:
        # Least set bit of the XOR = first differing bit index.
        lowest = (diff & -diff).bit_length() - 1
        i = min(cap, lowest)
    return 2 * i + bit(x, i)


def bound_function(x: float) -> float:
    """``F(x) = 2⌈log₂(x+1)⌉ + 1`` of Lemma 4.1.

    ``F`` dominates one application of ``f``: any value produced by
    ``f(X, ·)`` is at most ``2|X| + 1 = F(X)``.
    """
    if x < 0:
        raise ValueError("bound_function domain is [0, +inf)")
    return 2 * math.ceil(_log2(x + 1)) + 1


def _log2(x) -> float:
    """``log₂`` that stays accurate for arbitrarily large integers."""
    if isinstance(x, int) and x > 0:
        # math.log2 handles big ints, but go through int.bit_length for
        # astronomically large values to avoid overflow in conversion.
        if x.bit_length() > 1024:
            return x.bit_length() - 1 + math.log2(x >> (x.bit_length() - 53)) - 52
    return math.log2(x)


def iterate_bound(x: int, iterations: int) -> List[float]:
    """The orbit ``x, F(x), F²(x), …`` for ``iterations`` steps."""
    orbit: List[float] = [x]
    value: float = x
    for _ in range(iterations):
        value = bound_function(value)
        orbit.append(value)
    return orbit


def iterations_until_below(x: int, threshold: int = REDUCTION_PLATEAU) -> int:
    """Smallest ``t`` with ``F^t(x) < threshold`` (Lemma 4.1's ``t``).

    Raises :class:`ValueError` if the orbit never drops below the
    threshold (possible only for ``threshold ≤ 9``, since ``F`` has
    fixed points 7 and 9: ``F(7) = 7`` and ``F(9) = 9``).
    """
    value: float = x
    count = 0
    seen_fixed = False
    while value >= threshold:
        new = bound_function(value)
        if new == value:
            if seen_fixed:
                raise ValueError(
                    f"F fixed point {value} never drops below {threshold}"
                )
            seen_fixed = True
        value = new
        count += 1
    return count


def log_star(x) -> int:
    """``log* x``: iterations of ``log₂`` until the value is ``≤ 1``.

    Defined for ``x > 0`` (footnote 1); ``log*`` of anything ``≤ 1``
    is 0, ``log* 2 = 1``, ``log* 4 = 2``, ``log* 16 = 3``,
    ``log* 65536 = 4``, ``log* 2^65536 = 5``.
    """
    if x <= 0:
        raise ValueError(f"log* requires x > 0, got {x}")
    count = 0
    value = x
    while value > 1:
        value = _log2(value)
        count += 1
    return count
