"""Color palettes used by the paper's algorithms.

Algorithm 1 outputs *pairs* from ``{(a, b) ∈ N×N : a + b ≤ 2}`` — six
colors; Algorithm 4 generalizes to ``{(a, b) : a + b ≤ Δ}`` with
``(Δ+1)(Δ+2)/2 = O(Δ²)`` colors.  Algorithms 2 and 3 output scalars in
``{0, …, 4}``.

:class:`TriangularPalette` models the pair palettes, with a canonical
bijection onto ``{0, …, size−1}`` so pair-valued outputs can be
compared against scalar palettes in experiments (ablation A3) and
rendered compactly.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import PaletteViolation
from repro.types import ColorPair

__all__ = ["TriangularPalette", "SCALAR_FIVE", "scalar_palette"]


def scalar_palette(k: int) -> range:
    """The scalar palette ``{0, …, k−1}`` as a range."""
    return range(k)


#: The 5-color palette of Algorithms 2 and 3 (Theorem 3.11 / 4.4).
SCALAR_FIVE = scalar_palette(5)


class TriangularPalette:
    """The pair palette ``{(a, b) ∈ N×N : a + b ≤ bound}``.

    ``bound = 2`` gives Algorithm 1's six colors; ``bound = Δ`` gives
    Algorithm 4's ``O(Δ²)`` palette.
    """

    def __init__(self, bound: int):
        if bound < 0:
            raise ValueError(f"palette bound must be >= 0, got {bound}")
        self.bound = bound
        # Canonical order: sorted by (a+b, a) — diagonal by diagonal.
        self._pairs: List[ColorPair] = sorted(
            ((a, b) for a in range(bound + 1) for b in range(bound + 1 - a)),
            key=lambda ab: (ab[0] + ab[1], ab[0]),
        )
        self._index = {pair: i for i, pair in enumerate(self._pairs)}

    @property
    def size(self) -> int:
        """``(bound+1)(bound+2)/2`` colors."""
        return len(self._pairs)

    def __contains__(self, color: object) -> bool:
        return color in self._index

    def __iter__(self) -> Iterator[ColorPair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return self.size

    def encode(self, pair: ColorPair) -> int:
        """Canonical index of a pair color in ``{0, …, size−1}``."""
        try:
            return self._index[tuple(pair)]
        except KeyError:
            raise PaletteViolation(
                f"pair {pair!r} outside palette a+b <= {self.bound}"
            ) from None

    def decode(self, index: int) -> ColorPair:
        """Inverse of :meth:`encode`."""
        if not (0 <= index < self.size):
            raise PaletteViolation(
                f"index {index} outside palette of size {self.size}"
            )
        return self._pairs[index]

    def __repr__(self) -> str:
        return f"TriangularPalette(bound={self.bound}, size={self.size})"
