"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so
downstream users can catch one base class.  Engine-level errors are
distinguished from specification violations detected by the analysis
layer (the latter indicate a broken *algorithm*, not a broken engine).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "ScheduleError",
    "ExecutionError",
    "TimeExhaustedError",
    "RegisterError",
    "SpecViolation",
    "ColoringViolation",
    "PaletteViolation",
    "WaitFreedomViolation",
    "TaskSpecError",
    "CampaignError",
    "PoolError",
    "PoolTaskError",
    "ServiceError",
    "RequestValidationError",
    "BackpressureError",
    "ServiceTimeout",
    "CircuitOpenError",
    "ChaosError",
    "ChaosInjectedError",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class TopologyError(ReproError):
    """Raised for malformed topologies (e.g. a cycle of length < 3)."""


class ScheduleError(ReproError):
    """Raised for malformed schedules (unknown process ids, empty steps)."""


class ExecutionError(ReproError):
    """Raised when the execution engine is driven incorrectly."""


class TimeExhaustedError(ExecutionError):
    """A run hit its ``max_time`` cap with processes still working.

    Carries the diagnostics a non-terminating run needs to be debugged
    instead of a bare message: per-process activation counts, the last
    simulated time index, the unreturned processes, and the partial
    :class:`~repro.model.execution.ExecutionResult` itself.

    Attributes
    ----------
    activations:
        ``{p: count}`` of working activations at cutoff.
    final_time:
        The last time index the engine executed.
    pending:
        Sorted list of processes that never returned.
    partial_result:
        The full partial :class:`ExecutionResult` (``time_exhausted``
        set), for replaying or white-box inspection.
    trace_id:
        The trace id active when the run was cut off, when tracing was
        on — joinable against the flight recorder (empty otherwise).
    """

    def __init__(self, message: str, *, activations=None, final_time=0,
                 pending=None, partial_result=None, trace_id=""):
        super().__init__(message)
        self.activations = dict(activations or {})
        self.final_time = final_time
        self.pending = sorted(pending or [])
        self.partial_result = partial_result
        self.trace_id = trace_id


class RegisterError(ReproError):
    """Raised on illegal register access (e.g. writing another's register)."""


class SpecViolation(ReproError):
    """Base class for violations of a task specification by an algorithm."""


class ColoringViolation(SpecViolation):
    """Two adjacent terminated processes output the same color."""


class PaletteViolation(SpecViolation):
    """A terminated process output a color outside the allowed palette."""


class WaitFreedomViolation(SpecViolation):
    """A process exceeded the promised activation bound without returning."""


class TaskSpecError(ReproError):
    """Raised when a task specification itself is queried inconsistently."""


class CampaignError(ReproError):
    """Raised for malformed campaign specs, journals or backend misuse."""


class PoolError(ReproError):
    """Raised on misuse of the shared worker pool (e.g. submitting to a
    pool that has been shut down)."""


class PoolTaskError(PoolError):
    """A pool task exhausted its retry budget without producing a result.

    Carries the supervision metadata of the failed item so callers can
    journal it exactly as the campaign backends always have:

    Attributes
    ----------
    attempts:
        Completed attempts (first try plus retries).
    timeouts:
        Attempts cut short by the per-task deadline (worker killed).
    crashes:
        Attempts ended by a dying worker (segfault, ``os._exit``, OOM).
    elapsed:
        Wall-clock seconds from first assignment to terminal failure.
    worker:
        Id of the worker that held the task last, when known.
    trace_id:
        The trace id the task was submitted under, when tracing was on
        — joinable against the flight recorder (empty otherwise).
    """

    def __init__(self, message: str, *, attempts: int = 1, timeouts: int = 0,
                 crashes: int = 0, elapsed: float = 0.0, worker=None,
                 trace_id: str = ""):
        super().__init__(message)
        self.attempts = attempts
        self.timeouts = timeouts
        self.crashes = crashes
        self.elapsed = elapsed
        self.worker = worker
        self.trace_id = trace_id


class ServiceError(ReproError):
    """Base class of errors raised by the simulation service layer."""


class RequestValidationError(ServiceError):
    """A service request failed schema validation (HTTP 400).

    ``field`` names the offending request field when one can be
    singled out, so clients can surface precise errors.
    """

    def __init__(self, message: str, *, field: str = ""):
        super().__init__(message)
        self.field = field


class BackpressureError(ServiceError):
    """The admission queue is full and the request was shed (HTTP 429).

    ``retry_after`` is the server's hint, in seconds, for when capacity
    is expected back — clients should back off at least that long.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceTimeout(ServiceError):
    """A client-side request exceeded its socket or deadline budget.

    Raised instead of silently re-sending: after a timeout the server
    may still be processing the original request, so a transparent
    retry would duplicate work and hide the latency.  ``elapsed`` is
    the client-observed wall time when the budget ran out.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed


class CircuitOpenError(ServiceError):
    """The client circuit breaker is open: the request was failed fast
    without touching the network.  ``retry_after`` is the remaining
    cool-down, in seconds, before the next half-open probe."""

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class ChaosError(ReproError):
    """Base class of fault-injection errors (malformed plans, misuse)."""


class ChaosInjectedError(ChaosError):
    """An error deliberately raised by a fault plan at a chaos site.

    Carries the site and probe index so supervision layers and tests
    can tell an injected fault from a genuine one."""

    def __init__(self, message: str, *, site: str = "", index: int = -1):
        super().__init__(message)
        self.site = site
        self.index = index
