"""Round-robin schedulers: maximal sequentialization.

One process at a time (or ``k`` at a time) in rotating order — the
opposite extreme from the synchronous schedule, and the regime in which
asynchronous interleaving effects (a process seeing many updates of one
neighbor between two of its own steps) are most pronounced.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ScheduleError
from repro.model.schedule import ActivationSet, FastStep, Schedule

__all__ = ["RoundRobinScheduler", "BlockRoundRobinScheduler"]


class RoundRobinScheduler(Schedule):
    """``σ(t) = {(t − 1 + offset) mod n}`` — one process per step."""

    reusable = True  # (offset, horizon) immutable; state per call

    def __init__(self, offset: int = 0, horizon: int = 10**9):
        self.offset = offset
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        for t in range(self.horizon):
            yield frozenset({(t + self.offset) % n})

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        singletons = [(p,) for p in range(n)]
        for t in range(self.horizon):
            yield singletons[(t + self.offset) % n]

    @classmethod
    def steps_batch(cls, schedules, n: int, active):
        """Per-replica rotation counters over one shared singleton table."""
        if cls is not RoundRobinScheduler:
            yield from Schedule.steps_batch(schedules, n, active)
            return
        singletons = [(p,) for p in range(n)]
        B = len(schedules)
        offsets = [s.offset for s in schedules]
        horizons = [s.horizon for s in schedules]
        emitted = [0] * B
        while True:
            rows = [None] * B
            for i in range(B):
                if active[i] and emitted[i] < horizons[i]:
                    rows[i] = singletons[(emitted[i] + offsets[i]) % n]
                    emitted[i] += 1
            yield rows

    def __repr__(self) -> str:
        return f"RoundRobinScheduler(offset={self.offset})"


class BlockRoundRobinScheduler(Schedule):
    """Rotating contiguous blocks of ``k`` processes per step.

    ``k = 1`` degenerates to :class:`RoundRobinScheduler`; ``k = n``
    degenerates to the synchronous schedule.
    """

    reusable = True  # (k, offset, horizon) immutable; state per call

    def __init__(self, k: int, offset: int = 0, horizon: int = 10**9):
        if k < 1:
            raise ScheduleError(f"block size must be >= 1, got {k}")
        self.k = k
        self.offset = offset
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        k = min(self.k, n)
        for t in range(self.horizon):
            start = (t * k + self.offset) % n
            yield frozenset((start + i) % n for i in range(k))

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        k = min(self.k, n)
        for t in range(self.horizon):
            start = (t * k + self.offset) % n
            yield tuple((start + i) % n for i in range(k))

    def __repr__(self) -> str:
        return f"BlockRoundRobinScheduler(k={self.k}, offset={self.offset})"
