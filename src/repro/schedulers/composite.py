"""Combinators over schedules.

Build complex adversaries from simple ones: concatenate phases, give
each process exclusive bursts, or interleave two schedules.  Crash
censoring lives in :mod:`repro.model.faults` (it wraps any of these).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import ScheduleError
from repro.model.schedule import ActivationSet, FastStep, Schedule, validate_step

__all__ = ["ConcatScheduler", "BurstScheduler", "InterleaveScheduler"]


class ConcatScheduler(Schedule):
    """Run each ``(schedule, steps)`` phase in sequence.

    The last phase may have ``steps=None`` meaning "until that schedule
    ends" (use an infinite schedule there to keep the execution going).
    """

    def __init__(self, phases: Sequence[Tuple[Schedule, int]]):
        if not phases:
            raise ScheduleError("ConcatScheduler needs at least one phase")
        for schedule, steps in phases[:-1]:
            if steps is None or steps < 0:
                raise ScheduleError(
                    "only the last phase may be unbounded (steps=None)"
                )
        self.phases = list(phases)

    def steps(self, n: int) -> Iterator[ActivationSet]:
        for schedule, budget in self.phases:
            count = 0
            for step in schedule.steps(n):
                if budget is not None and count >= budget:
                    break
                yield validate_step(step, n)
                count += 1

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        # Constituent schedules validate their own fast steps (the
        # default adapter goes through validate_step), so no re-check.
        for schedule, budget in self.phases:
            count = 0
            for step in schedule.steps_fast(n):
                if budget is not None and count >= budget:
                    break
                yield step
                count += 1

    def __repr__(self) -> str:
        return f"ConcatScheduler(phases={len(self.phases)})"


class BurstScheduler(Schedule):
    """Each process in turn takes a burst of ``burst`` consecutive solo
    steps, cycling forever.

    This is the obstruction-freedom probe of the paper's §1.3: each
    process repeatedly gets to "take multiple consecutive steps by
    itself".
    """

    def __init__(self, burst: int = 4, horizon: int = 10**9):
        if burst < 1:
            raise ScheduleError("burst must be >= 1")
        self.burst = burst
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        emitted = 0
        while emitted < self.horizon:
            for p in range(n):
                me = frozenset({p})
                for _ in range(self.burst):
                    yield me
                    emitted += 1
                    if emitted >= self.horizon:
                        return

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        emitted = 0
        while emitted < self.horizon:
            for p in range(n):
                me = (p,)
                for _ in range(self.burst):
                    yield me
                    emitted += 1
                    if emitted >= self.horizon:
                        return

    def __repr__(self) -> str:
        return f"BurstScheduler(burst={self.burst})"


class InterleaveScheduler(Schedule):
    """Alternate steps of two schedules: a₁, b₁, a₂, b₂, …

    Ends when either constituent ends.
    """

    def __init__(self, first: Schedule, second: Schedule):
        self.first = first
        self.second = second

    def steps(self, n: int) -> Iterator[ActivationSet]:
        a = self.first.steps(n)
        b = self.second.steps(n)
        while True:
            try:
                yield validate_step(next(a), n)
                yield validate_step(next(b), n)
            except StopIteration:
                return

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        a = self.first.steps_fast(n)
        b = self.second.steps_fast(n)
        while True:
            try:
                yield next(a)
                yield next(b)
            except StopIteration:
                return

    def __repr__(self) -> str:
        return f"InterleaveScheduler({self.first!r}, {self.second!r})"
