"""Randomized asynchronous schedulers.

Random schedules are the workhorse of the experimental harness: the
true worst case is a supremum over all schedules, which we approximate
by (large ensembles of) random schedules plus the structured
adversaries of :mod:`repro.schedulers.adversarial`.  All randomness is
seeded — a scheduler object with a given seed is replayable, and
:class:`~repro.model.schedule.RecordedSchedule` can pin down any
interesting run exactly.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.errors import ScheduleError
from repro.model.schedule import ActivationSet, FastStep, Schedule

__all__ = [
    "BernoulliScheduler",
    "UniformSubsetScheduler",
    "GeometricRateScheduler",
]


class BernoulliScheduler(Schedule):
    """Each process is independently activated with probability ``p``.

    ``p = 1`` is the synchronous schedule; small ``p`` produces sparse,
    highly-interleaved executions.  Steps that come out empty are
    re-drawn (they would only waste simulated time).
    """

    reusable = True  # (p, seed, horizon) are immutable; state per call

    def __init__(self, p: float = 0.5, seed: int = 0, horizon: int = 10**9):
        if not (0 < p <= 1):
            raise ScheduleError(f"activation probability must be in (0, 1], got {p}")
        self.p = p
        self.seed = seed
        self.horizon = horizon

    def _draw(self, n: int, rng: random.Random) -> List[int]:
        """One non-empty Bernoulli draw; redraws consume ``n`` further
        RNG values each, exactly like a fresh draw — the replayability
        contract (a given seed always produces the same step stream,
        redraws included)."""
        while True:
            step = [i for i in range(n) if rng.random() < self.p]
            if step:
                return step

    def steps(self, n: int) -> Iterator[ActivationSet]:
        rng = random.Random(self.seed)
        for _ in range(self.horizon):
            yield frozenset(self._draw(n, rng))

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        rng = random.Random(self.seed)
        for _ in range(self.horizon):
            yield self._draw(n, rng)

    def steps_wide(self, n: int) -> Iterator[FastStep]:
        """Vectorized Bernoulli masks off a single MT19937 stream.

        One ``n``-vector of doubles per draw, compared against ``p``;
        empty masks are re-drawn (``n`` further doubles each) exactly
        like :meth:`_draw` — same stream, same consumption, so the
        masks match ``steps_fast`` step by step.
        """
        if type(self) is not BernoulliScheduler:
            yield from Schedule.steps_wide(self, n)
            return
        from repro.model.batch import MTBatch, load_numpy

        np = load_numpy()
        if np is None:
            yield from self.steps_fast(n)
            return
        mt = MTBatch([self.seed], np)
        row = [0]
        for _ in range(self.horizon):
            mask = mt.take(row, n)[0] < self.p
            while not mask.any():
                mask = mt.take(row, n)[0] < self.p
            yield mask

    @classmethod
    def steps_batch(cls, schedules, n: int, active):
        """Vectorized lockstep draws over a bank of MT19937 streams.

        Draws one ``(live, n)`` matrix of doubles per lockstep and
        compares against each stream's ``p``; rows that come out empty
        are re-drawn (``n`` further doubles each), replicating
        :meth:`_draw`'s consumption exactly — stream ``i`` sees the
        same doubles, in the same order, as ``random.Random(seed_i)``
        would, so the yielded masks match ``steps_fast`` step by step.
        Retired replicas stop consuming entirely.
        """
        from repro.model.batch import MTBatch, load_numpy

        np = load_numpy()
        if cls is not BernoulliScheduler or np is None:
            # Subclasses may override _draw/steps; and without numpy
            # the scalar streams are the ground truth anyway.
            yield from Schedule.steps_batch(schedules, n, active)
            return
        B = len(schedules)
        mt = MTBatch([s.seed for s in schedules], np)
        ps = np.array([s.p for s in schedules], dtype=np.float64)
        horizons = [s.horizon for s in schedules]
        emitted = [0] * B
        retired = [False] * B
        while True:
            rows = [None] * B
            live = []
            for i in range(B):
                if retired[i]:
                    continue
                if not active[i] or emitted[i] >= horizons[i]:
                    retired[i] = True
                    mt.retire(i)
                    continue
                live.append(i)
            if live:
                masks = mt.take(live, n) < ps[live][:, None]
                pending = np.nonzero(~masks.any(axis=1))[0]
                while len(pending):
                    redraw = [live[k] for k in pending]
                    sub = mt.take(redraw, n) < ps[redraw][:, None]
                    masks[pending] = sub
                    pending = pending[~sub.any(axis=1)]
                for k, i in enumerate(live):
                    rows[i] = masks[k]
                    emitted[i] += 1
            yield rows

    def __repr__(self) -> str:
        return f"BernoulliScheduler(p={self.p}, seed={self.seed})"


class UniformSubsetScheduler(Schedule):
    """Each step activates a uniformly random non-empty subset.

    Unlike :class:`BernoulliScheduler` the subset *size* is first drawn
    uniformly from ``1..n``, producing a fatter tail of near-solo and
    near-synchronous steps.
    """

    reusable = True  # (seed, horizon) are immutable; state per call

    def __init__(self, seed: int = 0, horizon: int = 10**9):
        self.seed = seed
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        rng = random.Random(self.seed)
        ids = list(range(n))
        for _ in range(self.horizon):
            size = rng.randint(1, n)
            yield frozenset(rng.sample(ids, size))

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        rng = random.Random(self.seed)
        ids = list(range(n))
        for _ in range(self.horizon):
            size = rng.randint(1, n)
            yield rng.sample(ids, size)

    def steps_wide(self, n: int) -> Iterator[FastStep]:
        """Scalar size/sample draws scattered into one reused mask.

        The draws themselves stay on ``random.Random`` (bit-identical
        streams by construction); only the activation-set *form* is
        vectorized — the sample is scattered into a reused boolean
        buffer, which the wide engine consumes before the generator
        resumes.
        """
        if type(self) is not UniformSubsetScheduler:
            yield from Schedule.steps_wide(self, n)
            return
        from repro.model.batch import load_numpy

        np = load_numpy()
        if np is None:
            yield from self.steps_fast(n)
            return
        rng = random.Random(self.seed)
        ids = list(range(n))
        mask = np.zeros(n, dtype=bool)
        for _ in range(self.horizon):
            size = rng.randint(1, n)
            sample = np.asarray(rng.sample(ids, size), dtype=np.int64)
            mask[:] = False
            mask[sample] = True
            yield mask

    def __repr__(self) -> str:
        return f"UniformSubsetScheduler(seed={self.seed})"


class GeometricRateScheduler(Schedule):
    """Heterogeneous process speeds via per-process activation rates.

    Process ``i`` is activated at each step with probability
    ``rates[i]``; with ``rates`` spanning orders of magnitude this
    models a mix of fast and nearly-crashed processes — the "moderately
    slow neighbor" regime central to the Theorem 4.4 analysis.
    """

    reusable = True  # params immutable; iteration state per call

    def __init__(
        self,
        rates: Optional[Sequence[float]] = None,
        *,
        slow_fraction: float = 0.25,
        slow_rate: float = 0.02,
        fast_rate: float = 0.9,
        seed: int = 0,
        horizon: int = 10**9,
    ):
        if rates is not None:
            for r in rates:
                if not (0 < r <= 1):
                    raise ScheduleError(f"rates must lie in (0, 1], got {r}")
        if not (0 <= slow_fraction <= 1):
            raise ScheduleError("slow_fraction must lie in [0, 1]")
        self.rates = list(rates) if rates is not None else None
        self.slow_fraction = slow_fraction
        self.slow_rate = slow_rate
        self.fast_rate = fast_rate
        self.seed = seed
        self.horizon = horizon

    def _resolve_rates(self, n: int, rng: random.Random) -> Sequence[float]:
        if self.rates is not None:
            if len(self.rates) != n:
                raise ScheduleError(
                    f"got {len(self.rates)} rates for {n} processes"
                )
            return self.rates
        n_slow = int(round(self.slow_fraction * n))
        slow = set(rng.sample(range(n), n_slow))
        return [self.slow_rate if i in slow else self.fast_rate for i in range(n)]

    def steps(self, n: int) -> Iterator[ActivationSet]:
        rng = random.Random(self.seed)
        rates = self._resolve_rates(n, rng)
        for _ in range(self.horizon):
            step = frozenset(i for i in range(n) if rng.random() < rates[i])
            if step:
                yield step
            else:
                # Avoid burning simulated time on global idleness.
                yield frozenset({rng.randrange(n)})

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        rng = random.Random(self.seed)
        rates = self._resolve_rates(n, rng)
        for _ in range(self.horizon):
            step = [i for i in range(n) if rng.random() < rates[i]]
            yield step if step else [rng.randrange(n)]

    def __repr__(self) -> str:
        return (
            f"GeometricRateScheduler(slow_fraction={self.slow_fraction}, "
            f"seed={self.seed})"
        )
