"""The synchronous (lock-step, failure-free) scheduler.

Activates every process at every time step: the LOCAL-model schedule,
and the schedule under which the paper's round-complexity lower bound
(Property 2.2, via Linial) already bites.  Wait-free algorithms must of
course also work here, and this is the natural schedule for measuring
best-structured-case activation counts.
"""

from __future__ import annotations

from typing import Iterator

from repro.model.schedule import ActivationSet, FastStep, Schedule

__all__ = ["SynchronousScheduler"]


class SynchronousScheduler(Schedule):
    """``σ(t) = {0, …, n−1}`` for every ``t`` up to ``horizon``.

    ``horizon`` only bounds the generator; for a terminating algorithm
    the engine stops as soon as everyone returns.
    """

    def __init__(self, horizon: int = 10**9):
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        everyone = frozenset(range(n))
        for _ in range(self.horizon):
            yield everyone

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        everyone = range(n)
        for _ in range(self.horizon):
            yield everyone

    def __repr__(self) -> str:
        return "SynchronousScheduler()"
