"""The synchronous (lock-step, failure-free) scheduler.

Activates every process at every time step: the LOCAL-model schedule,
and the schedule under which the paper's round-complexity lower bound
(Property 2.2, via Linial) already bites.  Wait-free algorithms must of
course also work here, and this is the natural schedule for measuring
best-structured-case activation counts.
"""

from __future__ import annotations

from typing import Iterator

from repro.model.schedule import ActivationSet, FastStep, Schedule

__all__ = ["SynchronousScheduler"]


class SynchronousScheduler(Schedule):
    """``σ(t) = {0, …, n−1}`` for every ``t`` up to ``horizon``.

    ``horizon`` only bounds the generator; for a terminating algorithm
    the engine stops as soon as everyone returns.
    """

    reusable = True  # horizon is immutable; iteration state per call

    def __init__(self, horizon: int = 10**9):
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        everyone = frozenset(range(n))
        for _ in range(self.horizon):
            yield everyone

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        everyone = range(n)
        for _ in range(self.horizon):
            yield everyone

    def steps_wide(self, n: int) -> Iterator[FastStep]:
        """One reused full-``True`` mask per step (wide engine)."""
        if type(self) is not SynchronousScheduler:
            yield from Schedule.steps_wide(self, n)
            return
        from repro.model.batch import load_numpy

        np = load_numpy()
        if np is None:
            yield from self.steps_fast(n)
            return
        everyone = np.ones(n, dtype=bool)
        for _ in range(self.horizon):
            yield everyone

    @classmethod
    def steps_batch(cls, schedules, n: int, active):
        """Everyone, every lockstep, per-replica horizons respected."""
        if cls is not SynchronousScheduler:
            yield from Schedule.steps_batch(schedules, n, active)
            return
        everyone = range(n)
        B = len(schedules)
        horizons = [s.horizon for s in schedules]
        emitted = [0] * B
        while True:
            rows = [None] * B
            for i in range(B):
                if active[i] and emitted[i] < horizons[i]:
                    rows[i] = everyone
                    emitted[i] += 1
            yield rows

    def __repr__(self) -> str:
        return "SynchronousScheduler()"
