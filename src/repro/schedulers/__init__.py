"""The scheduler zoo: concrete adversaries for the asynchronous model.

* :mod:`repro.schedulers.synchronous` — lock-step (LOCAL-model) runs;
* :mod:`repro.schedulers.round_robin` — maximal sequentialization;
* :mod:`repro.schedulers.random_async` — seeded random ensembles;
* :mod:`repro.schedulers.adversarial` — proof-extracted adversaries
  (solo runs, late wake-ups, starved chains, staggered wake-ups);
* :mod:`repro.schedulers.composite` — phase/burst/interleave
  combinators.

Crash injection composes with all of these via
:class:`repro.model.faults.CrashPlan`.
"""

from repro.schedulers.adversarial import (
    AlternatingScheduler,
    LateWakeupScheduler,
    SlowChainScheduler,
    SoloScheduler,
    StaggeredScheduler,
)
from repro.schedulers.composite import (
    BurstScheduler,
    ConcatScheduler,
    InterleaveScheduler,
)
from repro.schedulers.random_async import (
    BernoulliScheduler,
    GeometricRateScheduler,
    UniformSubsetScheduler,
)
from repro.schedulers.round_robin import BlockRoundRobinScheduler, RoundRobinScheduler
from repro.schedulers.synchronous import SynchronousScheduler

__all__ = [
    "AlternatingScheduler",
    "BernoulliScheduler",
    "BlockRoundRobinScheduler",
    "BurstScheduler",
    "ConcatScheduler",
    "GeometricRateScheduler",
    "InterleaveScheduler",
    "LateWakeupScheduler",
    "RoundRobinScheduler",
    "SlowChainScheduler",
    "SoloScheduler",
    "StaggeredScheduler",
    "SynchronousScheduler",
    "UniformSubsetScheduler",
]
