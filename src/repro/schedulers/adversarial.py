"""Structured adversaries extracted from the paper's proofs.

The running time of a wait-free algorithm is a supremum over all
schedules (§2.2); these schedulers realize the scheduling patterns the
proofs identify as hard:

* :class:`SoloScheduler` — one process runs alone (obstruction-style
  progress; the regime of the ``b_p`` subcomponent, §1.3);
* :class:`LateWakeupScheduler` — a subset sleeps for a long prefix
  (their registers read ``⊥``; Lemma 3.2's "not yet activated" case);
* :class:`SlowChainScheduler` — a set of processes is activated only
  every ``k``-th step, starving a monotone identifier chain (the
  blocked-chain scenario of Lemmas 4.7–4.10);
* :class:`StaggeredScheduler` — process ``i`` wakes at time
  ``1 + i·stagger``, maximizing information-propagation skew;
* :class:`AlternatingScheduler` — bipartition alternates steps,
  producing maximal neighbor-view staleness on even cycles.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set

from repro.errors import ScheduleError
from repro.model.schedule import ActivationSet, FastStep, Schedule

__all__ = [
    "SoloScheduler",
    "LateWakeupScheduler",
    "SlowChainScheduler",
    "StaggeredScheduler",
    "AlternatingScheduler",
]


class SoloScheduler(Schedule):
    """Process ``pid`` takes ``solo_steps`` steps alone, then everyone runs.

    With ``solo_steps`` large this is the classic wait-freedom probe: a
    process must terminate without any help (its neighbors' registers
    stay ``⊥`` or frozen for the whole prefix).
    """

    def __init__(self, pid: int, solo_steps: int = 64, horizon: int = 10**9):
        if solo_steps < 0:
            raise ScheduleError("solo_steps must be >= 0")
        self.pid = pid
        self.solo_steps = solo_steps
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        if not (0 <= self.pid < n):
            raise ScheduleError(f"solo process {self.pid} out of range (n={n})")
        me = frozenset({self.pid})
        for _ in range(self.solo_steps):
            yield me
        everyone = frozenset(range(n))
        for _ in range(self.horizon):
            yield everyone

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        if not (0 <= self.pid < n):
            raise ScheduleError(f"solo process {self.pid} out of range (n={n})")
        me = (self.pid,)
        for _ in range(self.solo_steps):
            yield me
        everyone = range(n)
        for _ in range(self.horizon):
            yield everyone

    def __repr__(self) -> str:
        return f"SoloScheduler(pid={self.pid}, solo_steps={self.solo_steps})"


class LateWakeupScheduler(Schedule):
    """``sleepers`` take no step before time ``wake_time``; others are
    activated every step throughout."""

    def __init__(self, sleepers: Iterable[int], wake_time: int, horizon: int = 10**9):
        if wake_time < 1:
            raise ScheduleError("wake_time must be >= 1")
        self.sleepers: Set[int] = set(sleepers)
        self.wake_time = wake_time
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        awake_only = frozenset(p for p in range(n) if p not in self.sleepers)
        everyone = frozenset(range(n))
        for t in range(1, self.horizon + 1):
            yield everyone if t >= self.wake_time else awake_only

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        awake_only = tuple(p for p in range(n) if p not in self.sleepers)
        everyone = range(n)
        for t in range(1, self.horizon + 1):
            yield everyone if t >= self.wake_time else awake_only

    def __repr__(self) -> str:
        return (
            f"LateWakeupScheduler(sleepers={sorted(self.sleepers)}, "
            f"wake_time={self.wake_time})"
        )


class SlowChainScheduler(Schedule):
    """``slow`` processes step only every ``slowdown``-th time step.

    Against Algorithm 3 this starves the green-light handshake along a
    chain: fast neighbors of slow processes get blocked (``r_p`` stuck
    at the slow neighbor's published value), which is precisely the
    regime Lemmas 4.7–4.10 show still terminates in O(log* n) fast
    steps.
    """

    def __init__(self, slow: Iterable[int], slowdown: int = 10, horizon: int = 10**9):
        if slowdown < 1:
            raise ScheduleError("slowdown must be >= 1")
        self.slow: Set[int] = set(slow)
        self.slowdown = slowdown
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        fast = frozenset(p for p in range(n) if p not in self.slow)
        everyone = frozenset(range(n))
        for t in range(1, self.horizon + 1):
            yield everyone if t % self.slowdown == 0 else fast

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        fast = tuple(p for p in range(n) if p not in self.slow)
        everyone = range(n)
        for t in range(1, self.horizon + 1):
            yield everyone if t % self.slowdown == 0 else fast

    def __repr__(self) -> str:
        return (
            f"SlowChainScheduler(slow={sorted(self.slow)}, "
            f"slowdown={self.slowdown})"
        )


class StaggeredScheduler(Schedule):
    """Process ``i`` first wakes at time ``1 + i·stagger``, then runs
    every step.

    With ``stagger ≥ 1`` this produces the maximal wake-up skew
    realizable with ``n`` processes, exercising all ``⊥``-view code
    paths in id order.
    """

    def __init__(self, stagger: int = 1, horizon: int = 10**9):
        if stagger < 0:
            raise ScheduleError("stagger must be >= 0")
        self.stagger = stagger
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        for t in range(1, self.horizon + 1):
            awake = frozenset(
                i for i in range(n) if t >= 1 + i * self.stagger
            )
            yield awake if awake else frozenset({0})

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        # Process i is awake iff i*stagger <= t-1: the awake set is
        # always a prefix of 0..n-1, so a range suffices.
        for t in range(1, self.horizon + 1):
            if self.stagger == 0:
                yield range(n)
            else:
                yield range(min(n, (t - 1) // self.stagger + 1))

    def __repr__(self) -> str:
        return f"StaggeredScheduler(stagger={self.stagger})"


class AlternatingScheduler(Schedule):
    """Even-id processes on odd times, odd-id processes on even times.

    On an even cycle this is a proper 2-coloring of the schedule: every
    activated process reads only registers last written in the previous
    step, the maximal-staleness regime.
    """

    def __init__(self, horizon: int = 10**9):
        self.horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        evens = frozenset(i for i in range(n) if i % 2 == 0)
        odds = frozenset(i for i in range(n) if i % 2 == 1)
        if not odds:  # n == 1 degenerate case
            odds = evens
        for t in range(1, self.horizon + 1):
            yield evens if t % 2 == 1 else odds

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        evens = range(0, n, 2)
        odds = range(1, n, 2)
        if not odds:  # n == 1 degenerate case
            odds = evens
        for t in range(1, self.horizon + 1):
            yield evens if t % 2 == 1 else odds

    def __repr__(self) -> str:
        return "AlternatingScheduler()"
