"""The synchronous failure-free LOCAL model (Peleg [29]).

The baseline model the paper contrasts with: computation proceeds in
lock-step rounds, each consisting of (1) an information exchange along
every edge and (2) a local update at every node.  No crashes, no
asynchrony — so the only resource is the number of rounds.

This substrate exists for experiment E11: measuring the classic
Cole–Vishkin ``½ log* n + O(1)`` 3-coloring of the ring (and a greedy
Linial-style color reduction for general graphs) against Algorithm 3's
asynchronous O(log* n), to report the constant-factor price of
asynchrony + crash tolerance.

Interface mirrors :class:`repro.core.algorithm.Algorithm` but
synchronously: per round every node broadcasts
:meth:`LocalAlgorithm.message` to all neighbors and applies
:meth:`LocalAlgorithm.update` to the received tuple (ordered by its
neighbor order).  A node that outputs keeps broadcasting its final
message so neighbors can still read it — the standard convention when
measuring round counts of early-stopping algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.model.topology import Topology
from repro.types import ProcessId

__all__ = ["LocalAlgorithm", "LocalResult", "run_local"]


class LocalAlgorithm(ABC):
    """A deterministic per-node protocol for the synchronous LOCAL model."""

    #: Human-readable name for reports.
    name: str = "local-algorithm"

    @abstractmethod
    def initial_state(self, x_input: Any, degree: int) -> Any:
        """State of a node with input ``x_input`` and the given degree."""

    @abstractmethod
    def message(self, state: Any) -> Any:
        """The value broadcast to all neighbors this round."""

    @abstractmethod
    def update(self, state: Any, messages: Tuple[Any, ...]) -> "LocalOutcome":
        """Consume the neighbors' messages; possibly decide an output."""


@dataclass(frozen=True)
class LocalOutcome:
    """Result of one synchronous update: new state, optional output."""

    state: Any
    output: Any = None
    decided: bool = False

    @classmethod
    def cont(cls, state: Any) -> "LocalOutcome":
        """Keep running."""
        return cls(state=state)

    @classmethod
    def decide(cls, state: Any, output: Any) -> "LocalOutcome":
        """Commit to ``output`` (the node keeps echoing its message)."""
        return cls(state=state, output=output, decided=True)


@dataclass
class LocalResult:
    """Outputs and round count of one synchronous execution."""

    outputs: Dict[ProcessId, Any]
    rounds: int
    decision_rounds: Dict[ProcessId, int] = field(default_factory=dict)

    @property
    def all_decided(self) -> bool:
        """Whether every node decided."""
        return bool(self.outputs)


def run_local(
    algorithm: LocalAlgorithm,
    topology: Topology,
    inputs: Sequence[Any],
    *,
    max_rounds: int = 10_000,
) -> LocalResult:
    """Run a LOCAL algorithm until every node decides.

    Raises :class:`ExecutionError` if ``max_rounds`` pass without
    global decision — LOCAL baselines here are all finite-round.
    """
    if len(inputs) != topology.n:
        raise ExecutionError(f"got {len(inputs)} inputs for {topology.n} nodes")

    states: Dict[ProcessId, Any] = {
        p: algorithm.initial_state(inputs[p], topology.degree(p))
        for p in topology.processes()
    }
    outputs: Dict[ProcessId, Any] = {}
    decision_rounds: Dict[ProcessId, int] = {}

    for round_index in range(1, max_rounds + 1):
        if len(outputs) == topology.n:
            return LocalResult(outputs, round_index - 1, decision_rounds)
        messages = {p: algorithm.message(states[p]) for p in topology.processes()}
        new_states: Dict[ProcessId, Any] = {}
        for p in topology.processes():
            received = tuple(messages[q] for q in topology.neighbors(p))
            if p in outputs:
                new_states[p] = states[p]
                continue
            outcome = algorithm.update(states[p], received)
            new_states[p] = outcome.state
            if outcome.decided:
                outputs[p] = outcome.output
                decision_rounds[p] = round_index
        states = new_states

    if len(outputs) == topology.n:
        return LocalResult(outputs, max_rounds, decision_rounds)
    raise ExecutionError(
        f"{algorithm.name} did not globally decide within {max_rounds} rounds"
    )
