"""The synchronous failure-free LOCAL-model substrate (baselines).

* :mod:`repro.localmodel.engine` — lock-step round engine;
* :mod:`repro.localmodel.cole_vishkin` — Cole–Vishkin ``log* + O(1)``
  3-coloring of the oriented ring [17];
* :mod:`repro.localmodel.linial` — priority-greedy (Δ+1)-coloring and
  the elementary iterated color reduction [26].
"""

from repro.localmodel.cole_vishkin import (
    ColeVishkinRing,
    cv_phase_a_rounds,
    cv_reduce,
    cv_width_schedule,
)
from repro.localmodel.engine import LocalAlgorithm, LocalOutcome, LocalResult, run_local
from repro.localmodel.linial import IteratedColorReduction, PriorityGreedyColoring

__all__ = [
    "ColeVishkinRing",
    "IteratedColorReduction",
    "LocalAlgorithm",
    "LocalOutcome",
    "LocalResult",
    "PriorityGreedyColoring",
    "cv_phase_a_rounds",
    "cv_reduce",
    "cv_width_schedule",
    "run_local",
]
