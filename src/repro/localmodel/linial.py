"""LOCAL-model coloring baselines for general graphs.

Two textbook synchronous baselines accompanying the Cole–Vishkin ring
algorithm for experiment E11 and for calibrating Algorithm 4 (App. A):

* :class:`PriorityGreedyColoring` — the sequential greedy coloring run
  distributedly by identifier priority: a node decides ``mex`` of its
  decided neighbors' colors once all higher-identifier neighbors have
  decided.  Uses at most ``Δ + 1`` colors; round complexity equals the
  longest decreasing-identifier path (Θ(n) worst case, O(log n /
  log log n) expected on random ids) — the synchronous analogue of the
  monotone-chain running time of Algorithms 1–2, making the comparison
  with the paper's chain analysis direct.

* :class:`IteratedColorReduction` — reduce an ``m``-coloring (e.g. the
  identifiers themselves) to ``Δ + 1`` colors in ``m − Δ − 1`` rounds
  by eliminating the top color class each round; all nodes share the
  public bound ``m``.  This is the elementary reduction Linial's [26]
  O(Δ²)-in-O(log* n) construction accelerates; we keep the elementary
  form (the cover-free-family machinery is out of the reproduction's
  scope) and note it in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.errors import ExecutionError
from repro.localmodel.engine import LocalAlgorithm, LocalOutcome

__all__ = ["PriorityGreedyColoring", "IteratedColorReduction"]


class _GreedyState(NamedTuple):
    x: int
    color: Optional[int]  #: None until decided


class _GreedyMessage(NamedTuple):
    x: int
    color: Optional[int]


class PriorityGreedyColoring(LocalAlgorithm):
    """Greedy (Δ+1)-coloring by identifier priority."""

    name = "priority-greedy"

    def initial_state(self, x_input: int, degree: int) -> _GreedyState:
        """Start undecided with identifier ``x_input``."""
        return _GreedyState(x=x_input, color=None)

    def message(self, state: _GreedyState) -> _GreedyMessage:
        """Broadcast identifier and decision status."""
        return _GreedyMessage(x=state.x, color=state.color)

    def update(self, state: _GreedyState, messages: Tuple) -> LocalOutcome:
        """Decide ``mex`` of neighbors once all higher ids have decided."""
        higher_undecided = any(
            m.x > state.x and m.color is None for m in messages
        )
        if higher_undecided:
            return LocalOutcome.cont(state)
        taken = {m.color for m in messages if m.color is not None}
        color = 0
        while color in taken:
            color += 1
        return LocalOutcome.decide(_GreedyState(x=state.x, color=color), color)


class _ReduceState(NamedTuple):
    color: int
    round_index: int


class IteratedColorReduction(LocalAlgorithm):
    """Reduce an ``m``-coloring to ``Δ+1`` colors, one class per round.

    In round ``t`` the nodes colored ``m − t`` (an independent set)
    simultaneously recolor to the smallest color unused by their
    neighborhood; after ``m − Δ − 1`` rounds every color is ``≤ Δ``.
    Inputs must be a proper coloring with values in ``{0, …, m−1}``.
    """

    name = "iterated-color-reduction"

    def __init__(self, m: int, max_degree: int):
        if m < max_degree + 1:
            raise ExecutionError("m must exceed the target palette Δ+1")
        self.m = m
        self.max_degree = max_degree
        self.rounds = m - max_degree - 1

    def initial_state(self, x_input: int, degree: int) -> _ReduceState:
        """Start from the given input color."""
        if not (0 <= x_input < self.m):
            raise ExecutionError(f"input color {x_input} outside 0..{self.m - 1}")
        if degree > self.max_degree:
            raise ExecutionError(
                f"node degree {degree} exceeds declared Δ={self.max_degree}"
            )
        return _ReduceState(color=x_input, round_index=0)

    def message(self, state: _ReduceState) -> int:
        """Broadcast the current color."""
        return state.color

    def update(self, state: _ReduceState, messages: Tuple[int, ...]) -> LocalOutcome:
        """Recolor if holding this round's eliminated class."""
        t = state.round_index
        eliminated = self.m - 1 - t
        color = state.color
        if color == eliminated:
            taken = set(messages)
            color = 0
            while color in taken:
                color += 1
        new_state = _ReduceState(color=color, round_index=t + 1)
        if t + 1 >= self.rounds:
            return LocalOutcome.decide(new_state, color)
        return LocalOutcome.cont(new_state)
