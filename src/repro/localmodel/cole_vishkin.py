"""Cole–Vishkin 3-coloring of the ring in the synchronous LOCAL model.

The classic deterministic coin-tossing algorithm [17] the paper's
identifier-reduction component is adapted from, in its textbook
synchronous form — the baseline for experiment E11:

* **Phase A** (``log* + O(1)`` rounds): every node repeatedly replaces
  its color by ``2k + bit_k(c)`` where ``k`` is the first bit position
  at which its color differs from its *predecessor's* color, both
  viewed as bit-strings of a common, publicly known width.  Each round
  shrinks the color width ``w`` to ``bitlen(2w − 1)``, reaching the
  fixed width 3 (colors ``≤ 5``) after ``log*``-many rounds.
* **Phase B** (3 rounds): color classes 5, 4, 3 are eliminated in
  turn — every node holding the eliminated color simultaneously
  recolors to the smallest color not used by its two neighbors (always
  ``≤ 2``).  A color class is an independent set, so simultaneous
  recoloring is safe.

Differences from the paper's asynchronous adaptation (Algorithm 3):

* the reduction here follows a global *orientation* (each node reduces
  against its predecessor), available in the LOCAL model because the
  round structure is shared — the asynchronous version must instead
  reduce along *monotone chains* and protect the proper-coloring
  invariant with green-light counters;
* the classic reduction pads both strings to a common width, so it
  needs a public bound ``id_bits`` on identifier length (the paper's
  ``[0, poly(n)]`` namespace provides one); the paper's ``f`` instead
  caps the bit index by the shorter length, which is only safe on
  monotone chains (Lemma 4.3) — a subtle divergence this module's
  tests document.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.errors import ExecutionError
from repro.localmodel.engine import LocalAlgorithm, LocalOutcome

__all__ = ["ColeVishkinRing", "cv_reduce", "cv_phase_a_rounds", "cv_width_schedule"]


def cv_reduce(x: int, y: int, width: int) -> int:
    """One classic CV reduction of ``x`` against ``y`` at common ``width``.

    Requires ``x ≠ y`` and both below ``2**width``; returns
    ``2k + bit_k(x)`` for the least differing bit ``k < width``.
    """
    if x == y:
        raise ExecutionError("CV reduction requires distinct colors")
    if x >= (1 << width) or y >= (1 << width):
        raise ExecutionError(f"colors {x}, {y} exceed width {width}")
    diff = x ^ y
    k = (diff & -diff).bit_length() - 1
    return 2 * k + ((x >> k) & 1)


def cv_width_schedule(id_bits: int) -> list:
    """The deterministic width sequence ``w₀ = id_bits, w_{t+1} =
    bitlen(2·w_t − 1)`` down to (and including) the fixed point 3."""
    if id_bits < 1:
        raise ExecutionError("id_bits must be >= 1")
    widths = [max(id_bits, 3)]
    while widths[-1] > 3:
        widths.append(int(2 * widths[-1] - 1).bit_length())
    return widths


def cv_phase_a_rounds(id_bits: int) -> int:
    """Rounds of Phase A: reductions until width 3, plus one more
    (width-3 colors are ``≤ 7``; one further reduction gives ``≤ 5``)."""
    return len(cv_width_schedule(id_bits))


class _CVState(NamedTuple):
    color: int
    width: int        #: current public color width
    round_index: int  #: rounds executed so far
    phase_a: int      #: total Phase A rounds


class ColeVishkinRing(LocalAlgorithm):
    """Synchronous 3-coloring of the oriented ring in ``log* + O(1)`` rounds.

    Requires the :class:`~repro.model.topology.Cycle` neighbor
    convention: each node's first neighbor is its predecessor
    ``i − 1 (mod n)``.  ``id_bits`` is a public upper bound on the
    identifier bit length (nodes need not know ``n`` itself).
    """

    name = "cole-vishkin-ring"

    def __init__(self, id_bits: int = 64):
        self.id_bits = id_bits
        self._phase_a = cv_phase_a_rounds(id_bits)
        self._schedule = cv_width_schedule(id_bits)

    def initial_state(self, x_input: int, degree: int) -> _CVState:
        """Start with the identifier as color."""
        if degree != 2:
            raise ExecutionError("ColeVishkinRing runs on rings only")
        if x_input >= (1 << self.id_bits):
            raise ExecutionError(
                f"identifier {x_input} exceeds id_bits={self.id_bits}"
            )
        return _CVState(
            color=x_input, width=self._schedule[0], round_index=0,
            phase_a=self._phase_a,
        )

    def message(self, state: _CVState) -> int:
        """Broadcast the current color."""
        return state.color

    def update(self, state: _CVState, messages: Tuple[int, ...]) -> LocalOutcome:
        """One synchronous round: Phase A reduction or Phase B recolor."""
        pred_color, succ_color = messages
        t = state.round_index

        if t < state.phase_a:
            # Phase A: reduce against the predecessor at the public width.
            new_color = cv_reduce(state.color, pred_color, state.width)
            next_width = (
                self._schedule[t + 1] if t + 1 < len(self._schedule) else 3
            )
            return LocalOutcome.cont(
                _CVState(new_color, next_width, t + 1, state.phase_a)
            )

        # Phase B: eliminate color classes 5, 4, 3 over three rounds.
        b_round = t - state.phase_a  # 0, 1, 2
        eliminated = 5 - b_round
        color = state.color
        if color == eliminated:
            taken = {pred_color, succ_color}
            color = next(c for c in range(3) if c not in taken)
        new_state = _CVState(color, 3, t + 1, state.phase_a)
        if b_round == 2:
            return LocalOutcome.decide(new_state, color)
        return LocalOutcome.cont(new_state)
