"""Client-side resilience: deterministic backoff and a circuit breaker.

The consuming half of the chaos layer.  Both primitives are built for
testability first:

* :class:`BackoffPolicy` draws its jitter from a private seeded
  ``random.Random``, so a policy constructed with the same seed always
  produces the same delay sequence — tests assert exact backoff
  schedules instead of sleeping and hoping;
* :class:`CircuitBreaker` takes an injectable ``clock`` so state
  transitions (closed → open → half-open → closed) are driven by a
  fake clock in tests, no real waiting.

Neither primitive sleeps or touches the network itself; callers (the
service client, loadgen) own the sleep so they can cap it against a
request deadline.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional

from repro.errors import CircuitOpenError

__all__ = ["BackoffPolicy", "CircuitBreaker"]


class BackoffPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Delay for attempt ``k`` (0-based) is ``min(cap, base * mult**k)``
    shrunk by up to ``jitter`` fraction using the k-th draw of the
    seeded stream (full jitter pulls delays *down*, never above the
    cap).  A server-supplied ``Retry-After`` overrides the computed
    delay when larger, still capped — honoring explicit backpressure
    beats the local schedule.
    """

    def __init__(
        self,
        *,
        base: float = 0.05,
        cap: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        max_retries: int = 4,
    ) -> None:
        if base <= 0 or cap <= 0 or multiplier < 1:
            raise ValueError("base/cap must be > 0 and multiplier >= 1")
        if not (0.0 <= jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed
        self.max_retries = max_retries
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * self.multiplier**attempt)
        with self._lock:
            u = self._rng.random()
        delay = raw * (1.0 - self.jitter * u)
        if retry_after is not None and retry_after > delay:
            delay = min(retry_after, self.cap)
        return delay

    def preview(self, n: int) -> List[float]:
        """The first ``n`` delays of a *fresh* policy with this seed —
        what a new client would wait, without consuming this policy's
        stream."""
        fresh = BackoffPolicy(
            base=self.base, cap=self.cap, multiplier=self.multiplier,
            jitter=self.jitter, seed=self.seed, max_retries=self.max_retries,
        )
        return [fresh.delay(k) for k in range(n)]

    def clone(self, *, seed: Optional[int] = None) -> "BackoffPolicy":
        """A fresh policy with the same knobs (optionally re-seeded) —
        give each loadgen worker its own independent stream."""
        return BackoffPolicy(
            base=self.base, cap=self.cap, multiplier=self.multiplier,
            jitter=self.jitter,
            seed=self.seed if seed is None else seed,
            max_retries=self.max_retries,
        )


class CircuitBreaker:
    """Failure-rate circuit breaker with half-open probing.

    Closed: requests flow; ``failure_threshold`` consecutive failures
    trip it open.  Open: :meth:`acquire` raises
    :class:`~repro.errors.CircuitOpenError` until ``reset_after``
    seconds pass.  Half-open: exactly one in-flight probe is admitted;
    its success closes the circuit, its failure re-opens it (fresh
    cool-down).  ``clock`` defaults to ``time.monotonic`` and is
    injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state_locked()

    def _effective_state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            return self.HALF_OPEN
        return self._state

    def acquire(self) -> None:
        """Gate one request.  Raises :class:`CircuitOpenError` when the
        circuit is open (or half-open with the probe slot taken)."""
        with self._lock:
            state = self._effective_state_locked()
            if state == self.CLOSED:
                return
            if state == self.HALF_OPEN and not self._probe_inflight:
                self._state = self.HALF_OPEN
                self._probe_inflight = True
                return
            remaining = max(
                0.0, self.reset_after - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                "circuit breaker open"
                + (" (half-open probe in flight)" if state == self.HALF_OPEN else ""),
                retry_after=remaining,
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
