"""The chaos harness: loadgen vs a fault-injected server, invariants checked.

The headline artifact of the chaos layer (``repro-color chaos`` and
``tests/integration/test_chaos.py``): boot an in-process
:class:`~repro.service.server.ServerThread` armed with a seeded
:class:`~repro.chaos.plan.FaultPlan`, drive it with the deterministic
load generator in retry mode, and check the system invariants the
paper's fault-tolerance discipline demands of the stack itself:

1. **Definite status** — every request terminates with a concrete
   outcome (an HTTP status or a raised client error); nothing hangs
   silently.  Proven by the burst completing with its accounting
   closed: statuses + client errors = requests sent.
2. **Bit-identical results** — every eventually-successful response's
   deterministic payload equals what the straight-from-the-paper
   reference engine computes for that configuration, and its content
   digest still seals it.  Injected latency, 5xx, worker crashes and
   cache bit flips may cost retries, never wrong answers.
3. **Bounded respawns** — with a worker pool attached, injected
   crashes/hangs never push worker restarts past ``initial workers +
   restart_burst`` inside one burst: the supervisor's storm brake
   holds.
4. **Clean journal resume** — a campaign killed by an injected
   journal fault resumes to the exact uninterrupted result
   (:func:`run_campaign_chaos`, driven through the real CLI in a
   subprocess).

Everything is a pure function of the seed: the plan's fault sequence,
the load mix and the backoff schedules all replay bit-for-bit, so a
red harness run is reproducible from its seed alone.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.chaos.plan import FaultPlan, FaultRule
from repro.chaos.resilience import BackoffPolicy

__all__ = ["default_plan", "run_service_chaos", "run_campaign_chaos"]

#: Storm-brake budget the harness configures and asserts against.
HARNESS_RESTART_BURST = 8


def default_plan(seed: int, *, pool: bool = False) -> FaultPlan:
    """The harness's default fault mix for one burst.

    Rates are modest and capped so a ~60-request burst sees every
    fault class a handful of times without drowning in them; worker
    rules are included only when a pool is attached (their caps apply
    per worker scope).
    """
    rules = [
        FaultRule("service.dispatch.latency", rate=0.15, param=0.02),
        FaultRule("service.dispatch.error", rate=0.10, max_faults=8),
        FaultRule(
            "service.queue.saturate", rate=0.05, max_faults=4, param=0.05
        ),
        FaultRule("cache.bitflip", rate=0.10, max_faults=4),
    ]
    if pool:
        rules += [
            FaultRule("pool.worker.crash", rate=0.08, max_faults=1),
            FaultRule("pool.worker.raise", rate=0.08, max_faults=2),
            FaultRule("pool.worker.hang", rate=0.04, max_faults=1, param=30.0),
            FaultRule(
                "pool.worker.slow_start", rate=0.3, max_faults=1, param=0.05
            ),
        ]
    return FaultPlan(seed, rules)


def _reference_response(request):
    """What the reference engine says this request's response must be."""
    from repro.campaign.registry import (
        resolve_algorithm,
        resolve_inputs,
        resolve_schedule,
        resolve_topology,
    )
    from repro.model.execution import run_execution
    from repro.service.schema import ColorResponse

    result = run_execution(
        resolve_algorithm(request.algorithm)(),
        resolve_topology(request.topology, request.n),
        resolve_inputs(request.inputs, request.n, request.seed),
        resolve_schedule(
            request.schedule, seed=request.seed, **dict(request.schedule_params)
        ),
        max_time=request.max_time,
        engine="reference",
    )
    return ColorResponse.from_execution(request, result, engine="reference")


def run_service_chaos(
    seed: int,
    *,
    requests: int = 60,
    concurrency: int = 4,
    duplicates: float = 0.3,
    algorithm: str = "fast5",
    n: int = 32,
    pool_workers: int = 0,
    queue_limit: int = 32,
    plan: Optional[FaultPlan] = None,
    verify_reference: bool = True,
    client_deadline: float = 30.0,
) -> Dict[str, Any]:
    """One fault-injected burst; returns the invariant report.

    The report's ``ok`` is True iff every checked invariant held and
    no request ended in a client-side error; ``violations`` lists what
    broke, each entry carrying enough to reproduce (seed, plan hash,
    request key).
    """
    from repro.service.loadgen import run_loadgen
    from repro.service.schema import ColorResponse
    from repro.service.server import ServerThread

    plan = plan if plan is not None else default_plan(
        seed, pool=pool_workers > 0
    )
    collected: List[Dict[str, Any]] = []

    def collect(index, request, reply):
        collected.append(
            {"index": index, "request": request, "reply": reply}
        )

    with ServerThread(
        queue_limit=queue_limit,
        request_timeout=20.0,
        pool_workers=pool_workers,
        pool_task_timeout=2.0 if pool_workers else None,
        chaos=plan,
    ) as server:
        if server._pool is not None:
            server._pool.restart_burst = HARNESS_RESTART_BURST
        summary = run_loadgen(
            port=server.port,
            requests=requests,
            concurrency=concurrency,
            duplicates=duplicates,
            algorithm=algorithm,
            n=n,
            timeout=25.0,
            retry=True,
            retry_policy=BackoffPolicy(
                base=0.02, cap=0.25, jitter=0.5, seed=seed, max_retries=8
            ),
            deadline=client_deadline,
            collect=collect,
        )
        pool_stats = (
            server._pool.stats() if server._pool is not None else None
        )
        chaos_total = sum(
            sample["value"]
            for sample in server.registry.snapshot()
            .get("chaos_faults_injected_total", {"samples": []})["samples"]
        )

    violations: List[Dict[str, Any]] = []

    # Invariant 1: definite status for every request.
    accounted = sum(summary["statuses"].values()) + summary["outcomes"]["errors"]
    if accounted != summary["requests"]:
        violations.append(
            {
                "invariant": "definite_status",
                "detail": f"{accounted} outcomes for {summary['requests']} requests",
            }
        )

    # Invariant 2: every eventually-successful response bit-identical
    # to the reference engine, digest seal intact.
    references: Dict[str, Dict[str, Any]] = {}
    for entry in collected:
        reply = entry["reply"]
        if reply.status != 200 or not isinstance(reply.body, dict):
            continue
        response = ColorResponse.from_dict(reply.body)
        if not response.digest_ok:
            violations.append(
                {
                    "invariant": "content_digest",
                    "request_key": response.request_key,
                    "detail": "served response fails its digest seal",
                }
            )
            continue
        if not verify_reference:
            continue
        key = entry["request"].request_key
        if key not in references:
            references[key] = _reference_response(
                entry["request"]
            ).deterministic_dict()
        if response.deterministic_dict() != references[key]:
            violations.append(
                {
                    "invariant": "bit_identical",
                    "request_key": key,
                    "detail": "served payload differs from the reference engine",
                }
            )

    # Invariant 3: bounded respawns (pool mode only).
    if pool_stats is not None:
        respawn_bound = pool_workers + HARNESS_RESTART_BURST
        if pool_stats["restarts"] > respawn_bound:
            violations.append(
                {
                    "invariant": "bounded_respawns",
                    "detail": (
                        f"{pool_stats['restarts']} restarts exceed the "
                        f"storm-brake bound {respawn_bound}"
                    ),
                }
            )

    if summary["outcomes"]["errors"]:
        violations.append(
            {
                "invariant": "definite_status",
                "detail": (
                    f"{summary['outcomes']['errors']} request(s) ended in "
                    "client-side errors despite retries"
                ),
            }
        )

    return {
        "seed": seed,
        "plan_hash": plan.plan_hash,
        "plan": plan.to_dict(),
        "requests": summary["requests"],
        "statuses": summary["statuses"],
        "retries": summary["retries"],
        "outcomes": summary["outcomes"],
        "chaos_faults_injected": chaos_total,
        "pool": pool_stats,
        "verified_unique_configs": len(references),
        "violations": violations,
        "ok": not violations,
    }


def run_campaign_chaos(
    seed: int,
    workdir: Path,
    *,
    site: str = "campaign.journal.torn",
    after: int = 6,
    seeds: int = 8,
) -> Dict[str, Any]:
    """Invariant 4: kill a real campaign at a journal append, resume.

    Runs the actual CLI in subprocesses: a baseline campaign, then the
    same campaign with a fault plan that kills the process at its
    ``after``-th journal line (header included), then ``--resume``
    without the plan.  Checks the kill landed (exit 137), the resume
    skipped exactly the journaled records, and the final report is
    bit-identical to the uninterrupted baseline.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    repo_root = Path(__file__).resolve().parents[3]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_CHAOS_PLAN", None)
    campaign_args = [
        sys.executable, "-m", "repro.cli", "campaign",
        "--algorithms", "fast5",
        "--ns", "16",
        "--inputs", "random",
        "--schedules", "sync,bernoulli",
        "--seeds", str(seeds),
        "--backend", "sequential",
        "--json",
    ]

    def run(extra, check=True):
        proc = subprocess.run(
            campaign_args + extra,
            cwd=repo_root, env=env, capture_output=True, text=True,
        )
        if check and proc.returncode != 0:
            raise RuntimeError(
                f"campaign subprocess failed ({proc.returncode}): {proc.stderr}"
            )
        return proc

    baseline = run(["--journal", str(workdir / "base.jsonl")])
    base_payload = json.loads(baseline.stdout)

    plan = FaultPlan(seed, [FaultRule(site, rate=1.0, after=after)])
    plan_path = workdir / "plan.json"
    plan_path.write_text(plan.to_json() + "\n")
    journal = workdir / "campaign.jsonl"
    killed = run(
        ["--journal", str(journal), "--chaos-plan", str(plan_path)],
        check=False,
    )
    violations: List[Dict[str, Any]] = []
    if killed.returncode != 137:
        violations.append(
            {
                "invariant": "journal_resume",
                "detail": (
                    f"injected {site} did not kill the campaign "
                    f"(exit {killed.returncode})"
                ),
            }
        )
    resumed = run(["--journal", str(journal), "--resume"])
    payload = json.loads(resumed.stdout)
    total = 2 * seeds
    summary = payload["summary"]
    if summary["skipped"] + summary["executed"] != total:
        violations.append(
            {
                "invariant": "journal_resume",
                "detail": (
                    f"resume accounting broken: {summary['skipped']} skipped "
                    f"+ {summary['executed']} executed != {total}"
                ),
            }
        )
    # The fault fired at journal probe ``after`` (probe 0 is the
    # header): records 1..after-1 are durable, the ``after``-th is
    # either never written (kill) or torn and skipped on load (torn) —
    # both sites leave exactly ``after - 1`` resumable records.
    expected_skipped = after - 1
    if killed.returncode == 137 and summary["skipped"] != expected_skipped:
        violations.append(
            {
                "invariant": "journal_resume",
                "detail": (
                    f"resume skipped {summary['skipped']} records, expected "
                    f"exactly {expected_skipped}"
                ),
            }
        )
    if payload["report"] != base_payload["report"] or not payload["all_ok"]:
        violations.append(
            {
                "invariant": "journal_resume",
                "detail": "resumed report differs from the uninterrupted baseline",
            }
        )
    return {
        "seed": seed,
        "plan_hash": plan.plan_hash,
        "site": site,
        "kill_exit": killed.returncode,
        "skipped": summary["skipped"],
        "executed": summary["executed"],
        "violations": violations,
        "ok": not violations,
    }
