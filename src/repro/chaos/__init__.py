"""Deterministic chaos layer: seeded fault injection + client resilience.

``repro.chaos`` is the repo's fault-tolerance discipline applied to its
own infrastructure.  A :class:`FaultPlan` is a seeded, content-hashed
schedule of faults at named sites (:data:`FAULT_SITES`) threaded
through the worker pool, the service dispatch path, the response cache
and the campaign journal; :func:`maybe_fault` is the zero-overhead
probe each site calls (one ``None`` check when no plan is installed).
The consuming side — :class:`BackoffPolicy` and
:class:`CircuitBreaker` — gives clients deterministic, seeded
resilience against exactly those faults.  The harness
(:mod:`repro.chaos.harness`, ``repro-color chaos``) closes the loop:
inject, retry, and prove the invariants held.  See ``docs/CHAOS.md``.
"""

from repro.chaos.harness import (
    default_plan,
    run_campaign_chaos,
    run_service_chaos,
)
from repro.chaos.injector import (
    CHAOS_PLAN_ENV,
    active_plan,
    chaos,
    ensure_worker_plan,
    install_plan,
    maybe_fault,
    uninstall_plan,
)
from repro.chaos.plan import (
    FAULT_SITES,
    FaultDecision,
    FaultPlan,
    FaultRule,
)
from repro.chaos.resilience import BackoffPolicy, CircuitBreaker

__all__ = [
    "FAULT_SITES",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "CHAOS_PLAN_ENV",
    "active_plan",
    "chaos",
    "ensure_worker_plan",
    "install_plan",
    "maybe_fault",
    "uninstall_plan",
    "BackoffPolicy",
    "CircuitBreaker",
    "default_plan",
    "run_service_chaos",
    "run_campaign_chaos",
]
