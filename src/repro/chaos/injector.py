"""The injection switch: install a plan, probe sites, emit telemetry.

Follows the observability layer's *zero overhead when disabled*
discipline exactly: :func:`active_plan` is one module-global read, and
every probe site in the stack is gated on that single ``None`` check —
no plan installed means no dict lookups, no hashing, no lock.

Installing a plan with ``env=True`` (the default) also publishes its
canonical JSON under :data:`CHAOS_PLAN_ENV`, so worker processes
spawned or forked afterwards can rebuild the plan and salt their own
deterministic draw streams with :func:`ensure_worker_plan`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.chaos.plan import FaultDecision, FaultPlan
from repro.errors import ChaosError
from repro.obs.metrics import active_registry
from repro.obs.trace import record_event

__all__ = [
    "CHAOS_PLAN_ENV",
    "active_plan",
    "install_plan",
    "uninstall_plan",
    "chaos",
    "maybe_fault",
    "ensure_worker_plan",
]

#: Environment variable carrying the installed plan's canonical JSON so
#: child processes (pool workers, campaign subprocesses) inherit it.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or ``None`` when chaos is disabled.

    This is the *only* check probe sites perform; ``None`` means every
    site is a no-op."""
    return _ACTIVE


def install_plan(plan: FaultPlan, *, env: bool = True) -> FaultPlan:
    """Install ``plan`` process-wide; with ``env`` also export it for
    child processes."""
    global _ACTIVE
    _ACTIVE = plan
    if env:
        os.environ[CHAOS_PLAN_ENV] = plan.to_json()
    return plan


def uninstall_plan() -> None:
    """Disable injection and clear the child-process export."""
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(CHAOS_PLAN_ENV, None)


@contextmanager
def chaos(plan: FaultPlan, *, env: bool = True) -> Iterator[FaultPlan]:
    """Install ``plan`` for a ``with`` block, restoring the previous
    plan (and environment export) on exit."""
    global _ACTIVE
    previous = _ACTIVE
    previous_env = os.environ.get(CHAOS_PLAN_ENV)
    install_plan(plan, env=env)
    try:
        yield plan
    finally:
        _ACTIVE = previous
        if env:
            if previous_env is None:
                os.environ.pop(CHAOS_PLAN_ENV, None)
            else:
                os.environ[CHAOS_PLAN_ENV] = previous_env


def maybe_fault(site: str, registry=None) -> Optional[FaultDecision]:
    """The canonical probe: ask the active plan whether ``site`` fires.

    Returns the decision (caller applies the fault) or ``None``.  A
    fired probe is counted in ``chaos_faults_injected_total{site}`` —
    into ``registry`` when the caller pins one (the service layers pin
    theirs), else whatever :func:`active_registry` says — and marked in
    the active trace as a ``chaos.fault`` event, so injected faults are
    visible in ``/debug/trace`` timelines next to their victims.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    decision = plan.decide(site)
    if decision is None:
        return None
    if registry is None:
        registry = active_registry()
    if registry is not None:
        registry.inc("chaos_faults_injected_total", 1, site=site)
    record_event(
        "chaos.fault",
        site=decision.site,
        index=decision.index,
        plan=plan.plan_hash,
    )
    return decision


def ensure_worker_plan(salt: str) -> Optional[FaultPlan]:
    """Install this process's scoped plan from the environment export.

    Called by worker-process entry points with a stable identity salt
    (``worker:3``, ``campaign-shard:0``): each scope gets its own
    deterministic draw stream from the shared seed, so a plan shipped
    to N workers does not fire identically in all of them.  A fork'd
    worker that inherited the parent's ``_ACTIVE`` is re-pointed at its
    scoped copy; without the env export this is a no-op returning the
    inherited plan, if any.
    """
    global _ACTIVE
    raw = os.environ.get(CHAOS_PLAN_ENV)
    if not raw:
        return _ACTIVE
    try:
        plan = FaultPlan.from_json(raw).scoped(salt)
    except ChaosError:
        return _ACTIVE
    _ACTIVE = plan
    return plan
