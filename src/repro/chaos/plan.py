"""Fault plans: seeded, content-hashable schedules of injected faults.

The paper's adversary picks *any* crash pattern and the algorithm must
cope; the chaos layer applies the same discipline to the serving stack.
A :class:`FaultPlan` is the adversary made reproducible: a seed plus a
list of :class:`FaultRule` entries, each naming an injection *site*
(``pool.worker.crash``, ``service.dispatch.error``, ...) with a firing
rate and optional caps.  Whether the k-th probe of a site fires is a
pure function of ``(seed, scope, site, k)`` — no wall clock, no shared
RNG state — so the same plan replays the same fault sequence across
processes, platforms and reruns, and a chaos failure reproduces from
its seed alone.

Plans follow the campaign content-hash discipline: serializable to
canonical JSON, identified by :func:`repro.util.hashing.canonical_hash`
over that form, round-trippable for ``--resume`` and for shipping to
worker processes through the environment.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ChaosError
from repro.util.hashing import canonical_hash, canonical_json

__all__ = [
    "FAULT_SITES",
    "FaultRule",
    "FaultDecision",
    "FaultPlan",
]

#: Every site the stack probes, with what the rule's ``param`` means
#: there (documented in docs/CHAOS.md).  Unknown sites in a plan are
#: rejected at construction so a typo cannot silently disarm a rule.
FAULT_SITES: Mapping[str, str] = {
    "pool.worker.crash": "worker calls os._exit mid-task (param ignored)",
    "pool.worker.hang": "worker sleeps past its deadline (param: seconds, default 600)",
    "pool.worker.raise": "worker raises ChaosInjectedError (param ignored)",
    "pool.worker.slow_start": "worker sleeps before its first task (param: seconds, default 0.2)",
    "service.dispatch.latency": "extra await before executing a request (param: seconds, default 0.05)",
    "service.dispatch.error": "forced 500 with an injected marker body (param ignored)",
    "service.queue.saturate": "forced 429 burst as if the admission queue were full (param: retry-after seconds, default 0.05)",
    "cache.bitflip": "response corrupted at cache put; caught by the content digest (param ignored)",
    "campaign.journal.torn": "process killed mid-append, leaving a torn trailing record (param ignored)",
    "campaign.journal.kill": "process killed just before an append (param ignored)",
}


@dataclass(frozen=True)
class FaultRule:
    """One site's firing policy inside a plan.

    ``rate`` is the per-probe Bernoulli probability; ``after`` skips the
    first N probes of the site (letting a run warm up before faults
    start); ``max_faults`` caps total fires (None = unlimited);
    ``param`` is a site-specific knob (see :data:`FAULT_SITES`).
    """

    site: str
    rate: float = 1.0
    max_faults: Optional[int] = None
    after: int = 0
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ChaosError(
                f"unknown fault site {self.site!r}; known sites: "
                + ", ".join(sorted(FAULT_SITES))
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ChaosError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ChaosError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.after < 0:
            raise ChaosError(f"after must be >= 0, got {self.after}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "rate": self.rate}
        if self.max_faults is not None:
            out["max_faults"] = self.max_faults
        if self.after:
            out["after"] = self.after
        if self.param is not None:
            out["param"] = self.param
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultRule":
        return cls(
            site=raw["site"],
            rate=float(raw.get("rate", 1.0)),
            max_faults=raw.get("max_faults"),
            after=int(raw.get("after", 0)),
            param=raw.get("param"),
        )


@dataclass(frozen=True)
class FaultDecision:
    """A fired probe: which site, its probe index, and the rule knob."""

    site: str
    index: int
    param: Optional[float] = None


def _bernoulli(seed: int, scope: str, site: str, index: int) -> float:
    """The uniform draw for one probe — a pure function of its
    coordinates, identical across processes and platforms."""
    digest = hashlib.sha256(
        f"{seed}:{scope}:{site}:{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """A seeded fault schedule over named sites.

    Probe counters advance per site under a lock; the *decisions* are
    stateless (hash-based), so two plans built from the same dict make
    identical fire/skip calls at identical probe indices regardless of
    thread interleaving within a site.

    ``scope`` salts the draw stream — :meth:`scoped` gives each worker
    process its own deterministic stream from the same seed, so a plan
    shipped to N workers does not make all N crash on the same probe.
    """

    def __init__(
        self,
        seed: int,
        rules: Sequence[FaultRule],
        scope: str = "",
    ) -> None:
        self.seed = int(seed)
        self.scope = scope
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ChaosError(f"duplicate rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self._lock = threading.Lock()
        self._probes: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    # -- deciding ------------------------------------------------------
    def decide(self, site: str) -> Optional[FaultDecision]:
        """Advance ``site``'s probe counter and return a decision if
        this probe fires, else None.  Sites without a rule never fire
        (and pay only a dict miss)."""
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            index = self._probes.get(site, 0)
            self._probes[site] = index + 1
            if index < rule.after:
                return None
            fired = self._fired.get(site, 0)
            if rule.max_faults is not None and fired >= rule.max_faults:
                return None
            if _bernoulli(self.seed, self.scope, site, index) >= rule.rate:
                return None
            self._fired[site] = fired + 1
        return FaultDecision(site=site, index=index, param=rule.param)

    def sequence(self, site: str, n: int) -> List[bool]:
        """Preview: would-fire flags for the first ``n`` probes of
        ``site`` on a *fresh* plan (ignores caps already consumed)."""
        rule = self.rules.get(site)
        if rule is None:
            return [False] * n
        out: List[bool] = []
        fired = 0
        for index in range(n):
            fire = (
                index >= rule.after
                and (rule.max_faults is None or fired < rule.max_faults)
                and _bernoulli(self.seed, self.scope, site, index) < rule.rate
            )
            if fire:
                fired += 1
            out.append(fire)
        return out

    def fired_counts(self) -> Dict[str, int]:
        """Fires so far per site (this process's plan instance only)."""
        with self._lock:
            return dict(self._fired)

    # -- identity / serialization -------------------------------------
    def scoped(self, salt: str) -> "FaultPlan":
        """A fresh plan over the same seed+rules whose draw streams are
        salted by ``salt`` (e.g. ``worker:3``) — deterministic per
        scope, independent across scopes."""
        scope = f"{self.scope}/{salt}" if self.scope else salt
        return FaultPlan(self.seed, list(self.rules.values()), scope=scope)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seed": self.seed,
            "rules": [
                self.rules[site].to_dict() for site in sorted(self.rules)
            ],
        }
        if self.scope:
            out["scope"] = self.scope
        return out

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @property
    def plan_hash(self) -> str:
        """Content hash of the plan (scope excluded: a scoped child is
        the same plan viewed from a different stream)."""
        payload = self.to_dict()
        payload.pop("scope", None)
        return canonical_hash(payload)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(raw["seed"]),
            rules=[FaultRule.from_dict(r) for r in raw.get("rules", [])],
            scope=raw.get("scope", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(text))
        except ChaosError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ChaosError(f"malformed fault plan: {exc}") from exc

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ChaosError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, sites={sorted(self.rules)}, "
            f"scope={self.scope!r}, hash={self.plan_hash})"
        )
