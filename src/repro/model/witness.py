"""Witness serialization: save and replay executions as JSON artifacts.

Findings like E13 are only as good as their reproducibility.  A
*witness* packages everything needed to replay one execution —
topology kind, identifiers, and the exact schedule steps — as a plain
JSON document, so a violating schedule found by the explorer (or an
interesting random run pinned by
:class:`~repro.model.schedule.RecordedSchedule`) can be checked into a
repository, attached to a bug report, and replayed bit-for-bit later.

Only cycle and complete-graph topologies (the reproduction's subjects)
plus explicit edge lists are supported; payload colors/outputs are not
stored — replaying regenerates them deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.model.schedule import FiniteSchedule
from repro.model.topology import CompleteGraph, Cycle, GeneralGraph, Topology

__all__ = ["Witness", "witness_from_outcome"]

_FORMAT = "repro-witness-v1"


@dataclass
class Witness:
    """A replayable execution description."""

    topology: Topology
    inputs: List[Any]
    steps: List[frozenset]
    description: str = ""

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def schedule(self) -> FiniteSchedule:
        """The witness's schedule."""
        return FiniteSchedule(self.steps)

    def replay(self, algorithm, *, max_time: int = 1_000_000,
               record_registers: bool = False):
        """Run ``algorithm`` on the witnessed instance."""
        from repro.model.execution import run_execution

        return run_execution(
            algorithm, self.topology, self.inputs, self.schedule(),
            max_time=max_time, record_registers=record_registers,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string."""
        if isinstance(self.topology, Cycle):
            topo: Dict[str, Any] = {"kind": "cycle", "n": self.topology.n}
        elif isinstance(self.topology, CompleteGraph):
            topo = {"kind": "complete", "n": self.topology.n}
        else:
            topo = {
                "kind": "edges",
                "n": self.topology.n,
                "edges": sorted(self.topology.edges()),
            }
        return json.dumps(
            {
                "format": _FORMAT,
                "description": self.description,
                "topology": topo,
                "inputs": list(self.inputs),
                "steps": [sorted(step) for step in self.steps],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Witness":
        """Parse a witness serialized by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"witness is not valid JSON: {exc}") from exc
        if data.get("format") != _FORMAT:
            raise ReproError(
                f"unsupported witness format {data.get('format')!r}"
            )
        topo_spec = data["topology"]
        kind = topo_spec["kind"]
        if kind == "cycle":
            topology: Topology = Cycle(topo_spec["n"])
        elif kind == "complete":
            topology = CompleteGraph(topo_spec["n"])
        elif kind == "edges":
            topology = GeneralGraph(
                topo_spec["n"], [tuple(e) for e in topo_spec["edges"]],
            )
        else:
            raise ReproError(f"unknown topology kind {kind!r}")
        return cls(
            topology=topology,
            inputs=list(data["inputs"]),
            steps=[frozenset(step) for step in data["steps"]],
            description=data.get("description", ""),
        )

    def save(self, path) -> None:
        """Write the witness to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "Witness":
        """Read a witness from ``path``."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def witness_from_outcome(
    topology: Topology,
    inputs: Sequence[Any],
    outcome,
    *,
    description: Optional[str] = None,
) -> Witness:
    """Package a :class:`~repro.lowerbounds.explorer.SearchOutcome`.

    Raises :class:`ReproError` when the outcome carries no witness.
    """
    if outcome.witness is None:
        raise ReproError("search outcome has no witness to package")
    return Witness(
        topology=topology,
        inputs=list(inputs),
        steps=list(outcome.witness),
        description=description if description is not None else outcome.description,
    )
