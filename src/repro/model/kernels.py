"""Compiled per-algorithm kernels for the fast-path engine.

A *kernel* is the engine's inner loop and one algorithm's ``step``
fused into a single function over parallel arrays of plain ints — no
``NamedTuple`` states, no register payload tuples, no ``StepOutcome``
wrappers, no per-activation attribute lookups.  The "compilation"
happens once, in the kernel factory: neighbor ids are unpacked into
flat arrays, algorithm parameters (ablation flags) are bound into
locals, and the degree-≤2 structure of the cycle/path topologies is
specialized away.

Correctness discipline: a kernel must reproduce the reference engine's
:class:`~repro.model.execution.ExecutionResult` *bit-identically* —
outputs, activation counts, return times, final time, the
``time_exhausted`` flag and the per-process final states.  Every kernel
registered here is pinned by the differential equivalence harness
(``tests/model/test_fastpath_equivalence.py``); a kernel that cannot
guarantee equivalence for a given configuration must decline (return
``None``) so the generic fast path takes over.

Kernels are looked up by *exact* algorithm type — a subclass may
override ``step`` and silently change semantics, so it never matches.
Third-party algorithms can register their own kernels with
:func:`register_kernel`.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.model.execution import ExecutionResult
from repro.model.topology import Topology
from repro.obs.metrics import active_registry
from repro.obs.spans import span

__all__ = ["register_kernel", "build_kernel", "KERNELS"]

#: Exact algorithm type → kernel factory.  A factory has signature
#: ``factory(algorithm, topology, inputs) -> Optional[runner]`` where
#: ``runner(schedule, max_time, idle_limit) -> ExecutionResult``; it
#: returns ``None`` when it cannot guarantee equivalence for this
#: configuration (e.g. unsupported topology degree).
KERNELS: Dict[Type, Callable] = {}


def register_kernel(algorithm_type: Type):
    """Class decorator registering ``factory`` for ``algorithm_type``."""

    def decorate(factory: Callable) -> Callable:
        KERNELS[algorithm_type] = factory
        return factory

    return decorate


def build_kernel(algorithm, topology: Topology, inputs: List[Any]):
    """The compiled runner for this configuration, or ``None``.

    Exact-type dispatch: subclasses never match (their overridden
    methods could change semantics under the kernel's feet).
    """
    alg_name = type(algorithm).__name__
    factory = KERNELS.get(type(algorithm))
    if factory is None:
        registry = active_registry()
        if registry is not None:
            registry.inc(
                "engine_kernel_builds_total", 1,
                algorithm=alg_name, outcome="unregistered",
            )
        return None
    with span("engine_kernel_build", algorithm=alg_name):
        kernel = factory(algorithm, topology, inputs)
    registry = active_registry()
    if registry is not None:
        registry.inc(
            "engine_kernel_builds_total", 1,
            algorithm=alg_name,
            outcome="compiled" if kernel is not None else "declined",
        )
    return kernel


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------

#: Per-topology-object memo for :func:`_degree2_arrays` — topologies
#: are immutable once built, and both the per-run and batched kernel
#: factories call this on every build, so the n ``neighbors()`` walks
#: are paid once per topology instance.  ``False`` records a declined
#: (too dense) topology; weak keys keep the memo from pinning objects.
_DEGREE2_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _degree2_arrays(topology: Topology) -> Optional[Tuple[List[int], List[int]]]:
    """Neighbor ids as two flat arrays (−1 = absent), or ``None``.

    The shipped kernels specialize for the paper's degree-≤2 topologies
    (cycles, paths); anything denser falls back to the generic path.
    The returned arrays are cached per topology object and shared —
    callers must treat them as read-only.
    """
    try:
        cached = _DEGREE2_CACHE.get(topology)
    except TypeError:  # unhashable / non-weakrefable topology
        cached = None
    if cached is not None:
        return None if cached is False else cached
    n = topology.n
    nb1 = [-1] * n
    nb2 = [-1] * n
    arrays: Any = (nb1, nb2)
    for p in range(n):
        nbrs = topology.neighbors(p)
        if len(nbrs) > 2:
            arrays = False
            break
        if len(nbrs) >= 1:
            nb1[p] = nbrs[0]
        if len(nbrs) == 2:
            nb2[p] = nbrs[1]
    try:
        _DEGREE2_CACHE[topology] = arrays
    except TypeError:
        pass
    return None if arrays is False else arrays


# ----------------------------------------------------------------------
# Algorithms 2 and 3: the (x, a, b[, r]) register family
# ----------------------------------------------------------------------

def _make_ab_kernel(algorithm, topology, inputs, *, reduction: bool):
    """Fused loop for Algorithm 2 (``reduction=False``) / Algorithm 3.

    One code path serves both: Algorithm 3 is Algorithm 2 plus the
    identifier-reduction block, which is compiled in (or out) here
    together with its ablation flags.
    """
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring5 import FiveState
    from repro.core.fast_coloring5 import FastState, INFINITE_ROUND

    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    nb1, nb2 = arrays
    n = topology.n
    if reduction:
        green_light = algorithm.green_light
        guarded_adoption = algorithm.guarded_adoption

    def run(schedule, max_time, idle_limit) -> ExecutionResult:
        st_x = list(inputs)
        st_a = [0] * n
        st_b = [0] * n
        st_r: List[Any] = [0] * n
        rg_x = [0] * n
        rg_a = [0] * n
        rg_b = [0] * n
        rg_r: List[Any] = [0] * n
        rg_w = [False] * n

        done = [False] * n
        outputs: Dict[int, Any] = {}
        return_times: Dict[int, int] = {}
        activations = [0] * n
        time = 0
        idle_streak = 0
        time_exhausted = False
        remaining = n
        INF = INFINITE_ROUND

        for raw_step in schedule.steps_fast(n):
            if remaining == 0:
                break
            time += 1
            if time > max_time:
                time -= 1
                time_exhausted = True
                break

            working = [p for p in raw_step if not done[p]]
            if not working:
                idle_streak += 1
                if idle_limit and idle_streak >= idle_limit:
                    break
                continue
            idle_streak = 0

            # Phase 1 — publish the register images.
            for p in working:
                rg_x[p] = st_x[p]
                rg_a[p] = st_a[p]
                rg_b[p] = st_b[p]
                if reduction:
                    rg_r[p] = st_r[p]
                rg_w[p] = True

            # Phase 2+3 — read + private update, fully inlined.
            for p in working:
                activations[p] += 1
                x = st_x[p]
                a = st_a[p]
                b = st_b[p]
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and rg_w[q1]
                w2 = q2 >= 0 and rg_w[q2]

                if w1 and w2:
                    a1 = rg_a[q1]; b1 = rg_b[q1]
                    a2 = rg_a[q2]; b2 = rg_b[q2]
                    if a != a1 and a != b1 and a != a2 and a != b2:
                        outputs[p] = a; return_times[p] = time
                        done[p] = True; remaining -= 1
                        continue
                    if b != a1 and b != b1 and b != a2 and b != b2:
                        outputs[p] = b; return_times[p] = time
                        done[p] = True; remaining -= 1
                        continue
                    taken_all = {a1, b1, a2, b2}
                    taken_higher = set()
                    if rg_x[q1] > x:
                        taken_higher.add(a1); taken_higher.add(b1)
                    if rg_x[q2] > x:
                        taken_higher.add(a2); taken_higher.add(b2)
                elif w1 or w2:
                    q = q1 if w1 else q2
                    aq = rg_a[q]; bq = rg_b[q]
                    if a != aq and a != bq:
                        outputs[p] = a; return_times[p] = time
                        done[p] = True; remaining -= 1
                        continue
                    if b != aq and b != bq:
                        outputs[p] = b; return_times[p] = time
                        done[p] = True; remaining -= 1
                        continue
                    taken_all = {aq, bq}
                    taken_higher = {aq, bq} if rg_x[q] > x else set()
                else:
                    # No awakened neighbor: a (initially 0) is free.
                    outputs[p] = a; return_times[p] = time
                    done[p] = True; remaining -= 1
                    continue

                v = 0
                while v in taken_higher:
                    v += 1
                st_a[p] = v
                v = 0
                while v in taken_all:
                    v += 1
                st_b[p] = v

                # Identifier reduction (Algorithm 3 only), compiled in
                # only when both neighbors exist and are awake.
                if reduction and w1 and w2:
                    r = st_r[p]
                    if r < INF:
                        r1 = rg_r[q1]; r2 = rg_r[q2]
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = rg_x[q1]; x2 = rg_x[q2]
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                st_r[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo or not guarded_adoption:
                                    st_x[p] = candidate
                            else:
                                st_r[p] = INF
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        st_x[p] = v

        if reduction:
            final_states = {
                p: FastState(x=st_x[p], r=st_r[p], a=st_a[p], b=st_b[p])
                for p in range(n)
            }
        else:
            final_states = {
                p: FiveState(x=st_x[p], a=st_a[p], b=st_b[p])
                for p in range(n)
            }
        return ExecutionResult(
            n=n,
            outputs=outputs,
            activations={p: activations[p] for p in range(n)},
            return_times=return_times,
            final_time=time,
            time_exhausted=time_exhausted,
            trace=None,
            final_states=final_states,
        )

    return run


# ----------------------------------------------------------------------
# Algorithms 1 and fast-6: the (x, (a, b) pair[, r]) register family
# ----------------------------------------------------------------------

def _make_pair_kernel(algorithm, topology, inputs, *, reduction: bool):
    """Fused loop for Algorithm 1 (``reduction=False``) / fast-six.

    The pair algorithms return the *color pair* ``(a, b)`` and compare
    whole pairs against neighbors; component updates filter by
    identifier order (``a`` against higher-id, ``b`` against lower-id
    neighbors).
    """
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring6 import SixState
    from repro.extensions.fast_six import FastSixState, INFINITE_ROUND

    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    nb1, nb2 = arrays
    n = topology.n
    if reduction:
        green_light = algorithm.green_light

    def run(schedule, max_time, idle_limit) -> ExecutionResult:
        st_x = list(inputs)
        st_a = [0] * n
        st_b = [0] * n
        st_r: List[Any] = [0] * n
        rg_x = [0] * n
        rg_a = [0] * n
        rg_b = [0] * n
        rg_r: List[Any] = [0] * n
        rg_w = [False] * n

        done = [False] * n
        outputs: Dict[int, Any] = {}
        return_times: Dict[int, int] = {}
        activations = [0] * n
        time = 0
        idle_streak = 0
        time_exhausted = False
        remaining = n
        INF = INFINITE_ROUND

        for raw_step in schedule.steps_fast(n):
            if remaining == 0:
                break
            time += 1
            if time > max_time:
                time -= 1
                time_exhausted = True
                break

            working = [p for p in raw_step if not done[p]]
            if not working:
                idle_streak += 1
                if idle_limit and idle_streak >= idle_limit:
                    break
                continue
            idle_streak = 0

            for p in working:
                rg_x[p] = st_x[p]
                rg_a[p] = st_a[p]
                rg_b[p] = st_b[p]
                if reduction:
                    rg_r[p] = st_r[p]
                rg_w[p] = True

            for p in working:
                activations[p] += 1
                x = st_x[p]
                a = st_a[p]
                b = st_b[p]
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and rg_w[q1]
                w2 = q2 >= 0 and rg_w[q2]

                # Pair return rule: my (a, b) differs from every
                # awakened neighbor's published pair.
                clash = (
                    (w1 and a == rg_a[q1] and b == rg_b[q1])
                    or (w2 and a == rg_a[q2] and b == rg_b[q2])
                )
                if not clash:
                    outputs[p] = (a, b); return_times[p] = time
                    done[p] = True; remaining -= 1
                    continue

                # mex of first components over higher-id awake
                # neighbors, second components over lower-id ones.
                h1 = rg_a[q1] if w1 and rg_x[q1] > x else -1
                h2 = rg_a[q2] if w2 and rg_x[q2] > x else -1
                v = 0
                while v == h1 or v == h2:
                    v += 1
                new_a = v
                l1 = rg_b[q1] if w1 and rg_x[q1] < x else -1
                l2 = rg_b[q2] if w2 and rg_x[q2] < x else -1
                v = 0
                while v == l1 or v == l2:
                    v += 1
                st_a[p] = new_a
                st_b[p] = v

                if reduction and w1 and w2:
                    r = st_r[p]
                    if r < INF:
                        r1 = rg_r[q1]; r2 = rg_r[q2]
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = rg_x[q1]; x2 = rg_x[q2]
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                st_r[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo:
                                    st_x[p] = candidate
                            else:
                                st_r[p] = INF
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        st_x[p] = v

        if reduction:
            final_states = {
                p: FastSixState(x=st_x[p], r=st_r[p], a=st_a[p], b=st_b[p])
                for p in range(n)
            }
        else:
            final_states = {
                p: SixState(x=st_x[p], a=st_a[p], b=st_b[p])
                for p in range(n)
            }
        return ExecutionResult(
            n=n,
            outputs=outputs,
            activations={p: activations[p] for p in range(n)},
            return_times=return_times,
            final_time=time,
            time_exhausted=time_exhausted,
            trace=None,
            final_states=final_states,
        )

    return run


# ----------------------------------------------------------------------
# Registrations (imported lazily to keep repro.model import-light)
# ----------------------------------------------------------------------

def _register_builtin_kernels() -> None:
    from repro.core.coloring5 import FiveColoring
    from repro.core.coloring6 import SixColoring
    from repro.core.fast_coloring5 import FastFiveColoring
    from repro.extensions.fast_six import FastSixColoring

    @register_kernel(FiveColoring)
    def _alg2_kernel(algorithm, topology, inputs):
        return _make_ab_kernel(algorithm, topology, inputs, reduction=False)

    @register_kernel(FastFiveColoring)
    def _alg3_kernel(algorithm, topology, inputs):
        return _make_ab_kernel(algorithm, topology, inputs, reduction=True)

    @register_kernel(SixColoring)
    def _alg1_kernel(algorithm, topology, inputs):
        return _make_pair_kernel(algorithm, topology, inputs, reduction=False)

    @register_kernel(FastSixColoring)
    def _fast6_kernel(algorithm, topology, inputs):
        return _make_pair_kernel(algorithm, topology, inputs, reduction=True)


_register_builtin_kernels()
