"""Vectorized batch engine: lockstep execution of replica ensembles.

Every quantitative claim in this repo is validated over *ensembles* —
(seed × input family × schedule) grids of runs that share one
configuration (same algorithm, same topology, same ``n``) and differ
only in their identifiers and activation streams.  The fast-path
engine (:mod:`repro.model.fastpath`) executes those replicas one at a
time; this module executes ``B`` of them *in lockstep*: private state,
register images and per-process clocks live in ``(B, n)`` arrays, the
schedulers hand out whole per-lockstep activation rows through the
vectorized :meth:`~repro.model.schedule.Schedule.steps_batch` API, and
one pass of array operations advances every replica at once.

Correctness discipline is inherited unchanged from
:mod:`repro.model.kernels`: a batched run must reproduce the per-run
engines' :class:`~repro.model.execution.ExecutionResult` replica by
replica, *bit-identically* — outputs, activation counts, return times,
final times, ``time_exhausted`` flags and final states.  The
differential harness (``tests/model/test_batch_equivalence.py``) pins
this for every registered algorithm, across ragged termination (each
replica retires the moment its own run ends — exhausted schedule,
``max_time``, idle cutoff, or everyone returned — without perturbing
the others) and crash-plan schedules.

numpy is an *optional accelerator*: when it is importable (and not
disabled via :data:`NUMPY_ENV_FLAG`) the batched kernels run fully
vectorized, including a bank of CPython-identical Mersenne Twister
streams (:class:`MTBatch`) so that Bernoulli activation masks match
``random.Random`` double for double.  Without numpy the same lockstep
driver runs over plain Python lists — slower, but dependency-free and
bit-identical, so the core library still has no hard requirements.

Like the scalar kernels, batched kernels are looked up by *exact*
algorithm type (:data:`BATCH_KERNELS`) and must decline (return
``None``) whenever they cannot guarantee equivalence — unsupported
topology degree, heterogeneous ablation flags, or (numpy tier only)
identifiers too large for exact float64 bit-twiddling, in which case
the pure-Python tier takes over automatically.
"""

from __future__ import annotations

import os
import random
from collections.abc import Mapping as _MappingABC
from functools import lru_cache
from itertools import repeat
from time import perf_counter
from time import time as wall_clock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ExecutionError
from repro.model.execution import (
    DEFAULT_MAX_TIME,
    ExecutionResult,
)
from repro.model.kernels import _degree2_arrays
from repro.model.schedule import Schedule
from repro.model.topology import Topology
from repro.obs.metrics import active_registry, record_execution
from repro.obs.trace import is_recording, record_timed

__all__ = [
    "NUMPY_ENV_FLAG",
    "load_numpy",
    "numpy_accelerated",
    "MTBatch",
    "batched_steps",
    "BATCH_KERNELS",
    "register_batch_kernel",
    "build_batch_kernel",
    "run_batch",
    "run_single_batch",
]

#: Set this environment variable to a non-empty value (other than "0")
#: to force the pure-Python fallback even when numpy is importable —
#: the switch the no-numpy CI leg and the differential tests use.
NUMPY_ENV_FLAG = "REPRO_BATCH_DISABLE_NUMPY"

#: ``r = ∞`` sentinel of the numpy tier: the green-light counter lives
#: in an int64 lane, and every real counter value is tiny, so a huge
#: finite sentinel preserves all comparisons; it is translated back to
#: ``math.inf`` when results are materialized.
_INF64 = 1 << 62


def load_numpy():
    """The numpy module, or ``None`` (absent or explicitly disabled)."""
    if os.environ.get(NUMPY_ENV_FLAG, "0") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy


def numpy_accelerated() -> bool:
    """Whether batched kernels will use the numpy tier right now."""
    return load_numpy() is not None


# ----------------------------------------------------------------------
# A bank of CPython-identical MT19937 streams
# ----------------------------------------------------------------------

@lru_cache(maxsize=512)
def _mt_state(seed) -> Tuple[Any, int]:
    """The freshly-seeded MT19937 state of ``random.Random(seed)``.

    Returns the 624-word key (as uint32, ready for ``set_state``) and
    the initial position.  A pure function of the seed — and campaigns
    reuse the same seed grid across algorithms and input families — so
    the expansion is memoized; ``set_state`` copies the key, keeping
    the cached array immutable.
    """
    import numpy as np  # guarded by the MTBatch constructor

    words = random.Random(seed).getstate()[1]
    return np.asarray(words[:624], dtype=np.uint32), words[624]


class MTBatch:
    """A bank of ``B`` CPython-identical Mersenne Twister streams.

    Stream ``i`` reproduces ``random.Random(seeds[i]).random()`` *bit
    for bit*: CPython and numpy's legacy ``RandomState`` share the same
    MT19937 core and the same 53-bit ``genrand_res53`` double
    construction, so lifting the 624-word state (plus position) out of
    ``random.Random.getstate()`` and injecting it into a
    ``RandomState`` yields the exact scalar stream at C speed.  This is
    what lets the batched Bernoulli scheduler draw whole activation
    matrices while consuming exactly the RNG stream the scalar
    scheduler would — the equivalence harness diffs this replica by
    replica.

    Streams consume independently (Bernoulli redraws desynchronize
    them); each ``RandomState`` keeps its own position.  Doubles are
    drawn from the underlying generators in blocks of ``block``
    requests and buffered per stream: the *served* sequence is still
    exactly the scalar stream, double for double, and the streams are
    private to one batch run, so drawing ahead is unobservable.
    """

    #: Free list of ``RandomState`` shells shared by all banks —
    #: constructing one runs full ``seed(0)`` initialization (~0.15 ms)
    #: only to have its state overwritten, so retired shells are
    #: recycled instead.  ``set_state`` runs before every reuse.
    _pool: List[Any] = []

    def __init__(self, seeds: Sequence[int], np=None, block: int = 8):
        self._np = np = np if np is not None else load_numpy()
        if np is None:
            raise ExecutionError("MTBatch requires the numpy accelerator")
        self._block = max(1, block)
        pool = MTBatch._pool
        self._streams = []
        self._buffers: List[Any] = []
        for seed in seeds:
            key, pos = _mt_state(seed)
            stream = pool.pop() if pool else np.random.RandomState(0)
            stream.set_state(("MT19937", key, pos))
            self._streams.append(stream)
            self._buffers.append(None)

    def retire(self, row: int) -> None:
        """Hint that one stream will never be consumed again."""
        stream = self._streams[row]
        if stream is not None and len(MTBatch._pool) < 256:
            MTBatch._pool.append(stream)
        self._streams[row] = None
        self._buffers[row] = None

    def __del__(self):
        # A bank is dropped mid-iteration when its run ends before its
        # schedules do; recycle the shells it still holds.
        try:
            pool = MTBatch._pool
            for stream in self._streams:
                if stream is not None and len(pool) < 256:
                    pool.append(stream)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def take(self, rows: Sequence[int], count: int):
        """``(len(rows), count)`` fresh doubles, one row per stream.

        Serves ``count`` doubles from each listed stream, exactly the
        values ``count`` calls of ``random.Random.random`` would
        produce next.
        """
        np = self._np
        out = np.empty((len(rows), count), dtype=np.float64)
        for k, row in enumerate(rows):
            buf = self._buffers[row]
            if buf is None or buf.shape[0] < count:
                have = 0 if buf is None else buf.shape[0]
                fresh = self._streams[row].random_sample(
                    max(count - have, count * self._block)
                )
                buf = fresh if not have else np.concatenate((buf, fresh))
            out[k] = buf[:count]
            self._buffers[row] = buf[count:]
        return out


# ----------------------------------------------------------------------
# Merging per-type steps_batch generators into one lockstep stream
# ----------------------------------------------------------------------

class _GroupActive:
    """Group-local, read-only view of the engine's live-replica flags.

    ``steps_batch`` implementations consult this so that retired
    replicas stop consuming their schedule (and RNG) streams, exactly
    like the per-run engines stop iterating a finished run's schedule.
    """

    __slots__ = ("_flags", "_indices")

    def __init__(self, flags: List[bool], indices: List[int]):
        self._flags = flags
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, i: int) -> bool:
        return self._flags[self._indices[i]]


def batched_steps(schedules: Sequence[Schedule], n: int, flags: List[bool]):
    """Merge per-replica schedules into one per-lockstep row stream.

    Groups the schedules by *exact* type (mirroring kernel dispatch: a
    subclass may override iteration semantics, so it gets its own
    group, served by whatever ``steps_batch`` it inherits or defines)
    and drives one :meth:`~repro.model.schedule.Schedule.steps_batch`
    generator per group.  Yields, per lockstep, a list with one row
    per replica: ``None`` for an exhausted (or already retired)
    schedule, otherwise an activation row (id sequence or bool mask).

    ``flags`` is the engine-owned liveness list; the per-group
    generators see it through a read-only view and must not advance
    the streams of retired replicas.
    """
    groups: Dict[Type, List[int]] = {}
    for j, schedule in enumerate(schedules):
        groups.setdefault(type(schedule), []).append(j)
    gens = []
    for sched_type, indices in groups.items():
        gen = sched_type.steps_batch(
            [schedules[j] for j in indices], n, _GroupActive(flags, indices)
        )
        gens.append((indices, gen))
    B = len(schedules)
    while True:
        rows: List[Any] = [None] * B
        for indices, gen in gens:
            group_rows = next(gen)
            for k, j in enumerate(indices):
                rows[j] = group_rows[k]
        yield rows


# ----------------------------------------------------------------------
# Batched kernel registry
# ----------------------------------------------------------------------

#: Exact algorithm type → batched kernel factory with signature
#: ``factory(algorithms, topology, inputs_list) -> Optional[runner]``
#: where ``runner(schedules, max_time, idle_limit)`` returns
#: ``(results, stats)`` — one ``ExecutionResult`` per replica plus the
#: occupancy statistics ``{"locksteps": int, "live_sum": int}``.
BATCH_KERNELS: Dict[Type, Callable] = {}


def register_batch_kernel(algorithm_type: Type):
    """Class decorator registering ``factory`` for ``algorithm_type``."""

    def decorate(factory: Callable) -> Callable:
        BATCH_KERNELS[algorithm_type] = factory
        return factory

    return decorate


def build_batch_kernel(
    algorithms: Sequence[Any], topology: Topology, inputs_list: Sequence[Sequence[Any]]
):
    """The batched runner for this replica ensemble, or ``None``.

    Exact-type dispatch over the *shared* algorithm type; mixed types,
    unregistered types and configurations the factory declines all
    yield ``None`` (callers fall back to per-run execution).
    """
    alg_type = type(algorithms[0])
    if any(type(a) is not alg_type for a in algorithms[1:]):
        return None
    factory = BATCH_KERNELS.get(alg_type)
    if factory is None:
        return None
    return factory(algorithms, topology, inputs_list)


def _ids_as_int64(np, inputs_list: Sequence[Sequence[Any]]):
    """The identifiers as a ``(B, n)`` int64 array, or ``None``.

    The numpy tier keeps identifiers in int64 lanes and derives bit
    lengths through ``frexp``, which is exact only below ``2**53`` —
    the ``huge`` input family (256-bit ids) must take the pure tier,
    as must any non-integer identifiers (which numpy would silently
    coerce; ``bool`` is fine, ``True == 1`` survives the round trip).
    """
    try:
        raw = np.asarray(inputs_list)
    except (OverflowError, TypeError, ValueError):
        return None
    if raw.dtype != np.bool_ and not np.issubdtype(raw.dtype, np.integer):
        return None
    arr = raw.astype(np.int64)
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= 1 << 53):
        return None
    return arr


def _row_to_ids(row: Any) -> Sequence[int]:
    """Normalize a steps_batch row to an id sequence (pure tier)."""
    if isinstance(row, (list, tuple, range, frozenset, set)):
        return row
    # A numpy mask row (Bernoulli may vectorize even when the kernel
    # itself runs the pure tier, e.g. under huge identifiers).
    return row.nonzero()[0].tolist()


# ----------------------------------------------------------------------
# Lockstep drivers (bookkeeping shared by all kernel families)
# ----------------------------------------------------------------------

def _drive_numpy(np, schedules, n, B, max_time, idle_limit, undone,
                 remaining, step_cells):
    """Numpy lockstep driver: assemble masks, retire replicas, step.

    Per-replica clocks replicate the scalar kernel loop exactly: a
    ``None`` row ends the run without advancing time; stepping past
    ``max_time`` rolls time back and flags exhaustion; a step whose
    working set is empty only bumps the idle streak.  A replica is
    retired the moment nothing remains for it — matching the scalar
    engine, whose next drawn step would be discarded unused.

    The working set is handed to ``step_cells`` as *flat* cell indices
    into the kernels' ``B × (n + 1)`` planes (column ``n`` is the
    kernels' sentinel slot and never activates), together with the
    replica index of each cell and the per-replica clock vector —
    compact arrays sized by the live frontier, not by ``B × n``.
    ``undone`` is the kernel-owned not-yet-returned plane.
    """
    N1 = n + 1
    flags = [True] * B
    times = [0] * B
    idle = [0] * B
    exhausted = [False] * B
    live = B
    locksteps = 0
    live_sum = 0
    W = np.zeros((B, N1), dtype=bool)
    Wn = W[:, :n]
    Wf = W.reshape(-1)
    tvec = np.zeros(B, dtype=np.int64)
    merged = batched_steps(schedules, n, flags)
    while live:
        rows = next(merged)
        locksteps += 1
        live_sum += live
        W[:] = False
        stepping = []
        for b in range(B):
            if not flags[b]:
                continue
            row = rows[b]
            if row is None:
                flags[b] = False
                live -= 1
                continue
            if times[b] >= max_time:
                exhausted[b] = True
                flags[b] = False
                live -= 1
                continue
            times[b] += 1
            tvec[b] = times[b]
            if isinstance(row, np.ndarray):
                Wn[b] = row
            else:
                Wn[b, list(row)] = True
            stepping.append(b)
        if not stepping:
            continue
        np.logical_and(W, undone, out=W)
        wc = W.sum(axis=1)
        any_work = False
        for b in stepping:
            if wc[b] == 0:
                idle[b] += 1
                if idle_limit and idle[b] >= idle_limit:
                    flags[b] = False
                    live -= 1
            else:
                idle[b] = 0
                any_work = True
        if not any_work:
            continue
        flat = np.flatnonzero(Wf)
        step_cells(flat, flat // N1, tvec)
        for b in stepping:
            if wc[b] and remaining[b] == 0:
                flags[b] = False
                live -= 1
    return times, exhausted, {"locksteps": locksteps, "live_sum": live_sum}


def _drive_pure(schedules, n, B, max_time, idle_limit, done, remaining,
                step_one):
    """Pure-Python lockstep driver: same clockwork over plain lists.

    ``step_one(b, working, time)`` executes one replica's step and
    returns how many of its processes returned; ``done[b]`` /
    ``remaining[b]`` are maintained here.
    """
    flags = [True] * B
    times = [0] * B
    idle = [0] * B
    exhausted = [False] * B
    live = B
    locksteps = 0
    live_sum = 0
    merged = batched_steps(schedules, n, flags)
    while live:
        rows = next(merged)
        locksteps += 1
        live_sum += live
        for b in range(B):
            if not flags[b]:
                continue
            row = rows[b]
            if row is None:
                flags[b] = False
                live -= 1
                continue
            if times[b] >= max_time:
                exhausted[b] = True
                flags[b] = False
                live -= 1
                continue
            times[b] += 1
            done_b = done[b]
            working = [p for p in _row_to_ids(row) if not done_b[p]]
            if not working:
                idle[b] += 1
                if idle_limit and idle[b] >= idle_limit:
                    flags[b] = False
                    live -= 1
                continue
            idle[b] = 0
            remaining[b] -= step_one(b, working, times[b])
            if remaining[b] == 0:
                flags[b] = False
                live -= 1
    return times, exhausted, {"locksteps": locksteps, "live_sum": live_sum}


# ----------------------------------------------------------------------
# Vectorized primitives shared by the numpy kernel families
# ----------------------------------------------------------------------

class _LazyMapping(_MappingABC):
    """A result mapping materialized on first access.

    Building the per-replica result dicts (outputs, return times,
    activation counts, ``n`` NamedTuple final states) costs more than
    the whole lockstep compute on fast-terminating ensembles, and most
    consumers read only a slice of them — so the numpy tier defers
    construction until something actually looks.  Equality with plain
    dicts works in both directions: ``dict.__eq__`` returns
    ``NotImplemented`` for a non-dict operand, handing control to this
    class, which materializes and compares values — exactly what the
    differential harness exercises.
    """

    __slots__ = ("_build", "_states")

    def __init__(self, build: Callable[[], Dict[int, Any]]):
        self._build = build
        self._states: Optional[Dict[int, Any]] = None

    def _materialize(self) -> Dict[int, Any]:
        if self._states is None:
            self._states = self._build()
            self._build = None
        return self._states

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def __contains__(self, key) -> bool:
        return key in self._materialize()

    def __eq__(self, other) -> Any:
        if isinstance(other, _LazyMapping):
            other = other._materialize()
        if not isinstance(other, _MappingABC):
            return NotImplemented
        if not isinstance(other, dict):
            other = dict(other)
        return self._materialize() == other

    def __ne__(self, other) -> Any:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return repr(self._materialize())


def _mex_bits(np, mask):
    """mex of the values marked taken in a per-cell bitmask.

    ``mask`` has bit ``v + 1`` set when value ``v`` is taken (so a −1
    "absent" candidate lands on bit 0, which is forced set and
    ignored).  The mex is then the position of the lowest clear bit
    above bit 0, minus one — isolated with two's-complement arithmetic
    and read off the ``frexp`` exponent.  Exact while candidates stay
    below 52 (register colors are bounded by the palettes, ≤ 5).
    """
    filled = mask | 1
    low = ~filled & (filled + 1)
    return np.frexp(low.astype(np.float64))[1] - 2


def _mex_np(np, candidates):
    """Vectorized mex over per-cell candidate arrays (−1 = absent).

    With ``k`` candidates the mex is at most ``k``, and each pass
    advances ``v`` by exactly one while ``v`` is still taken, so ``k``
    passes always converge.
    """
    stacked = np.stack(candidates)
    v = np.zeros(stacked.shape[1], dtype=np.int64)
    for _ in range(len(candidates)):
        v += (stacked == v).any(axis=0)
    return v


def _rid_np(np, x, y):
    """Vectorized :func:`repro.core.coin_tossing.reduce_identifier`.

    Bit lengths come from ``frexp`` exponents, exact only below
    ``2**53`` — the factories gate identifiers accordingly.
    """
    blx = np.frexp(x.astype(np.float64))[1].astype(np.int64)
    bly = np.frexp(y.astype(np.float64))[1].astype(np.int64)
    cap = np.minimum(blx, bly)
    diff = x ^ y
    lsb_len = np.frexp((diff & -diff).astype(np.float64))[1].astype(np.int64)
    i = np.where(diff == 0, cap, np.minimum(cap, lsb_len - 1))
    return 2 * i + ((x >> i) & 1)


# ----------------------------------------------------------------------
# Algorithms 2 and 3, batched: the (x, a, b[, r]) register family
# ----------------------------------------------------------------------

def _make_batch_ab_kernel(algorithms, topology, inputs_list, *, reduction):
    """Batched fused loop for Algorithm 2 / Algorithm 3 replicas."""
    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    nb1, nb2 = arrays
    n = topology.n
    green_light = guarded_adoption = True
    if reduction:
        green_light = algorithms[0].green_light
        guarded_adoption = algorithms[0].guarded_adoption
        for alg in algorithms[1:]:
            if (alg.green_light != green_light
                    or alg.guarded_adoption != guarded_adoption):
                return None

    np = load_numpy()
    if np is not None:
        init_x = _ids_as_int64(np, inputs_list)
        if init_x is not None:
            return _numpy_ab_runner(
                np, len(algorithms), n, nb1, nb2, init_x,
                reduction=reduction, green_light=green_light,
                guarded_adoption=guarded_adoption,
            )
    return _pure_ab_runner(
        len(algorithms), n, nb1, nb2, inputs_list,
        reduction=reduction, green_light=green_light,
        guarded_adoption=guarded_adoption,
    )


def _numpy_ab_runner(np, B, n, nb1, nb2, init_x, *, reduction,
                     green_light, guarded_adoption):
    # State and register planes are flat int64 arrays of length
    # ``B × (n + 1)``: cell (b, p) lives at ``b·(n+1) + p`` and column
    # ``n`` of every replica is a permanent sentinel cell standing in
    # for absent *and* not-yet-awake neighbors.  The whole (x, a, b)
    # triple is packed into one word, ``x << 6 | a << 3 | b`` — ids are
    # < 2⁵³ (gated by :func:`_ids_as_int64`) and colors are ≤ 4, so
    # each field is exact and the register sentinel −1 unpacks under
    # arithmetic shifts to x = −1, a = b = 7, values no real state can
    # take: awakeness reduces to ``x1 >= 0``, a color never equals 7,
    # and the two-/one-/zero-awake-neighbor arms of the scalar kernel
    # collapse into one vector expression.  Packing means publishing a
    # register image is one gather plus one scatter, and reading a
    # neighbor is one gather.  All per-lockstep work happens on compact
    # frontier-sized arrays via ``take`` / fancy scatters — never on
    # boolean-masked (B, n) planes — and activation counting is
    # deferred to a single :func:`numpy.bincount` over the concatenated
    # frontiers at the end of the run.
    from repro.core.coloring5 import FiveState
    from repro.core.fast_coloring5 import FastState, INFINITE_ROUND

    N1 = n + 1
    size = B * N1
    nb1a = np.asarray(nb1, dtype=np.int64)
    nb2a = np.asarray(nb2, dtype=np.int64)
    q1t = np.where(nb1a >= 0, nb1a, n)  # absent neighbor → sentinel slot
    q2t = np.where(nb2a >= 0, nb2a, n)

    def run(schedules, max_time, idle_limit):
        sP = np.zeros(size, dtype=np.int64)
        sP.reshape(B, N1)[:, :n] = init_x << 6  # a = b = 0 initially
        sr = np.zeros(size, dtype=np.int64)
        rP = np.full(size, -1, dtype=np.int64)
        rr = np.full(size, -1, dtype=np.int64)
        undone = np.zeros((B, N1), dtype=bool)
        undone[:, :n] = True
        undone_f = undone.reshape(-1)
        out_c = np.zeros(size, dtype=np.int64)
        ret_time = np.zeros(size, dtype=np.int64)
        remaining = np.full(B, n, dtype=np.int64)
        frontiers: List[Any] = []

        def step_cells(flat, bidx, tvec):
            p = flat - bidx * N1
            base = flat - p
            q1f = base + q1t.take(p)
            q2f = base + q2t.take(p)
            # Phase 1: publish the packed register image, keeping the
            # gathered word for the read/update phases.
            v = sP.take(flat)
            rP[flat] = v
            if reduction:
                rw = sr.take(flat)
                rr[flat] = rw
            frontiers.append(flat)
            # Phase 2: read both neighbors' packed images.
            g1 = rP.take(q1f)
            g2 = rP.take(q2f)
            aw = (v >> 3) & 7
            bw = v & 7
            a1 = (g1 >> 3) & 7
            b1 = g1 & 7
            a2 = (g2 >> 3) & 7
            b2 = g2 & 7
            ok_a = (aw != a1) & (aw != b1) & (aw != a2) & (aw != b2)
            ok_b = (bw != a1) & (bw != b1) & (bw != a2) & (bw != b2)
            ret = ok_a | ok_b
            if ret.any():
                rsel = flat[ret]
                rbx = bidx[ret]
                out_c[rsel] = np.where(ok_a, aw, bw)[ret]
                ret_time[rsel] = tvec.take(rbx)
                undone_f[rsel] = False
                remaining[:] -= np.bincount(rbx, minlength=B)
            cont = ~ret
            if not cont.any():
                return
            csel = flat[cont]
            xc = v[cont] >> 6
            x1 = g1[cont] >> 6  # sentinel −1 shifts to −1
            x2 = g2[cont] >> 6
            a1c = a1[cont]
            b1c = b1[cont]
            a2c = a2[cont]
            b2c = b2[cont]
            hi1 = x1 > xc  # asleep/absent ⇒ x1 = −1 ⇒ never "higher"
            hi2 = x2 > xc
            bb1 = (1 << (a1c + 1)) | (1 << (b1c + 1))
            bb2 = (1 << (a2c + 1)) | (1 << (b2c + 1))
            na = _mex_bits(
                np, np.where(hi1, bb1, 0) | np.where(hi2, bb2, 0)
            )
            nb = _mex_bits(np, bb1 | bb2)

            if reduction:
                rc = rw[cont]
                red = (x1 >= 0) & (x2 >= 0) & (rc < _INF64)
                if green_light:
                    red &= rc <= np.minimum(
                        rr.take(q1f[cont]), rr.take(q2f[cont])
                    )
                if red.any():
                    # ``xc`` is a fresh shifted array (not a view), and
                    # the mid/ext index sets are disjoint, so adopted
                    # identifiers can be written into it in place.
                    lo = np.minimum(x1, x2)
                    hi = np.maximum(x1, x2)
                    inside = (lo < xc) & (xc < hi)
                    mid = red & inside
                    if mid.any():
                        midx = np.flatnonzero(mid)
                        lom = lo.take(midx)
                        sr[csel.take(midx)] = rc.take(midx) + 1
                        cand = _rid_np(np, xc.take(midx), lom)
                        if guarded_adoption:
                            adopt = cand < lom
                            xc[midx[adopt]] = cand[adopt]
                        else:
                            xc[midx] = cand
                    ext = red & ~inside
                    if ext.any():
                        eidx = np.flatnonzero(ext)
                        sr[csel.take(eidx)] = _INF64
                        xe = xc.take(eidx)
                        low = xe < lo.take(eidx)
                        if low.any():
                            lidx = eidx[low]
                            xl = xe[low]
                            f1 = _rid_np(np, x1.take(lidx), xl)
                            f2 = _rid_np(np, x2.take(lidx), xl)
                            vv = np.zeros(len(xl), dtype=np.int64)
                            for _ in range(2):
                                vv += (vv == f1) | (vv == f2)
                            adopt = vv < xl
                            xc[lidx[adopt]] = vv[adopt]

            sP[csel] = (xc << 6) | (na << 3) | nb

        times, exhausted, stats = _drive_numpy(
            np, schedules, n, B, max_time, idle_limit, undone, remaining,
            step_cells,
        )

        if frontiers:
            act = np.bincount(np.concatenate(frontiers), minlength=size)
        else:
            act = np.zeros(size, dtype=np.int64)

        results = []
        ids = list(range(n))
        SP = sP.reshape(B, N1)
        SR = sr.reshape(B, N1)
        ACT = act.reshape(B, N1)
        OUT = out_c.reshape(B, N1)
        RT = ret_time.reshape(B, N1)
        for bi in range(B):
            # Every result mapping materializes lazily: consumers
            # typically read one or two of them (often none), and the
            # rows stay alive inside the closures either way.
            def build_outputs(bi=bi):
                pret = np.flatnonzero(~undone[bi, :n])
                return dict(zip(pret.tolist(), OUT[bi, pret].tolist()))

            def build_return_times(bi=bi):
                pret = np.flatnonzero(~undone[bi, :n])
                return dict(zip(pret.tolist(), RT[bi, pret].tolist()))

            def build_activations(bi=bi):
                return dict(zip(ids, ACT[bi, :n].tolist()))

            # tuple.__new__ builds the NamedTuples without entering
            # their generated __new__ — same objects, C-speed.
            def build_states(row=SP[bi, :n], rrow=SR[bi, :n]):
                xs = (row >> 6).tolist()
                as_ = ((row >> 3) & 7).tolist()
                bs = (row & 7).tolist()
                if reduction:
                    rs = [
                        r if r < _INF64 else INFINITE_ROUND
                        for r in rrow.tolist()
                    ]
                    return dict(zip(ids, map(
                        tuple.__new__, repeat(FastState),
                        zip(xs, rs, as_, bs),
                    )))
                return dict(zip(ids, map(
                    tuple.__new__, repeat(FiveState), zip(xs, as_, bs)
                )))

            results.append(ExecutionResult(
                n=n,
                outputs=_LazyMapping(build_outputs),
                activations=_LazyMapping(build_activations),
                return_times=_LazyMapping(build_return_times),
                final_time=times[bi],
                time_exhausted=exhausted[bi],
                trace=None,
                final_states=_LazyMapping(build_states),
            ))
        return results, stats

    return run


def _pure_ab_runner(B, n, nb1, nb2, inputs_list, *, reduction, green_light,
                    guarded_adoption):
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring5 import FiveState
    from repro.core.fast_coloring5 import FastState, INFINITE_ROUND

    INF = INFINITE_ROUND

    def run(schedules, max_time, idle_limit):
        st_x = [list(inputs) for inputs in inputs_list]
        st_a = [[0] * n for _ in range(B)]
        st_b = [[0] * n for _ in range(B)]
        st_r: List[List[Any]] = [[0] * n for _ in range(B)]
        rg_x = [[0] * n for _ in range(B)]
        rg_a = [[0] * n for _ in range(B)]
        rg_b = [[0] * n for _ in range(B)]
        rg_r: List[List[Any]] = [[0] * n for _ in range(B)]
        rg_w = [[False] * n for _ in range(B)]
        done = [[False] * n for _ in range(B)]
        outputs: List[Dict[int, Any]] = [{} for _ in range(B)]
        return_times: List[Dict[int, int]] = [{} for _ in range(B)]
        activations = [[0] * n for _ in range(B)]
        remaining = [n] * B

        def step_one(bi, working, time):
            sx, sa, sb, sr = st_x[bi], st_a[bi], st_b[bi], st_r[bi]
            gx, ga, gb, gr, gw = (
                rg_x[bi], rg_a[bi], rg_b[bi], rg_r[bi], rg_w[bi]
            )
            dn, outs, rts, acts = (
                done[bi], outputs[bi], return_times[bi], activations[bi]
            )
            returned = 0
            for p in working:
                gx[p] = sx[p]
                ga[p] = sa[p]
                gb[p] = sb[p]
                if reduction:
                    gr[p] = sr[p]
                gw[p] = True
            for p in working:
                acts[p] += 1
                x = sx[p]
                a = sa[p]
                b = sb[p]
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and gw[q1]
                w2 = q2 >= 0 and gw[q2]
                if w1 and w2:
                    a1 = ga[q1]; b1 = gb[q1]
                    a2 = ga[q2]; b2 = gb[q2]
                    if a != a1 and a != b1 and a != a2 and a != b2:
                        outs[p] = a; rts[p] = time
                        dn[p] = True; returned += 1
                        continue
                    if b != a1 and b != b1 and b != a2 and b != b2:
                        outs[p] = b; rts[p] = time
                        dn[p] = True; returned += 1
                        continue
                    taken_all = {a1, b1, a2, b2}
                    taken_higher = set()
                    if gx[q1] > x:
                        taken_higher.add(a1); taken_higher.add(b1)
                    if gx[q2] > x:
                        taken_higher.add(a2); taken_higher.add(b2)
                elif w1 or w2:
                    q = q1 if w1 else q2
                    aq = ga[q]; bq = gb[q]
                    if a != aq and a != bq:
                        outs[p] = a; rts[p] = time
                        dn[p] = True; returned += 1
                        continue
                    if b != aq and b != bq:
                        outs[p] = b; rts[p] = time
                        dn[p] = True; returned += 1
                        continue
                    taken_all = {aq, bq}
                    taken_higher = {aq, bq} if gx[q] > x else set()
                else:
                    outs[p] = a; rts[p] = time
                    dn[p] = True; returned += 1
                    continue

                v = 0
                while v in taken_higher:
                    v += 1
                sa[p] = v
                v = 0
                while v in taken_all:
                    v += 1
                sb[p] = v

                if reduction and w1 and w2:
                    r = sr[p]
                    if r < INF:
                        r1 = gr[q1]; r2 = gr[q2]
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = gx[q1]; x2 = gx[q2]
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                sr[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo or not guarded_adoption:
                                    sx[p] = candidate
                            else:
                                sr[p] = INF
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        sx[p] = v
            return returned

        times, exhausted, stats = _drive_pure(
            schedules, n, B, max_time, idle_limit, done, remaining, step_one
        )

        results = []
        for bi in range(B):
            if reduction:
                final_states = {
                    p: FastState(
                        x=st_x[bi][p], r=st_r[bi][p],
                        a=st_a[bi][p], b=st_b[bi][p],
                    )
                    for p in range(n)
                }
            else:
                final_states = {
                    p: FiveState(x=st_x[bi][p], a=st_a[bi][p], b=st_b[bi][p])
                    for p in range(n)
                }
            results.append(ExecutionResult(
                n=n,
                outputs=outputs[bi],
                activations={p: activations[bi][p] for p in range(n)},
                return_times=return_times[bi],
                final_time=times[bi],
                time_exhausted=exhausted[bi],
                trace=None,
                final_states=final_states,
            ))
        return results, stats

    return run


# ----------------------------------------------------------------------
# Algorithms 1 and fast-6, batched: the (x, (a, b) pair[, r]) family
# ----------------------------------------------------------------------

def _make_batch_pair_kernel(algorithms, topology, inputs_list, *, reduction):
    """Batched fused loop for Algorithm 1 / fast-six replicas."""
    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    nb1, nb2 = arrays
    n = topology.n
    green_light = True
    if reduction:
        green_light = algorithms[0].green_light
        for alg in algorithms[1:]:
            if alg.green_light != green_light:
                return None

    np = load_numpy()
    if np is not None:
        init_x = _ids_as_int64(np, inputs_list)
        if init_x is not None:
            return _numpy_pair_runner(
                np, len(algorithms), n, nb1, nb2, init_x,
                reduction=reduction, green_light=green_light,
            )
    return _pure_pair_runner(
        len(algorithms), n, nb1, nb2, inputs_list,
        reduction=reduction, green_light=green_light,
    )


def _numpy_pair_runner(np, B, n, nb1, nb2, init_x, *, reduction,
                       green_light):
    # Same packed flat ``B × (n + 1)`` plane layout as the ab family
    # (see :func:`_numpy_ab_runner`): one int64 word ``x << 6 | a << 3
    # | b`` per cell, sentinel −1 unpacking to x = −1, a = b = 7 — a
    # neighbor is awake exactly when its published ``x`` is ≥ 0, and
    # the clash test needs no awakeness mask at all (a 7 register field
    # never equals a real color, which is ≤ 2 in this family).
    from repro.core.coloring6 import SixState
    from repro.extensions.fast_six import FastSixState, INFINITE_ROUND

    N1 = n + 1
    size = B * N1
    nb1a = np.asarray(nb1, dtype=np.int64)
    nb2a = np.asarray(nb2, dtype=np.int64)
    q1t = np.where(nb1a >= 0, nb1a, n)
    q2t = np.where(nb2a >= 0, nb2a, n)

    def run(schedules, max_time, idle_limit):
        sP = np.zeros(size, dtype=np.int64)
        sP.reshape(B, N1)[:, :n] = init_x << 6  # a = b = 0 initially
        sr = np.zeros(size, dtype=np.int64)
        rP = np.full(size, -1, dtype=np.int64)
        rr = np.full(size, -1, dtype=np.int64)
        undone = np.zeros((B, N1), dtype=bool)
        undone[:, :n] = True
        undone_f = undone.reshape(-1)
        out_a = np.zeros(size, dtype=np.int64)
        out_b = np.zeros(size, dtype=np.int64)
        ret_time = np.zeros(size, dtype=np.int64)
        remaining = np.full(B, n, dtype=np.int64)
        frontiers: List[Any] = []

        def step_cells(flat, bidx, tvec):
            p = flat - bidx * N1
            base = flat - p
            q1f = base + q1t.take(p)
            q2f = base + q2t.take(p)
            v = sP.take(flat)
            rP[flat] = v
            if reduction:
                rw = sr.take(flat)
                rr[flat] = rw
            frontiers.append(flat)
            g1 = rP.take(q1f)
            g2 = rP.take(q2f)
            aw = (v >> 3) & 7
            bw = v & 7
            a1 = (g1 >> 3) & 7
            b1 = g1 & 7
            a2 = (g2 >> 3) & 7
            b2 = g2 & 7
            clash = ((aw == a1) & (bw == b1)) | ((aw == a2) & (bw == b2))
            ret = ~clash
            if ret.any():
                rsel = flat[ret]
                rbx = bidx[ret]
                out_a[rsel] = aw[ret]
                out_b[rsel] = bw[ret]
                ret_time[rsel] = tvec.take(rbx)
                undone_f[rsel] = False
                remaining[:] -= np.bincount(rbx, minlength=B)
            if not clash.any():
                return
            cont = clash
            csel = flat[cont]
            xc = v[cont] >> 6
            x1 = g1[cont] >> 6  # sentinel −1 shifts to −1
            x2 = g2[cont] >> 6
            a1c = a1[cont]
            b1c = b1[cont]
            a2c = a2[cont]
            b2c = b2[cont]
            hi1 = x1 > xc  # asleep/absent ⇒ x1 = −1 ⇒ never "higher"
            hi2 = x2 > xc
            na = _mex_bits(np, (
                np.where(hi1, 1 << (a1c + 1), 0)
                | np.where(hi2, 1 << (a2c + 1), 0)
            ))
            lo1 = (x1 >= 0) & (x1 < xc)
            lo2 = (x2 >= 0) & (x2 < xc)
            nb = _mex_bits(np, (
                np.where(lo1, 1 << (b1c + 1), 0)
                | np.where(lo2, 1 << (b2c + 1), 0)
            ))

            if reduction:
                rc = rw[cont]
                red = (x1 >= 0) & (x2 >= 0) & (rc < _INF64)
                if green_light:
                    red &= rc <= np.minimum(
                        rr.take(q1f[cont]), rr.take(q2f[cont])
                    )
                if red.any():
                    # ``xc`` is a fresh shifted array and the mid/ext
                    # index sets are disjoint — adopt in place.
                    lo = np.minimum(x1, x2)
                    hi = np.maximum(x1, x2)
                    inside = (lo < xc) & (xc < hi)
                    mid = red & inside
                    if mid.any():
                        midx = np.flatnonzero(mid)
                        lom = lo.take(midx)
                        sr[csel.take(midx)] = rc.take(midx) + 1
                        cand = _rid_np(np, xc.take(midx), lom)
                        adopt = cand < lom
                        xc[midx[adopt]] = cand[adopt]
                    ext = red & ~inside
                    if ext.any():
                        eidx = np.flatnonzero(ext)
                        sr[csel.take(eidx)] = _INF64
                        xe = xc.take(eidx)
                        low = xe < lo.take(eidx)
                        if low.any():
                            lidx = eidx[low]
                            xl = xe[low]
                            f1 = _rid_np(np, x1.take(lidx), xl)
                            f2 = _rid_np(np, x2.take(lidx), xl)
                            vv = np.zeros(len(xl), dtype=np.int64)
                            for _ in range(2):
                                vv += (vv == f1) | (vv == f2)
                            adopt = vv < xl
                            xc[lidx[adopt]] = vv[adopt]

            sP[csel] = (xc << 6) | (na << 3) | nb

        times, exhausted, stats = _drive_numpy(
            np, schedules, n, B, max_time, idle_limit, undone, remaining,
            step_cells,
        )

        if frontiers:
            act = np.bincount(np.concatenate(frontiers), minlength=size)
        else:
            act = np.zeros(size, dtype=np.int64)

        results = []
        ids = list(range(n))
        SP = sP.reshape(B, N1)
        SR = sr.reshape(B, N1)
        ACT = act.reshape(B, N1)
        OUTA = out_a.reshape(B, N1)
        OUTB = out_b.reshape(B, N1)
        RT = ret_time.reshape(B, N1)
        for bi in range(B):
            def build_outputs(bi=bi):
                pret = np.flatnonzero(~undone[bi, :n])
                return dict(zip(
                    pret.tolist(),
                    zip(OUTA[bi, pret].tolist(), OUTB[bi, pret].tolist()),
                ))

            def build_return_times(bi=bi):
                pret = np.flatnonzero(~undone[bi, :n])
                return dict(zip(pret.tolist(), RT[bi, pret].tolist()))

            def build_activations(bi=bi):
                return dict(zip(ids, ACT[bi, :n].tolist()))

            def build_states(row=SP[bi, :n], rrow=SR[bi, :n]):
                xs = (row >> 6).tolist()
                as_ = ((row >> 3) & 7).tolist()
                bs = (row & 7).tolist()
                if reduction:
                    rs = [
                        r if r < _INF64 else INFINITE_ROUND
                        for r in rrow.tolist()
                    ]
                    return dict(zip(ids, map(
                        tuple.__new__, repeat(FastSixState),
                        zip(xs, rs, as_, bs),
                    )))
                return dict(zip(ids, map(
                    tuple.__new__, repeat(SixState), zip(xs, as_, bs)
                )))

            results.append(ExecutionResult(
                n=n,
                outputs=_LazyMapping(build_outputs),
                activations=_LazyMapping(build_activations),
                return_times=_LazyMapping(build_return_times),
                final_time=times[bi],
                time_exhausted=exhausted[bi],
                trace=None,
                final_states=_LazyMapping(build_states),
            ))
        return results, stats

    return run


def _pure_pair_runner(B, n, nb1, nb2, inputs_list, *, reduction, green_light):
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring6 import SixState
    from repro.extensions.fast_six import FastSixState, INFINITE_ROUND

    INF = INFINITE_ROUND

    def run(schedules, max_time, idle_limit):
        st_x = [list(inputs) for inputs in inputs_list]
        st_a = [[0] * n for _ in range(B)]
        st_b = [[0] * n for _ in range(B)]
        st_r: List[List[Any]] = [[0] * n for _ in range(B)]
        rg_x = [[0] * n for _ in range(B)]
        rg_a = [[0] * n for _ in range(B)]
        rg_b = [[0] * n for _ in range(B)]
        rg_r: List[List[Any]] = [[0] * n for _ in range(B)]
        rg_w = [[False] * n for _ in range(B)]
        done = [[False] * n for _ in range(B)]
        outputs: List[Dict[int, Any]] = [{} for _ in range(B)]
        return_times: List[Dict[int, int]] = [{} for _ in range(B)]
        activations = [[0] * n for _ in range(B)]
        remaining = [n] * B

        def step_one(bi, working, time):
            sx, sa, sb, sr = st_x[bi], st_a[bi], st_b[bi], st_r[bi]
            gx, ga, gb, gr, gw = (
                rg_x[bi], rg_a[bi], rg_b[bi], rg_r[bi], rg_w[bi]
            )
            dn, outs, rts, acts = (
                done[bi], outputs[bi], return_times[bi], activations[bi]
            )
            returned = 0
            for p in working:
                gx[p] = sx[p]
                ga[p] = sa[p]
                gb[p] = sb[p]
                if reduction:
                    gr[p] = sr[p]
                gw[p] = True
            for p in working:
                acts[p] += 1
                x = sx[p]
                a = sa[p]
                b = sb[p]
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and gw[q1]
                w2 = q2 >= 0 and gw[q2]
                clash = (
                    (w1 and a == ga[q1] and b == gb[q1])
                    or (w2 and a == ga[q2] and b == gb[q2])
                )
                if not clash:
                    outs[p] = (a, b); rts[p] = time
                    dn[p] = True; returned += 1
                    continue

                h1 = ga[q1] if w1 and gx[q1] > x else -1
                h2 = ga[q2] if w2 and gx[q2] > x else -1
                v = 0
                while v == h1 or v == h2:
                    v += 1
                new_a = v
                l1 = gb[q1] if w1 and gx[q1] < x else -1
                l2 = gb[q2] if w2 and gx[q2] < x else -1
                v = 0
                while v == l1 or v == l2:
                    v += 1
                sa[p] = new_a
                sb[p] = v

                if reduction and w1 and w2:
                    r = sr[p]
                    if r < INF:
                        r1 = gr[q1]; r2 = gr[q2]
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = gx[q1]; x2 = gx[q2]
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                sr[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo:
                                    sx[p] = candidate
                            else:
                                sr[p] = INF
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        sx[p] = v
            return returned

        times, exhausted, stats = _drive_pure(
            schedules, n, B, max_time, idle_limit, done, remaining, step_one
        )

        results = []
        for bi in range(B):
            if reduction:
                final_states = {
                    p: FastSixState(
                        x=st_x[bi][p], r=st_r[bi][p],
                        a=st_a[bi][p], b=st_b[bi][p],
                    )
                    for p in range(n)
                }
            else:
                final_states = {
                    p: SixState(x=st_x[bi][p], a=st_a[bi][p], b=st_b[bi][p])
                    for p in range(n)
                }
            results.append(ExecutionResult(
                n=n,
                outputs=outputs[bi],
                activations={p: activations[bi][p] for p in range(n)},
                return_times=return_times[bi],
                final_time=times[bi],
                time_exhausted=exhausted[bi],
                trace=None,
                final_states=final_states,
            ))
        return results, stats

    return run


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

def _register_builtin_batch_kernels() -> None:
    from repro.core.coloring5 import FiveColoring
    from repro.core.coloring6 import SixColoring
    from repro.core.fast_coloring5 import FastFiveColoring
    from repro.extensions.fast_six import FastSixColoring

    @register_batch_kernel(FiveColoring)
    def _alg2_batch(algorithms, topology, inputs_list):
        return _make_batch_ab_kernel(
            algorithms, topology, inputs_list, reduction=False
        )

    @register_batch_kernel(FastFiveColoring)
    def _alg3_batch(algorithms, topology, inputs_list):
        return _make_batch_ab_kernel(
            algorithms, topology, inputs_list, reduction=True
        )

    @register_batch_kernel(SixColoring)
    def _alg1_batch(algorithms, topology, inputs_list):
        return _make_batch_pair_kernel(
            algorithms, topology, inputs_list, reduction=False
        )

    @register_batch_kernel(FastSixColoring)
    def _fast6_batch(algorithms, topology, inputs_list):
        return _make_batch_pair_kernel(
            algorithms, topology, inputs_list, reduction=True
        )


_register_builtin_batch_kernels()


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def run_batch(
    algorithms: Sequence[Any],
    topology: Topology,
    inputs_list: Sequence[Sequence[Any]],
    schedules: Sequence[Schedule],
    *,
    max_time: int = DEFAULT_MAX_TIME,
    idle_limit: int = 10_000,
) -> Optional[List[ExecutionResult]]:
    """Run ``B`` replicas of one configuration in lockstep.

    Replica ``i`` is ``(algorithms[i], inputs_list[i], schedules[i])``
    over the shared ``topology``; the returned list holds one
    :class:`~repro.model.execution.ExecutionResult` per replica,
    bit-identical to what the per-run engines would produce.  Returns
    ``None`` when no batched kernel covers this configuration (mixed
    or unregistered algorithm types, unsupported topology) — callers
    fall back to per-run execution.

    Ragged shapes are handled per replica: each retires independently
    on termination, schedule exhaustion, ``max_time`` (its own clock)
    or the idle cutoff, and its schedule stream stops being consumed
    from that point on.
    """
    B = len(algorithms)
    if B == 0:
        return []
    if len(inputs_list) != B or len(schedules) != B:
        raise ExecutionError(
            "run_batch: algorithms, inputs_list and schedules must have "
            f"equal lengths (got {B}, {len(inputs_list)}, {len(schedules)})"
        )
    n = topology.n
    inputs_list = [list(inputs) for inputs in inputs_list]
    for inputs in inputs_list:
        if len(inputs) != n:
            raise ExecutionError(
                f"expected {n} inputs per replica, got {len(inputs)}"
            )
    kernel = build_batch_kernel(algorithms, topology, inputs_list)
    if kernel is None:
        return None
    registry = active_registry()
    if registry is None and not is_recording():
        results, _stats = kernel(schedules, max_time, idle_limit)
        return results
    started = perf_counter()
    wall = wall_clock()
    results, stats = kernel(schedules, max_time, idle_limit)
    elapsed = perf_counter() - started
    locksteps = stats["locksteps"]
    occupancy = stats["live_sum"] / (locksteps * B) if locksteps else 0.0
    if registry is not None:
        registry.observe("batch_replicas", B)
        registry.observe("batch_occupancy", occupancy)
        registry.observe("batch_run_seconds", elapsed)
        for algorithm, result in zip(algorithms, results):
            record_execution(
                registry, "batch", type(algorithm).__name__, result,
                elapsed=elapsed / B,
            )
    record_timed(
        "engine_run", wall, elapsed,
        {"engine": "batch", "replicas": B,
         "occupancy": round(occupancy, 4)},
    )
    return results


def run_single_batch(
    algorithm: Any,
    topology: Topology,
    inputs: Sequence[Any],
    schedule: Schedule,
    *,
    max_time: int = DEFAULT_MAX_TIME,
    idle_limit: int = 10_000,
) -> Optional[ExecutionResult]:
    """One replica through the batch engine (B = 1), or ``None``."""
    results = run_batch(
        [algorithm], topology, [list(inputs)], [schedule],
        max_time=max_time, idle_limit=idle_limit,
    )
    return results[0] if results else None
