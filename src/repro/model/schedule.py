"""Schedules: the adversary's choice of who is activated when (§2.2).

An execution in the paper's model is fully determined by the algorithm,
the topology, the input identifiers, and the *schedule*
``σ = σ(1), σ(2), …`` where ``σ(t)`` is the set of processes activated
at time ``t``.  Multiple processes activated at the same time behave as
if they all wrote first, then all read (Equation (1)); this is realized
by :class:`~repro.model.execution.Executor`.

This module provides the abstract :class:`Schedule` protocol plus the
plumbing adapters; concrete adversaries (synchronous, round-robin,
random, proof-extracted adversaries) live in :mod:`repro.schedulers`.

A schedule yields ``frozenset`` activation sets and may be infinite; the
engine restricts each ``σ(t)`` to *working* processes (the paper's
``σ̄``) and stops as soon as every process has returned, so an infinite
schedule does not mean an infinite execution for a wait-free algorithm.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, List, Sequence, Union

from repro.errors import ScheduleError
from repro.types import ProcessId

__all__ = [
    "ActivationSet",
    "FastStep",
    "Schedule",
    "FiniteSchedule",
    "FunctionSchedule",
    "RecordedSchedule",
    "validate_step",
]

ActivationSet = FrozenSet[ProcessId]

#: What :meth:`Schedule.steps_fast` yields: any reusable, duplicate-free
#: iterable of process ids (tuple, list, range, or the frozensets of the
#: default adapter).  The fast engine only iterates it, so schedulers
#: may yield the *same* object every step instead of building a fresh
#: ``frozenset`` per step.
FastStep = Union[Sequence[ProcessId], FrozenSet[ProcessId], range]


def validate_step(step: Iterable[ProcessId], n: int) -> ActivationSet:
    """Normalize one activation set and check its process ids.

    Empty steps are legal (they model global idle time) but the engine
    skips them at zero cost.
    """
    s = frozenset(step)
    for p in s:
        if not (0 <= p < n):
            raise ScheduleError(f"schedule activates unknown process {p} (n={n})")
    return s


class Schedule:
    """Abstract schedule: an iterable of activation sets.

    Subclasses implement :meth:`steps`; a schedule object is reusable —
    every call to :meth:`steps` starts a fresh iteration (important for
    running the same adversary against several algorithms).
    """

    #: Whether :meth:`steps` can be called repeatedly on the *same*
    #: instance with identical results — i.e. iteration state lives
    #: entirely in the generator frame, not on the object.  Ensemble
    #: runners deep-copy non-reusable schedules before every run (the
    #: stateful-schedule-reuse fix); declaring ``reusable = True`` lets
    #: them skip that copy.  Default ``False``: copying a reusable
    #: schedule is only slow, reusing a stateful one is *wrong*.
    reusable: bool = False

    def steps(self, n: int) -> Iterator[ActivationSet]:
        """Yield ``σ(1), σ(2), …`` for a system of ``n`` processes."""
        raise NotImplementedError

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        """Yield the same steps as :meth:`steps`, allocation-lean.

        The fast execution engine iterates activation steps without ever
        needing set semantics, so this method may yield any duplicate-free
        iterable of process ids — a reused tuple, a ``range``, a list —
        instead of materializing a fresh ``frozenset`` per step.

        Contract: ``list(map(sorted, steps_fast(n)))`` must equal
        ``list(map(sorted, steps(n)))`` — same steps, same order, and for
        seeded schedulers the *same RNG stream consumption* — and every
        yielded step must be duplicate-free.  The default adapter simply
        delegates to :meth:`steps` (correct for any subclass, including
        wrappers like crash plans); the built-in scheduler families
        override it to skip the per-step ``frozenset`` churn.
        """
        return self.steps(n)

    def steps_wide(self, n: int) -> Iterator[FastStep]:
        """Yield the same steps as :meth:`steps_fast`, wide-engine form.

        The wide engine (:mod:`repro.model.wide`) executes an entire
        activation set per vectorized step, so this method may yield
        either a :data:`FastStep` id sequence *or* a length-``n``
        numpy boolean mask (``mask[p]`` ⇔ process ``p`` is activated)
        — whichever the scheduler produces more cheaply.  A yielded
        mask buffer is only read before the generator is resumed, so
        overrides may reuse one buffer across steps.

        Contract: identical step sequence, order, and RNG stream
        consumption as :meth:`steps_fast` (and therefore :meth:`steps`)
        — the wide engine must be bit-identical to the reference, and
        switching engines must never perturb seeded adversaries.  This
        default delegates to :meth:`steps_fast`, which is correct for
        any subclass including wrappers like crash plans; the built-in
        synchronous/Bernoulli/uniform-subset families override it with
        vectorized mask generation when numpy is available.
        """
        return self.steps_fast(n)

    @classmethod
    def steps_batch(cls, schedules: Sequence["Schedule"], n: int, active):
        """Yield one activation row per schedule, lockstep by lockstep.

        The batch engine (:mod:`repro.model.batch`) drives ``B``
        same-type schedules together; each yielded value is a list of
        ``B`` rows where row ``i`` is either ``None`` (schedule ``i``
        is exhausted) or an activation step — a :data:`FastStep` id
        sequence, or (vectorized overrides) a length-``n`` boolean
        mask.  The generator is *infinite*: once every schedule is
        exhausted it keeps yielding all-``None`` rows and the engine
        decides when to stop.

        ``active`` is a read-only, live view of which replicas the
        engine still runs; implementations must not consume the stream
        (schedule steps *or* RNG draws) of an inactive replica — the
        per-run engines stop iterating a finished run's schedule, and
        retirement of one replica must never perturb another's stream.

        Contract: for every replica that stays active, the sequence of
        its non-``None`` rows must equal its own ``steps_fast(n)``
        stream (same steps, same order, same RNG consumption).  This
        default adapter drives one ``steps_fast`` iterator per
        schedule and is correct for any subclass; vectorized overrides
        (Bernoulli, synchronous, round-robin) draw whole rows at once.
        """
        iterators = [s.steps_fast(n) for s in schedules]
        exhausted = [False] * len(schedules)
        while True:
            rows: List = [None] * len(schedules)
            for i, it in enumerate(iterators):
                if exhausted[i] or not active[i]:
                    continue
                try:
                    rows[i] = next(it)
                except StopIteration:
                    exhausted[i] = True
            yield rows

    def __iter__(self):  # pragma: no cover - convenience only
        raise TypeError(
            "iterate via schedule.steps(n); a Schedule needs to know n"
        )


class FiniteSchedule(Schedule):
    """A fixed, finite list of activation sets.

    After the listed steps are exhausted the schedule ends; processes
    that have not returned by then are considered crashed/starved (the
    paper's second stopping scenario).
    """

    reusable = True  # iteration state lives in the generator frame

    def __init__(self, steps: Sequence[Iterable[ProcessId]]):
        self._raw: List[FrozenSet[ProcessId]] = [frozenset(s) for s in steps]

    def steps(self, n: int) -> Iterator[ActivationSet]:
        for s in self._raw:
            yield validate_step(s, n)

    def steps_fast(self, n: int) -> Iterator[FastStep]:
        # The stored steps are frozensets already; validate ids without
        # the frozenset copy validate_step would make per step.
        for s in self._raw:
            for p in s:
                if not (0 <= p < n):
                    raise ScheduleError(
                        f"schedule activates unknown process {p} (n={n})"
                    )
            yield s

    def __len__(self) -> int:
        return len(self._raw)

    def __repr__(self) -> str:
        return f"FiniteSchedule(len={len(self._raw)})"


class FunctionSchedule(Schedule):
    """A schedule computed on demand from the time index.

    ``fn(t, n)`` must return the activation set for time ``t ≥ 1``.
    Useful for one-off adversaries in tests without defining a class.
    """

    def __init__(self, fn: Callable[[int, int], Iterable[ProcessId]], horizon: int = 10**9):
        self._fn = fn
        self._horizon = horizon

    def steps(self, n: int) -> Iterator[ActivationSet]:
        for t in range(1, self._horizon + 1):
            yield validate_step(self._fn(t, n), n)


class RecordedSchedule(Schedule):
    """Wrap another schedule and record the steps actually consumed.

    The recording (:attr:`record`) replays as a :class:`FiniteSchedule`,
    which makes any interesting random execution reproducible and lets
    the falsifiers in :mod:`repro.lowerbounds` report a concrete
    violating schedule.
    """

    def __init__(self, inner: Schedule):
        self._inner = inner
        self.record: List[ActivationSet] = []

    def steps(self, n: int) -> Iterator[ActivationSet]:
        self.record = []
        for s in self._inner.steps(n):
            s = validate_step(s, n)
            self.record.append(s)
            yield s

    def replay(self) -> FiniteSchedule:
        """A finite schedule replaying exactly the steps consumed so far."""
        return FiniteSchedule(self.record)
