"""Network topologies mediating register visibility (paper Section 2.1).

The paper's model is the shared-memory state model *restricted by a
graph*: process ``p`` may read only the registers of its neighbors (and
its own).  The cycle ``C_n`` is the paper's main object; the appendix
extends Algorithm 1 to arbitrary graphs of maximum degree Δ, and the
``C_3`` ≡ 3-process-shared-memory equivalence (Property 2.3) uses the
complete graph.

A :class:`Topology` is immutable after construction and exposes, for
each process id in ``0..n-1``, the ordered tuple of its neighbors.  The
neighbor *order is arbitrary* — the paper explicitly does not assume a
coherent notion of left/right — and algorithms must not rely on it; the
test-suite includes executions with shuffled neighbor orders to enforce
this.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.types import ProcessId

__all__ = [
    "Topology",
    "Cycle",
    "Path",
    "CompleteGraph",
    "GeneralGraph",
    "Star",
    "Torus",
]


class Topology:
    """An undirected graph on processes ``0..n-1`` with ordered adjacency.

    Parameters
    ----------
    neighbors:
        Mapping from each process id to the sequence of its neighbors.
        Must be symmetric (``q in neighbors[p]`` iff ``p in
        neighbors[q]``), irreflexive, and duplicate-free.
    name:
        Human-readable label used in reprs and experiment reports.
    """

    def __init__(self, neighbors: Dict[ProcessId, Sequence[ProcessId]], name: str = "graph"):
        if not neighbors:
            raise TopologyError("a topology needs at least one process")
        ids = sorted(neighbors)
        if ids != list(range(len(ids))):
            raise TopologyError(f"process ids must be 0..n-1, got {ids[:10]}...")
        frozen: Dict[ProcessId, Tuple[ProcessId, ...]] = {}
        for p, nbrs in neighbors.items():
            nbrs = tuple(nbrs)
            if len(set(nbrs)) != len(nbrs):
                raise TopologyError(f"duplicate neighbor in adjacency of {p}")
            for q in nbrs:
                if q == p:
                    raise TopologyError(f"self-loop at process {p}")
                if q not in neighbors:
                    raise TopologyError(f"neighbor {q} of {p} is not a process")
                if p not in neighbors[q]:
                    raise TopologyError(f"asymmetric adjacency between {p} and {q}")
            frozen[p] = nbrs
        self._neighbors = frozen
        self._n = len(ids)
        self.name = name

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    def processes(self) -> range:
        """All process ids, ``0..n-1``."""
        return range(self._n)

    def neighbors(self, p: ProcessId) -> Tuple[ProcessId, ...]:
        """Ordered neighbors of ``p`` (order is arbitrary, fixed)."""
        return self._neighbors[p]

    def degree(self, p: ProcessId) -> int:
        """Degree of process ``p``."""
        return len(self._neighbors[p])

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph."""
        return max(len(v) for v in self._neighbors.values())

    def edges(self) -> Iterator[Tuple[ProcessId, ProcessId]]:
        """Each undirected edge once, as an ordered pair ``(p, q)``, p < q."""
        for p, nbrs in self._neighbors.items():
            for q in nbrs:
                if p < q:
                    yield (p, q)

    def are_adjacent(self, p: ProcessId, q: ProcessId) -> bool:
        """Whether ``p ~ q``."""
        return q in self._neighbors[p]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_shuffled_neighbors(self, rng) -> "Topology":
        """Return a copy whose per-process neighbor order is shuffled.

        Used by tests to check that no algorithm depends on a coherent
        left/right orientation (the paper makes none available).
        """
        shuffled = {}
        for p, nbrs in self._neighbors.items():
            order = list(nbrs)
            rng.shuffle(order)
            shuffled[p] = tuple(order)
        return Topology(shuffled, name=self.name + "+shuffled")

    def induced_subgraph(self, keep: Iterable[ProcessId]) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """Adjacency of the subgraph induced by ``keep`` (original ids).

        This is *not* a :class:`Topology` (ids are not relabeled); it is
        what the correctness condition of the paper quantifies over: the
        graph induced by the terminating processes.
        """
        kept = set(keep)
        return {
            p: tuple(q for q in self._neighbors[p] if q in kept)
            for p in kept
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n}, name={self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Topology) and self._neighbors == other._neighbors

    def __hash__(self) -> int:
        # Memoized: topologies are immutable after construction, and the
        # kernel caches (WeakKeyDictionary keyed on the topology) hash on
        # every engine run — recomputing over the full edge list would
        # cost O(n log n) per run at n = 10⁶.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(
                tuple(sorted((p, nbrs) for p, nbrs in self._neighbors.items()))
            )
            self.__dict__["_hash"] = h
        return h


class Cycle(Topology):
    """The cycle ``C_n`` for ``n ≥ 3`` — the paper's primary topology."""

    def __init__(self, n: int):
        if n < 3:
            raise TopologyError(f"a cycle needs n >= 3, got n={n}")
        super().__init__(
            {i: ((i - 1) % n, (i + 1) % n) for i in range(n)},
            name=f"C_{n}",
        )


class Path(Topology):
    """The path ``P_n`` for ``n ≥ 2`` (useful for chain-based lemma tests)."""

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError(f"a path needs n >= 2, got n={n}")
        adj: Dict[ProcessId, List[ProcessId]] = {i: [] for i in range(n)}
        for i in range(n - 1):
            adj[i].append(i + 1)
            adj[i + 1].append(i)
        super().__init__({p: tuple(v) for p, v in adj.items()}, name=f"P_{n}")


class CompleteGraph(Topology):
    """The complete graph ``K_n`` — register visibility is all-to-all.

    On ``K_n`` the paper's model coincides with the standard wait-free
    shared-memory model with immediate snapshots (used for Property 2.3
    with ``n = 3``, where ``C_3 = K_3``).
    """

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError(f"a complete graph needs n >= 2, got n={n}")
        super().__init__(
            {i: tuple(j for j in range(n) if j != i) for i in range(n)},
            name=f"K_{n}",
        )


class Star(Topology):
    """The star ``S_k``: one hub (id 0) with ``k`` leaves — Δ stress test."""

    def __init__(self, leaves: int):
        if leaves < 1:
            raise TopologyError("a star needs at least one leaf")
        adj: Dict[ProcessId, Tuple[ProcessId, ...]] = {0: tuple(range(1, leaves + 1))}
        for i in range(1, leaves + 1):
            adj[i] = (0,)
        super().__init__(adj, name=f"S_{leaves}")


class Torus(Topology):
    """The ``rows × cols`` wrap-around grid (4-regular; Δ=4 workload)."""

    def __init__(self, rows: int, cols: int):
        if rows < 3 or cols < 3:
            raise TopologyError("a torus needs rows >= 3 and cols >= 3")
        n = rows * cols

        def pid(r: int, c: int) -> int:
            return (r % rows) * cols + (c % cols)

        adj = {}
        for r, c in itertools.product(range(rows), range(cols)):
            adj[pid(r, c)] = (
                pid(r - 1, c),
                pid(r + 1, c),
                pid(r, c - 1),
                pid(r, c + 1),
            )
        assert len(adj) == n
        super().__init__(adj, name=f"T_{rows}x{cols}")


class GeneralGraph(Topology):
    """An arbitrary graph given by an edge list over ``0..n-1``."""

    def __init__(self, n: int, edges: Iterable[Tuple[ProcessId, ProcessId]], name: str = "G"):
        adj: Dict[ProcessId, List[ProcessId]] = {i: [] for i in range(n)}
        for (p, q) in edges:
            if not (0 <= p < n and 0 <= q < n):
                raise TopologyError(f"edge ({p},{q}) outside 0..{n-1}")
            if q not in adj[p]:
                adj[p].append(q)
            if p not in adj[q]:
                adj[q].append(p)
        super().__init__({p: tuple(v) for p, v in adj.items()}, name=name)

    @classmethod
    def from_networkx(cls, graph, name: str = "G") -> "GeneralGraph":
        """Build from a ``networkx`` graph with nodes relabeled to 0..n-1."""
        nodes = list(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls(len(nodes), edges, name=name)
