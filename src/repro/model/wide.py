"""The wide engine: node-vectorized single-run execution.

The fast engine (:mod:`repro.model.fastpath`) retires one activation at
a time; the batch engine (:mod:`repro.model.batch`) vectorizes *across
replicas* but still advances each replica activation by activation.
This module vectorizes *within one run*: an entire activation set is
executed per Python-level step, which is what makes single executions
at ``n = 10⁶⁺`` tractable — the regime where the paper's ``⌊3n/2⌋+4``
/ ``O(n)`` / ``O(log* n)`` scaling claims (Theorems 3.1 and 4.1) stop
being measurable under a per-activation interpreter loop.

Design:

* **Structure-of-arrays int64 planes.**  Per-process state and
  register images live in flat int64/bool arrays of length ``n + 1``
  over the topology; column ``n`` is a permanent sentinel cell
  standing in for absent neighbors (its register ``x`` stays −1 and
  its colors stay 7, values no real process can publish, so the
  degree-0/1/2 arms of the scalar kernels collapse into one vector
  expression exactly as in the batch engine).
* **Rounds as gathers/scatters.**  One activation set executes as the
  paper's Equation (1): publish every activated register (scatter),
  read both neighbors of every activated process (two gathers via the
  precomputed :func:`repro.model.kernels._degree2_arrays` index
  arrays), then the private updates as vector arithmetic.
* **Frontier compaction.**  A ``undone`` plane masks every activation
  set down to the processes still working, so terminated (and crashed
  — a crashed process simply stops appearing) nodes drop out of the
  working set and all per-step arrays are sized by the live frontier.
* **Dense-step detection.**  Vectorized steps carry fixed numpy
  dispatch overhead, so only activation sets of at least
  :data:`DENSE_STEP_MIN` working processes take the vector path;
  sparse sets fall through to a scalar per-process loop equivalent to
  the fastpath kernels, over the same planes.  Synchronous and
  high-occupancy Bernoulli schedules therefore run almost entirely
  vectorized, while a ``SoloScheduler`` run degrades to fastpath-style
  execution instead of paying vector overhead per singleton step.
* **numpy strictly optional.**  Without numpy (absent, or disabled via
  the shared ``REPRO_BATCH_DISABLE_NUMPY`` flag) the engine delegates
  to the scalar fastpath kernels of :mod:`repro.model.kernels` — the
  pure-Python tier is bit-identical by construction, and schedulers'
  ``steps_wide`` overrides equally degrade to their scalar streams.

Correctness discipline is the repo-wide one: results must reproduce
the reference :class:`~repro.model.execution.Executor` *bit
identically* — outputs, activation counts, return times, final time,
``time_exhausted`` and per-process final states — enforced by the
engine-matrix harness in ``tests/model/test_fastpath_equivalence.py``.
Schedules are consumed through
:meth:`~repro.model.schedule.Schedule.steps_wide`, whose vectorized
overrides (synchronous, Bernoulli, uniform-subset) replicate the
scalar schedulers' MT19937 stream consumption draw for draw.

Kernels dispatch by *exact* algorithm type and decline (``None``)
whatever they cannot guarantee equivalence for — unsupported topology
degree, identifiers outside the exact-int64 range — so callers fall
back to the fast engine.
"""

from __future__ import annotations

from time import perf_counter
from time import time as wall_clock
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import ExecutionError
from repro.model.batch import (
    _INF64,
    _LazyMapping,
    _ids_as_int64,
    _rid_np,
    load_numpy,
    numpy_accelerated,
)
from repro.model.execution import DEFAULT_MAX_TIME, ExecutionResult
from repro.model.kernels import _degree2_arrays
from repro.model.schedule import Schedule
from repro.model.topology import Topology
from repro.obs.metrics import active_registry, record_execution
from repro.obs.spans import span
from repro.obs.trace import is_recording, record_timed

__all__ = [
    "DENSE_STEP_MIN",
    "WIDE_KERNELS",
    "register_wide_kernel",
    "build_wide_kernel",
    "run_wide",
]

#: Minimum number of *working* processes in an activation set for the
#: vectorized step to pay for its fixed numpy dispatch overhead; below
#: it the engine runs the scalar per-process loop over the same planes.
DENSE_STEP_MIN = 32

#: Exact algorithm type → wide kernel factory with signature
#: ``factory(algorithm, topology, inputs) -> Optional[runner]`` where
#: ``runner(schedule, max_time, idle_limit)`` returns
#: ``(ExecutionResult, stats)`` — ``stats`` holds the dense/sparse step
#: split and the mean frontier occupancy.
WIDE_KERNELS: Dict[Type, Callable] = {}


def register_wide_kernel(algorithm_type: Type):
    """Class decorator registering ``factory`` for ``algorithm_type``."""

    def decorate(factory: Callable) -> Callable:
        WIDE_KERNELS[algorithm_type] = factory
        return factory

    return decorate


def build_wide_kernel(algorithm, topology: Topology, inputs: List[Any]):
    """The wide runner for this configuration, or ``None``.

    Exact-type dispatch, mirroring the scalar and batched kernel
    registries: a subclass may override ``step`` and silently change
    semantics, so it never matches.
    """
    factory = WIDE_KERNELS.get(type(algorithm))
    if factory is None:
        return None
    with span("engine_kernel_build", algorithm=type(algorithm).__name__):
        return factory(algorithm, topology, inputs)


# ----------------------------------------------------------------------
# Small-alphabet lookup tables
# ----------------------------------------------------------------------

def _wide_luts(np):
    """``(pow2, mexlut)`` for color-bitmask arithmetic.

    Register colors are bounded by the palettes (≤ 5; the asleep
    sentinel is 7), so bitmasks live in bits 1..8 and table gathers
    beat elementwise ``1 << v`` shifts and ``frexp`` lowest-clear-bit
    extraction by an order of magnitude at n = 10⁶.
    """
    pow2 = np.int64(1) << np.arange(16, dtype=np.int64)
    mexlut = np.zeros(1024, dtype=np.int64)
    for j in range(1, 10):
        mexlut[1 << j] = j - 1
    return pow2, mexlut


def _mex_small(np, mexlut, mask):
    """mex of a small-alphabet taken-bitmask (bit ``v + 1`` ⇔ taken).

    Same contract as :func:`repro.model.batch._mex_bits` but for
    values < 9: the isolated lowest clear bit is at most ``2⁹`` and is
    mapped through the lookup table instead of a float ``frexp``.
    """
    filled = mask | 1
    return mexlut.take(~filled & (filled + 1))


# ----------------------------------------------------------------------
# Step-stream driver (clockwork shared by both kernel families)
# ----------------------------------------------------------------------

def _drive_wide(np, schedule, n, undone, step_dense, step_sparse,
                max_time, idle_limit):
    """Consume ``steps_wide``, compact each set against the frontier,
    and route it to the dense (vectorized) or sparse (scalar) step.

    Replicates the scalar kernel loop exactly: drawing a step past
    ``max_time`` rolls time back and flags exhaustion; a step whose
    working set is empty only bumps the idle streak; the run ends when
    every process returned, the schedule is exhausted, or the idle
    cutoff fires.  Returns ``(final_time, time_exhausted, stats)``.
    """
    undone_n = undone[:n]
    remaining = n
    time = 0
    idle = 0
    exhausted = False
    dense_steps = 0
    sparse_steps = 0
    working_sum = 0
    for row in schedule.steps_wide(n):
        if remaining == 0:
            break
        time += 1
        if time > max_time:
            time -= 1
            exhausted = True
            break
        if isinstance(row, np.ndarray):
            flat = np.flatnonzero(row & undone_n)
        else:
            if isinstance(row, (frozenset, set)):
                row = list(row)
            arr = np.asarray(row, dtype=np.int64)
            flat = arr[undone_n[arr]] if arr.size else arr
        wc = int(flat.size)
        if wc == 0:
            idle += 1
            if idle_limit and idle >= idle_limit:
                break
            continue
        idle = 0
        working_sum += wc
        if wc >= DENSE_STEP_MIN:
            dense_steps += 1
            remaining -= step_dense(flat, time)
        else:
            sparse_steps += 1
            remaining -= step_sparse(flat.tolist(), time)
    steps = dense_steps + sparse_steps
    stats = {
        "tier": "vector",
        "dense_steps": dense_steps,
        "sparse_steps": sparse_steps,
        "occupancy": working_sum / (steps * n) if steps else 0.0,
    }
    return time, exhausted, stats


def _wide_result(np, n, undone, act, ret_time, final_time, exhausted,
                 build_outputs, build_states):
    """Assemble the ``ExecutionResult`` with lazily-built mappings."""
    ids = list(range(n))

    def build_return_times():
        pret = np.flatnonzero(~undone[:n])
        return dict(zip(pret.tolist(), ret_time[pret].tolist()))

    def build_activations():
        return dict(zip(ids, act[:n].tolist()))

    return ExecutionResult(
        n=n,
        outputs=_LazyMapping(build_outputs),
        activations=_LazyMapping(build_activations),
        return_times=_LazyMapping(build_return_times),
        final_time=final_time,
        time_exhausted=exhausted,
        trace=None,
        final_states=_LazyMapping(build_states),
    )


# ----------------------------------------------------------------------
# Algorithms 2 and 3, wide: the (x, a, b[, r]) register family
# ----------------------------------------------------------------------

def _make_wide_ab_kernel(algorithm, topology, inputs, *, reduction):
    """Node-vectorized fused loop for Algorithm 2 / Algorithm 3."""
    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    np = load_numpy()
    if np is None:
        return _scalar_delegate(algorithm, topology, inputs)
    init = _ids_as_int64(np, [inputs])
    if init is None:
        # Huge (≥ 2⁵³) or non-integer identifiers: exact int64 lanes
        # are impossible, so the run takes the scalar tier.
        return _scalar_delegate(algorithm, topology, inputs)
    return _numpy_wide_ab_runner(
        np, topology.n, arrays[0], arrays[1], init[0],
        reduction=reduction,
        green_light=algorithm.green_light if reduction else True,
        guarded_adoption=algorithm.guarded_adoption if reduction else True,
    )


def _numpy_wide_ab_runner(np, n, nb1, nb2, init_x, *, reduction,
                          green_light, guarded_adoption):
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring5 import FiveState
    from repro.core.fast_coloring5 import FastState, INFINITE_ROUND

    N1 = n + 1
    nb1a = np.asarray(nb1, dtype=np.int64)
    nb2a = np.asarray(nb2, dtype=np.int64)
    q1t = np.where(nb1a >= 0, nb1a, n)  # absent neighbor → sentinel slot
    q2t = np.where(nb2a >= 0, nb2a, n)
    pow2, mexlut = _wide_luts(np)

    def run(schedule, max_time, idle_limit):
        # State planes (private) and register planes (published).  The
        # register sentinel values — x = −1, colors = 7 — make asleep
        # and absent neighbors indistinguishable from the update's
        # point of view, exactly as in the batch engine's packed plane.
        sx = np.zeros(N1, dtype=np.int64)
        sx[:n] = init_x
        sa = np.zeros(N1, dtype=np.int64)
        sb = np.zeros(N1, dtype=np.int64)
        sr = np.zeros(N1, dtype=np.int64)
        rx = np.full(N1, -1, dtype=np.int64)
        ra = np.full(N1, 7, dtype=np.int64)
        rb = np.full(N1, 7, dtype=np.int64)
        rr = np.full(N1, -1, dtype=np.int64)
        undone = np.zeros(N1, dtype=bool)
        undone[:n] = True
        act = np.zeros(N1, dtype=np.int64)
        out_c = np.zeros(N1, dtype=np.int64)
        ret_time = np.zeros(N1, dtype=np.int64)

        def step_dense(flat, time):
            # Phase 1 — publish every activated register image.
            xv = sx.take(flat)
            av = sa.take(flat)
            bv = sb.take(flat)
            rx[flat] = xv
            ra[flat] = av
            rb[flat] = bv
            if reduction:
                rv = sr.take(flat)
                rr[flat] = rv
            act[flat] += 1
            # Phase 2+3 — gather both neighbors, update privately.
            q1f = q1t.take(flat)
            q2f = q2t.take(flat)
            x1 = rx.take(q1f)
            a1 = ra.take(q1f)
            b1 = rb.take(q1f)
            x2 = rx.take(q2f)
            a2 = ra.take(q2f)
            b2 = rb.take(q2f)
            ok_a = (av != a1) & (av != b1) & (av != a2) & (av != b2)
            ok_b = (bv != a1) & (bv != b1) & (bv != a2) & (bv != b2)
            ret = ok_a | ok_b
            nret = int(np.count_nonzero(ret))
            if nret:
                ridx = np.flatnonzero(ret)
                rsel = flat.take(ridx)
                out_c[rsel] = np.where(
                    ok_a.take(ridx), av.take(ridx), bv.take(ridx)
                )
                ret_time[rsel] = time
                undone[rsel] = False
                if nret == len(flat):
                    return nret
            # Index-based extraction (flatnonzero + take) over boolean
            # masking: at n = 10⁶ a fancy gather is ~6× cheaper per
            # array than a mask pass, and nine planes are extracted.
            cidx = np.flatnonzero(~ret)
            csel = flat.take(cidx)
            xc = xv.take(cidx)
            x1c = x1.take(cidx)
            x2c = x2.take(cidx)
            a1c = a1.take(cidx)
            b1c = b1.take(cidx)
            a2c = a2.take(cidx)
            b2c = b2.take(cidx)
            hi1 = x1c > xc  # asleep/absent ⇒ x1 = −1 ⇒ never "higher"
            hi2 = x2c > xc
            bb1 = pow2.take(a1c + 1) | pow2.take(b1c + 1)
            bb2 = pow2.take(a2c + 1) | pow2.take(b2c + 1)
            na = _mex_small(
                np, mexlut, np.where(hi1, bb1, 0) | np.where(hi2, bb2, 0)
            )
            nb = _mex_small(np, mexlut, bb1 | bb2)

            if reduction:
                rc = rv.take(cidx)
                red = (x1c >= 0) & (x2c >= 0) & (rc < _INF64)
                if green_light:
                    red &= rc <= np.minimum(
                        rr.take(q1f.take(cidx)), rr.take(q2f.take(cidx))
                    )
                if red.any():
                    # ``xc`` is a fresh fancy-indexed copy and the
                    # mid/ext index sets are disjoint — adopt in place.
                    lo = np.minimum(x1c, x2c)
                    hi = np.maximum(x1c, x2c)
                    inside = (lo < xc) & (xc < hi)
                    mid = red & inside
                    if mid.any():
                        midx = np.flatnonzero(mid)
                        lom = lo.take(midx)
                        sr[csel.take(midx)] = rc.take(midx) + 1
                        cand = _rid_np(np, xc.take(midx), lom)
                        if guarded_adoption:
                            adopt = cand < lom
                            xc[midx[adopt]] = cand[adopt]
                        else:
                            xc[midx] = cand
                    ext = red & ~inside
                    if ext.any():
                        eidx = np.flatnonzero(ext)
                        sr[csel.take(eidx)] = _INF64
                        xe = xc.take(eidx)
                        low = xe < lo.take(eidx)
                        if low.any():
                            lidx = eidx[low]
                            xl = xe[low]
                            f1 = _rid_np(np, x1c.take(lidx), xl)
                            f2 = _rid_np(np, x2c.take(lidx), xl)
                            vv = np.zeros(len(xl), dtype=np.int64)
                            for _ in range(2):
                                vv += (vv == f1) | (vv == f2)
                            adopt = vv < xl
                            xc[lidx[adopt]] = vv[adopt]

            sx[csel] = xc
            sa[csel] = na
            sb[csel] = nb
            return nret

        def step_sparse(working, time):
            # The scalar fastpath kernel's step body over the planes.
            for p in working:
                rx[p] = sx[p]
                ra[p] = sa[p]
                rb[p] = sb[p]
                if reduction:
                    rr[p] = sr[p]
                act[p] += 1
            nret = 0
            for p in working:
                x = int(sx[p])
                a = int(sa[p])
                b = int(sb[p])
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and rx[q1] >= 0
                w2 = q2 >= 0 and rx[q2] >= 0

                if w1 and w2:
                    a1 = int(ra[q1]); b1 = int(rb[q1])
                    a2 = int(ra[q2]); b2 = int(rb[q2])
                    if a != a1 and a != b1 and a != a2 and a != b2:
                        out_c[p] = a; ret_time[p] = time
                        undone[p] = False; nret += 1
                        continue
                    if b != a1 and b != b1 and b != a2 and b != b2:
                        out_c[p] = b; ret_time[p] = time
                        undone[p] = False; nret += 1
                        continue
                    taken_all = {a1, b1, a2, b2}
                    taken_higher = set()
                    if int(rx[q1]) > x:
                        taken_higher.add(a1); taken_higher.add(b1)
                    if int(rx[q2]) > x:
                        taken_higher.add(a2); taken_higher.add(b2)
                elif w1 or w2:
                    q = q1 if w1 else q2
                    aq = int(ra[q]); bq = int(rb[q])
                    if a != aq and a != bq:
                        out_c[p] = a; ret_time[p] = time
                        undone[p] = False; nret += 1
                        continue
                    if b != aq and b != bq:
                        out_c[p] = b; ret_time[p] = time
                        undone[p] = False; nret += 1
                        continue
                    taken_all = {aq, bq}
                    taken_higher = {aq, bq} if int(rx[q]) > x else set()
                else:
                    out_c[p] = a; ret_time[p] = time
                    undone[p] = False; nret += 1
                    continue

                v = 0
                while v in taken_higher:
                    v += 1
                sa[p] = v
                v = 0
                while v in taken_all:
                    v += 1
                sb[p] = v

                if reduction and w1 and w2:
                    r = int(sr[p])
                    if r < _INF64:
                        r1 = int(rr[q1]); r2 = int(rr[q2])
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = int(rx[q1]); x2 = int(rx[q2])
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                sr[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo or not guarded_adoption:
                                    sx[p] = candidate
                            else:
                                sr[p] = _INF64
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        sx[p] = v
            return nret

        final_time, exhausted, stats = _drive_wide(
            np, schedule, n, undone, step_dense, step_sparse,
            max_time, idle_limit,
        )

        def build_outputs():
            pret = np.flatnonzero(~undone[:n])
            return dict(zip(pret.tolist(), out_c[pret].tolist()))

        def build_states():
            xs = sx[:n].tolist()
            as_ = sa[:n].tolist()
            bs = sb[:n].tolist()
            if reduction:
                rs = [
                    r if r < _INF64 else INFINITE_ROUND
                    for r in sr[:n].tolist()
                ]
                return {
                    p: FastState(x=xs[p], r=rs[p], a=as_[p], b=bs[p])
                    for p in range(n)
                }
            return {
                p: FiveState(x=xs[p], a=as_[p], b=bs[p]) for p in range(n)
            }

        result = _wide_result(
            np, n, undone, act, ret_time, final_time, exhausted,
            build_outputs, build_states,
        )
        return result, stats

    return run


# ----------------------------------------------------------------------
# Algorithms 1 and fast-6, wide: the (x, (a, b) pair[, r]) family
# ----------------------------------------------------------------------

def _make_wide_pair_kernel(algorithm, topology, inputs, *, reduction):
    """Node-vectorized fused loop for Algorithm 1 / fast-six."""
    arrays = _degree2_arrays(topology)
    if arrays is None:
        return None
    np = load_numpy()
    if np is None:
        return _scalar_delegate(algorithm, topology, inputs)
    init = _ids_as_int64(np, [inputs])
    if init is None:
        return _scalar_delegate(algorithm, topology, inputs)
    return _numpy_wide_pair_runner(
        np, topology.n, arrays[0], arrays[1], init[0],
        reduction=reduction,
        green_light=algorithm.green_light if reduction else True,
    )


def _numpy_wide_pair_runner(np, n, nb1, nb2, init_x, *, reduction,
                            green_light):
    from repro.core.coin_tossing import reduce_identifier
    from repro.core.coloring6 import SixState
    from repro.extensions.fast_six import FastSixState, INFINITE_ROUND

    N1 = n + 1
    nb1a = np.asarray(nb1, dtype=np.int64)
    nb2a = np.asarray(nb2, dtype=np.int64)
    q1t = np.where(nb1a >= 0, nb1a, n)
    q2t = np.where(nb2a >= 0, nb2a, n)
    pow2, mexlut = _wide_luts(np)

    def run(schedule, max_time, idle_limit):
        sx = np.zeros(N1, dtype=np.int64)
        sx[:n] = init_x
        sa = np.zeros(N1, dtype=np.int64)
        sb = np.zeros(N1, dtype=np.int64)
        sr = np.zeros(N1, dtype=np.int64)
        rx = np.full(N1, -1, dtype=np.int64)
        ra = np.full(N1, 7, dtype=np.int64)
        rb = np.full(N1, 7, dtype=np.int64)
        rr = np.full(N1, -1, dtype=np.int64)
        undone = np.zeros(N1, dtype=bool)
        undone[:n] = True
        act = np.zeros(N1, dtype=np.int64)
        out_a = np.zeros(N1, dtype=np.int64)
        out_b = np.zeros(N1, dtype=np.int64)
        ret_time = np.zeros(N1, dtype=np.int64)

        def step_dense(flat, time):
            xv = sx.take(flat)
            av = sa.take(flat)
            bv = sb.take(flat)
            rx[flat] = xv
            ra[flat] = av
            rb[flat] = bv
            if reduction:
                rv = sr.take(flat)
                rr[flat] = rv
            act[flat] += 1
            q1f = q1t.take(flat)
            q2f = q2t.take(flat)
            x1 = rx.take(q1f)
            a1 = ra.take(q1f)
            b1 = rb.take(q1f)
            x2 = rx.take(q2f)
            a2 = ra.take(q2f)
            b2 = rb.take(q2f)
            # Pair return rule: my whole (a, b) differs from every
            # awakened neighbor's pair (asleep ⇒ colors 7 ⇒ no clash).
            clash = ((av == a1) & (bv == b1)) | ((av == a2) & (bv == b2))
            ret = ~clash
            nret = int(np.count_nonzero(ret))
            if nret:
                ridx = np.flatnonzero(ret)
                rsel = flat.take(ridx)
                out_a[rsel] = av.take(ridx)
                out_b[rsel] = bv.take(ridx)
                ret_time[rsel] = time
                undone[rsel] = False
                if nret == len(flat):
                    return nret
            cidx = np.flatnonzero(clash)
            csel = flat.take(cidx)
            xc = xv.take(cidx)
            x1c = x1.take(cidx)
            x2c = x2.take(cidx)
            a1c = a1.take(cidx)
            b1c = b1.take(cidx)
            a2c = a2.take(cidx)
            b2c = b2.take(cidx)
            hi1 = x1c > xc
            hi2 = x2c > xc
            na = _mex_small(np, mexlut, (
                np.where(hi1, pow2.take(a1c + 1), 0)
                | np.where(hi2, pow2.take(a2c + 1), 0)
            ))
            lo1 = (x1c >= 0) & (x1c < xc)
            lo2 = (x2c >= 0) & (x2c < xc)
            nb = _mex_small(np, mexlut, (
                np.where(lo1, pow2.take(b1c + 1), 0)
                | np.where(lo2, pow2.take(b2c + 1), 0)
            ))

            if reduction:
                rc = rv.take(cidx)
                red = (x1c >= 0) & (x2c >= 0) & (rc < _INF64)
                if green_light:
                    red &= rc <= np.minimum(
                        rr.take(q1f.take(cidx)), rr.take(q2f.take(cidx))
                    )
                if red.any():
                    lo = np.minimum(x1c, x2c)
                    hi = np.maximum(x1c, x2c)
                    inside = (lo < xc) & (xc < hi)
                    mid = red & inside
                    if mid.any():
                        midx = np.flatnonzero(mid)
                        lom = lo.take(midx)
                        sr[csel.take(midx)] = rc.take(midx) + 1
                        cand = _rid_np(np, xc.take(midx), lom)
                        adopt = cand < lom
                        xc[midx[adopt]] = cand[adopt]
                    ext = red & ~inside
                    if ext.any():
                        eidx = np.flatnonzero(ext)
                        sr[csel.take(eidx)] = _INF64
                        xe = xc.take(eidx)
                        low = xe < lo.take(eidx)
                        if low.any():
                            lidx = eidx[low]
                            xl = xe[low]
                            f1 = _rid_np(np, x1c.take(lidx), xl)
                            f2 = _rid_np(np, x2c.take(lidx), xl)
                            vv = np.zeros(len(xl), dtype=np.int64)
                            for _ in range(2):
                                vv += (vv == f1) | (vv == f2)
                            adopt = vv < xl
                            xc[lidx[adopt]] = vv[adopt]

            sx[csel] = xc
            sa[csel] = na
            sb[csel] = nb
            return nret

        def step_sparse(working, time):
            for p in working:
                rx[p] = sx[p]
                ra[p] = sa[p]
                rb[p] = sb[p]
                if reduction:
                    rr[p] = sr[p]
                act[p] += 1
            nret = 0
            for p in working:
                x = int(sx[p])
                a = int(sa[p])
                b = int(sb[p])
                q1 = nb1[p]
                q2 = nb2[p]
                w1 = q1 >= 0 and rx[q1] >= 0
                w2 = q2 >= 0 and rx[q2] >= 0

                clash = (
                    (w1 and a == ra[q1] and b == rb[q1])
                    or (w2 and a == ra[q2] and b == rb[q2])
                )
                if not clash:
                    out_a[p] = a; out_b[p] = b; ret_time[p] = time
                    undone[p] = False; nret += 1
                    continue

                h1 = int(ra[q1]) if w1 and int(rx[q1]) > x else -1
                h2 = int(ra[q2]) if w2 and int(rx[q2]) > x else -1
                v = 0
                while v == h1 or v == h2:
                    v += 1
                new_a = v
                l1 = int(rb[q1]) if w1 and int(rx[q1]) < x else -1
                l2 = int(rb[q2]) if w2 and int(rx[q2]) < x else -1
                v = 0
                while v == l1 or v == l2:
                    v += 1
                sa[p] = new_a
                sb[p] = v

                if reduction and w1 and w2:
                    r = int(sr[p])
                    if r < _INF64:
                        r1 = int(rr[q1]); r2 = int(rr[q2])
                        if r <= (r1 if r1 < r2 else r2) or not green_light:
                            x1 = int(rx[q1]); x2 = int(rx[q2])
                            lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
                            if lo < x < hi:
                                sr[p] = r + 1
                                candidate = reduce_identifier(x, lo)
                                if candidate < lo:
                                    sx[p] = candidate
                            else:
                                sr[p] = _INF64
                                if x < lo:
                                    f1 = reduce_identifier(x1, x)
                                    f2 = reduce_identifier(x2, x)
                                    v = 0
                                    while v == f1 or v == f2:
                                        v += 1
                                    if v < x:
                                        sx[p] = v
            return nret

        final_time, exhausted, stats = _drive_wide(
            np, schedule, n, undone, step_dense, step_sparse,
            max_time, idle_limit,
        )

        def build_outputs():
            pret = np.flatnonzero(~undone[:n])
            return dict(zip(
                pret.tolist(),
                zip(out_a[pret].tolist(), out_b[pret].tolist()),
            ))

        def build_states():
            xs = sx[:n].tolist()
            as_ = sa[:n].tolist()
            bs = sb[:n].tolist()
            if reduction:
                rs = [
                    r if r < _INF64 else INFINITE_ROUND
                    for r in sr[:n].tolist()
                ]
                return {
                    p: FastSixState(x=xs[p], r=rs[p], a=as_[p], b=bs[p])
                    for p in range(n)
                }
            return {
                p: SixState(x=xs[p], a=as_[p], b=bs[p]) for p in range(n)
            }

        result = _wide_result(
            np, n, undone, act, ret_time, final_time, exhausted,
            build_outputs, build_states,
        )
        return result, stats

    return run


# ----------------------------------------------------------------------
# Pure-Python tier
# ----------------------------------------------------------------------

def _scalar_delegate(algorithm, topology, inputs):
    """The pure tier: delegate to the scalar fastpath kernel.

    A node-vectorized step over plain Python lists degenerates to the
    very loop :mod:`repro.model.kernels` already compiles, so the tier
    *is* that kernel — bit-identical by construction, with
    ``steps_fast`` consuming exactly the stream ``steps_wide``'s
    contract pins.  Declines (``None``) when the scalar kernel does.
    """
    from repro.model.kernels import build_kernel

    kernel = build_kernel(algorithm, topology, list(inputs))
    if kernel is None:
        return None

    def run(schedule, max_time, idle_limit):
        result = kernel(schedule, max_time, idle_limit)
        stats = {
            "tier": "scalar",
            "dense_steps": 0,
            "sparse_steps": 0,
            "occupancy": 0.0,
        }
        return result, stats

    return run


# ----------------------------------------------------------------------
# Registrations (imported lazily to keep repro.model import-light)
# ----------------------------------------------------------------------

def _register_builtin_wide_kernels() -> None:
    from repro.core.coloring5 import FiveColoring
    from repro.core.coloring6 import SixColoring
    from repro.core.fast_coloring5 import FastFiveColoring
    from repro.extensions.fast_six import FastSixColoring

    @register_wide_kernel(FiveColoring)
    def _alg2_wide(algorithm, topology, inputs):
        return _make_wide_ab_kernel(algorithm, topology, inputs,
                                    reduction=False)

    @register_wide_kernel(FastFiveColoring)
    def _alg3_wide(algorithm, topology, inputs):
        return _make_wide_ab_kernel(algorithm, topology, inputs,
                                    reduction=True)

    @register_wide_kernel(SixColoring)
    def _alg1_wide(algorithm, topology, inputs):
        return _make_wide_pair_kernel(algorithm, topology, inputs,
                                      reduction=False)

    @register_wide_kernel(FastSixColoring)
    def _fast6_wide(algorithm, topology, inputs):
        return _make_wide_pair_kernel(algorithm, topology, inputs,
                                      reduction=True)


_register_builtin_wide_kernels()


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------

def run_wide(
    algorithm: Any,
    topology: Topology,
    inputs: Any,
    schedule: Schedule,
    *,
    max_time: int = DEFAULT_MAX_TIME,
    idle_limit: int = 10_000,
) -> Optional[ExecutionResult]:
    """One run through the wide engine, or ``None``.

    Returns ``None`` when no wide kernel covers this configuration
    (unregistered algorithm type, unsupported topology) — callers fall
    back to the fast engine, mirroring :func:`repro.model.batch.
    run_single_batch`.  The result is bit-identical to the reference
    :class:`~repro.model.execution.Executor`.
    """
    inputs = list(inputs)
    if len(inputs) != topology.n:
        raise ExecutionError(
            f"got {len(inputs)} inputs for {topology.n} processes"
        )
    kernel = build_wide_kernel(algorithm, topology, inputs)
    if kernel is None:
        return None
    registry = active_registry()
    if registry is None and not is_recording():
        result, _stats = kernel(schedule, max_time, idle_limit)
        return result
    started = perf_counter()
    wall = wall_clock()
    result, stats = kernel(schedule, max_time, idle_limit)
    elapsed = perf_counter() - started
    alg_name = type(algorithm).__name__
    if registry is not None:
        registry.inc(
            "wide_steps_total", stats["dense_steps"],
            algorithm=alg_name, path="dense",
        )
        registry.inc(
            "wide_steps_total", stats["sparse_steps"],
            algorithm=alg_name, path="sparse",
        )
        registry.observe("wide_frontier_occupancy", stats["occupancy"])
        registry.observe("wide_run_seconds", elapsed)
        record_execution(registry, "wide", alg_name, result, elapsed=elapsed)
    record_timed(
        "engine_run", wall, elapsed,
        {"engine": "wide", "algorithm": alg_name, "tier": stats["tier"],
         "dense_steps": stats["dense_steps"],
         "sparse_steps": stats["sparse_steps"],
         "occupancy": round(stats["occupancy"], 4)},
    )
    return result
